//! Offline stand-in for `parking_lot`: wraps `std::sync` primitives behind
//! parking_lot's non-poisoning API (`lock()`/`read()`/`write()` return
//! guards directly; a poisoned lock is recovered transparently).

use std::fmt;
use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion lock.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.inner.try_lock().ok()
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        self.inner.try_read().ok()
    }

    /// Try to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        self.inner.try_write().ok()
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
