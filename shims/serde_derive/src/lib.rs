//! Derive macros for the offline `serde` shim.
//!
//! Implemented directly on `proc_macro` token streams (the environment has
//! no `syn`/`quote`). Supports the shapes this workspace uses: non-generic
//! structs (named, tuple, unit) and enums (unit, tuple and struct variants),
//! plus the field attributes `#[serde(default)]` and
//! `#[serde(with = "path")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

#[derive(Debug, Default, Clone)]
struct FieldAttrs {
    default: bool,
    with: Option<String>,
}

#[derive(Debug)]
struct NamedField {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<NamedField>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Input {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

type Iter = Peekable<proc_macro::token_stream::IntoIter>;

fn skip_attrs_collect(iter: &mut Iter) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.next() {
                    parse_attr_group(g.stream(), &mut attrs);
                }
            }
            _ => return attrs,
        }
    }
}

fn parse_attr_group(stream: TokenStream, attrs: &mut FieldAttrs) {
    let mut it = stream.into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(inner)) = it.next() else {
        return;
    };
    let mut it = inner.stream().into_iter().peekable();
    while let Some(tt) = it.next() {
        if let TokenTree::Ident(id) = tt {
            match id.to_string().as_str() {
                "default" => attrs.default = true,
                "with" => {
                    // with = "path"
                    if let Some(TokenTree::Punct(p)) = it.next() {
                        if p.as_char() == '=' {
                            if let Some(TokenTree::Literal(lit)) = it.next() {
                                let s = lit.to_string();
                                attrs.with = Some(s.trim_matches('"').to_string());
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

fn skip_visibility(iter: &mut Iter) {
    if let Some(TokenTree::Ident(id)) = iter.peek() {
        if id.to_string() == "pub" {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next();
                }
            }
        }
    }
}

/// Consume tokens of one type, stopping at a top-level comma (angle-bracket
/// depth aware; parens/brackets/braces arrive as opaque groups).
fn skip_type(iter: &mut Iter) {
    let mut depth = 0i32;
    while let Some(tt) = iter.peek() {
        if let TokenTree::Punct(p) = tt {
            let c = p.as_char();
            if c == ',' && depth == 0 {
                return;
            }
            if c == '<' {
                depth += 1;
            }
            if c == '>' {
                depth -= 1;
            }
        }
        iter.next();
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<NamedField> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let attrs = skip_attrs_collect(&mut iter);
        skip_visibility(&mut iter);
        let Some(TokenTree::Ident(name)) = iter.next() else {
            break;
        };
        // expect ':'
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => break,
        }
        skip_type(&mut iter);
        // consume the comma, if any
        if let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == ',' {
                iter.next();
            }
        }
        fields.push(NamedField {
            name: name.to_string(),
            attrs,
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut iter = stream.into_iter().peekable();
    let mut count = 0;
    loop {
        let _ = skip_attrs_collect(&mut iter);
        skip_visibility(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        skip_type(&mut iter);
        count += 1;
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => continue,
            _ => break,
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        let _ = skip_attrs_collect(&mut iter);
        let Some(TokenTree::Ident(name)) = iter.next() else {
            break;
        };
        let shape = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                iter.next();
                Shape::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                iter.next();
                Shape::Named(parse_named_fields(g))
            }
            _ => Shape::Unit,
        };
        // skip an optional discriminant `= expr` up to the comma
        while let Some(tt) = iter.peek() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    iter.next();
                    break;
                }
                _ => {
                    iter.next();
                }
            }
        }
        variants.push(Variant {
            name: name.to_string(),
            shape,
        });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();
    let _ = skip_attrs_collect(&mut iter);
    skip_visibility(&mut iter);
    let kw = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic types are not supported (type `{name}`)");
        }
    }
    match kw.as_str() {
        "struct" => {
            let shape = match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Shape::Unit,
            };
            Input::Struct { name, shape }
        }
        "enum" => {
            let variants = match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())
                }
                other => panic!("serde shim derive: expected enum body, got {other:?}"),
            };
            Input::Enum { name, variants }
        }
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let mut out = String::new();
    match input {
        Input::Struct { name, shape } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) \
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n"
            ));
            out.push_str(&ser_shape_body(shape, name, "self", true));
            out.push_str("}\n}\n");
        }
        Input::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) \
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 match self {{\n"
            ));
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => out.push_str(&format!(
                        "{name}::{vn} => __serializer.serialize_value(::serde::Value::Variant(\
                         ::std::string::String::from(\"{vn}\"), \
                         ::std::boxed::Box::new(::serde::Value::Unit))),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        out.push_str(&format!(
                            "{name}::{vn}({}) => {{\n\
                             let mut __items: ::std::vec::Vec<::serde::Value> = ::std::vec::Vec::new();\n",
                            binders.join(", ")
                        ));
                        for b in &binders {
                            out.push_str(&format!("__items.push(::serde::to_value({b})?);\n"));
                        }
                        out.push_str(&format!(
                            "__serializer.serialize_value(::serde::Value::Variant(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::std::boxed::Box::new(::serde::Value::Seq(__items))))\n}}\n"
                        ));
                    }
                    Shape::Named(fields) => {
                        let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        out.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{\n\
                             let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
                            binders.join(", ")
                        ));
                        for f in fields {
                            out.push_str(&format!(
                                "__fields.push((::std::string::String::from(\"{0}\"), ::serde::to_value({0})?));\n",
                                f.name
                            ));
                        }
                        out.push_str(&format!(
                            "__serializer.serialize_value(::serde::Value::Variant(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::std::boxed::Box::new(::serde::Value::Record(__fields))))\n}}\n"
                        ));
                    }
                }
            }
            out.push_str("}\n}\n}\n");
        }
    }
    out
}

fn ser_shape_body(shape: &Shape, _name: &str, recv: &str, is_struct: bool) -> String {
    debug_assert!(is_struct);
    let mut out = String::new();
    match shape {
        Shape::Unit => {
            out.push_str("__serializer.serialize_value(::serde::Value::Unit)\n");
        }
        Shape::Tuple(n) => {
            out.push_str(
                "let mut __items: ::std::vec::Vec<::serde::Value> = ::std::vec::Vec::new();\n",
            );
            for i in 0..*n {
                out.push_str(&format!("__items.push(::serde::to_value(&{recv}.{i})?);\n"));
            }
            out.push_str("__serializer.serialize_value(::serde::Value::Seq(__items))\n");
        }
        Shape::Named(fields) => {
            out.push_str(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
            );
            for f in fields {
                if let Some(with) = &f.attrs.with {
                    out.push_str(&format!(
                        "__fields.push((::std::string::String::from(\"{0}\"), \
                         {with}::serialize(&{recv}.{0}, ::serde::ValueSerializer)?));\n",
                        f.name
                    ));
                } else {
                    out.push_str(&format!(
                        "__fields.push((::std::string::String::from(\"{0}\"), \
                         ::serde::to_value(&{recv}.{0})?));\n",
                        f.name
                    ));
                }
            }
            out.push_str("__serializer.serialize_value(::serde::Value::Record(__fields))\n");
        }
    }
    out
}

fn de_named_fields(fields: &[NamedField], access: &str) -> String {
    let mut out = String::new();
    for f in fields {
        if let Some(with) = &f.attrs.with {
            out.push_str(&format!(
                "{0}: {{\n\
                 let __v = {access}.take(\"{0}\").ok_or_else(|| \
                 <__D::Error as ::core::convert::From<::serde::Error>>::from(\
                 ::serde::Error::missing_field(\"{0}\")))?;\n\
                 {with}::deserialize(::serde::ValueDeserializer::new(__v))?\n\
                 }},\n",
                f.name
            ));
        } else if f.attrs.default {
            out.push_str(&format!(
                "{0}: {access}.field_or_default(\"{0}\")?,\n",
                f.name
            ));
        } else {
            out.push_str(&format!("{0}: {access}.field(\"{0}\")?,\n", f.name));
        }
    }
    out
}

fn gen_deserialize(input: &Input) -> String {
    let mut out = String::new();
    match input {
        Input::Struct { name, shape } => {
            out.push_str(&format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                 fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) \
                 -> ::core::result::Result<Self, __D::Error> {{\n"
            ));
            match shape {
                Shape::Unit => {
                    out.push_str(&format!(
                        "let _ = __deserializer.take_value()?;\n\
                         ::core::result::Result::Ok({name})\n"
                    ));
                }
                Shape::Tuple(n) => {
                    out.push_str(
                        "let mut __seq = ::serde::SeqAccess::new(__deserializer.take_value()?)?;\n",
                    );
                    let items: Vec<String> = (0..*n).map(|_| "__seq.next()?".to_string()).collect();
                    out.push_str(&format!(
                        "::core::result::Result::Ok({name}({}))\n",
                        items.join(", ")
                    ));
                }
                Shape::Named(fields) => {
                    out.push_str(
                        "let mut __rec = ::serde::RecordAccess::new(__deserializer.take_value()?)?;\n",
                    );
                    out.push_str(&format!(
                        "::core::result::Result::Ok({name} {{\n{}}})\n",
                        de_named_fields(fields, "__rec")
                    ));
                }
            }
            out.push_str("}\n}\n");
        }
        Input::Enum { name, variants } => {
            out.push_str(&format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                 fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) \
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 let (__name, __payload) = ::serde::enum_access(__deserializer.take_value()?)?;\n\
                 match __name.as_str() {{\n"
            ));
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => out.push_str(&format!(
                        "\"{vn}\" => {{ let _ = __payload; ::core::result::Result::Ok({name}::{vn}) }},\n"
                    )),
                    Shape::Tuple(n) => {
                        let items: Vec<String> =
                            (0..*n).map(|_| "__seq.next()?".to_string()).collect();
                        out.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let mut __seq = ::serde::SeqAccess::new(__payload)?;\n\
                             ::core::result::Result::Ok({name}::{vn}({}))\n}},\n",
                            items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        out.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let mut __rec = ::serde::RecordAccess::new(__payload)?;\n\
                             ::core::result::Result::Ok({name}::{vn} {{\n{}}})\n}},\n",
                            de_named_fields(fields, "__rec")
                        ));
                    }
                }
            }
            out.push_str(&format!(
                "__other => ::core::result::Result::Err(\
                 <__D::Error as ::core::convert::From<::serde::Error>>::from(\
                 ::serde::Error::custom(::std::format!(\"unknown variant `{{}}` of {name}\", __other)))),\n\
                 }}\n}}\n}}\n"
            ));
        }
    }
    out
}

/// Derive `serde::Serialize` (shim).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize` (shim).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}
