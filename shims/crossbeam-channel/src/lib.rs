//! Offline stand-in for `crossbeam-channel`: a bounded MPMC channel built on
//! `Mutex` + `Condvar`, exposing the subset of the API this workspace uses
//! (`bounded`, `try_send`, `recv_timeout`, `try_recv`, `len`).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is full; the message is handed back.
    Full(T),
    /// All receivers are gone; the message is handed back.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// All senders are gone and the queue is empty.
    Disconnected,
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue is currently empty.
    Empty,
    /// All senders are gone and the queue is empty.
    Disconnected,
}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    not_empty: Condvar,
    capacity: usize,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// The sending half of a channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create a bounded channel with the given capacity.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        not_empty: Condvar::new(),
        capacity: capacity.max(1),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

/// Error returned by [`Sender::send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> Sender<T> {
    /// Send, blocking while the channel is full (bounded wait per attempt so
    /// a dropped receiver is always noticed).
    pub fn send(&self, mut value: T) -> Result<(), SendError<T>> {
        loop {
            match self.try_send(value) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Disconnected(v)) => return Err(SendError(v)),
                Err(TrySendError::Full(v)) => {
                    value = v;
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Attempt to send without blocking.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        if self.shared.receivers.load(Ordering::Acquire) == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if queue.len() >= self.shared.capacity {
            return Err(TrySendError::Full(value));
        }
        queue.push_back(value);
        drop(queue);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// True when no message is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Attempt to receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(v) = queue.pop_front() {
            return Ok(v);
        }
        if self.shared.senders.load(Ordering::Acquire) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receive, waiting up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (q, timed_out) = self
                .shared
                .not_empty
                .wait_timeout(queue, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            queue = q;
            if timed_out.timed_out() && queue.is_empty() {
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// True when no message is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_and_backpressure() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)).unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
        assert!(matches!(
            rx.recv_timeout(Duration::ZERO),
            Err(RecvTimeoutError::Timeout)
        ));
    }

    #[test]
    fn disconnect_is_observable() {
        let (tx, rx) = bounded::<u32>(1);
        drop(tx);
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        ));
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(matches!(tx.try_send(1), Err(TrySendError::Disconnected(1))));
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = bounded(16);
        let handle = std::thread::spawn(move || {
            for i in 0..10 {
                tx.try_send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while got.len() < 10 {
            if let Ok(v) = rx.recv_timeout(Duration::from_secs(1)) {
                got.push(v);
            }
        }
        handle.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }
}
