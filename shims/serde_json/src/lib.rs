//! Offline stand-in for `serde_json`: JSON text to and from the local serde
//! shim's [`serde::Value`] model.

use std::fmt;

use serde::Value;

/// JSON encoding/decoding error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Unit | Value::Option(None) => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                out.push_str(&n.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Bytes(b) => {
            out.push('[');
            for (i, byte) in b.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&byte.to_string());
            }
            out.push(']');
        }
        Value::Option(Some(inner)) => write_value(inner, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match k {
                    Value::Str(s) => escape_into(s, out),
                    other => {
                        // JSON keys must be strings; stringify scalars.
                        let mut key = String::new();
                        write_value(other, &mut key);
                        escape_into(&key, out);
                    }
                }
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
        Value::Record(fields) => {
            out.push('{');
            for (i, (name, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(name, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
        Value::Variant(name, payload) => match payload.as_ref() {
            Value::Unit => escape_into(name, out),
            payload => {
                out.push('{');
                escape_into(name, out);
                out.push(':');
                write_value(payload, out);
                out.push('}');
            }
        },
    }
}

/// Serialise a value to a JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let v = serde::to_value(value)?;
    let mut out = String::new();
    write_value(&v, &mut out);
    Ok(out)
}

/// Serialise a value to a JSON string (shim: same as [`to_string`]).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    to_string(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of JSON".into()))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? != b {
            return Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn literal(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .bytes
                .get(self.pos)
                .copied()
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error("bad \\u escape".into()));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(Error("invalid UTF-8".into()));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map(|v| Value::I64(-(v as i64)))
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Value> {
        if depth > 128 {
            return Err(Error("nesting too deep".into()));
        }
        match self.peek()? {
            b'n' => {
                self.literal("null")?;
                Ok(Value::Unit)
            }
            b't' => {
                self.literal("true")?;
                Ok(Value::Bool(true))
            }
            b'f' => {
                self.literal("false")?;
                Ok(Value::Bool(false))
            }
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error("expected `,` or `]`".into())),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Record(fields));
                }
                loop {
                    self.skip_ws();
                    let name = self.string()?;
                    self.expect(b':')?;
                    let v = self.value(depth + 1)?;
                    fields.push((name, v));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Record(fields));
                        }
                        _ => return Err(Error("expected `,` or `}`".into())),
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error(format!("unexpected byte `{}`", other as char))),
        }
    }
}

fn utf8_width(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Deserialise a value from a JSON string.
pub fn from_str<'a, T: serde::Deserialize<'a>>(s: &'a str) -> Result<T> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let value = parser.value(0)?;
    parser.skip_ws();
    if parser.pos != s.len() {
        return Err(Error("trailing characters after JSON value".into()));
    }
    Ok(serde::from_value(value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_collections() {
        assert_eq!(to_string(&1u64).unwrap(), "1");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b".to_string()).unwrap(), "\"a\\\"b\"");
        let v = vec![1u64, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&json).unwrap(), v);
        let f: f64 = from_str("2.5").unwrap();
        assert_eq!(f, 2.5);
        let f: f64 = from_str("20").unwrap();
        assert_eq!(f, 20.0);
        let n: Option<u32> = from_str("null").unwrap();
        assert_eq!(n, None);
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(from_str::<u64>("[1,").is_err());
        assert!(from_str::<u64>("1 trailing").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }
}
