//! Offline stand-in for `proptest`: the `proptest!` macro, range/collection
//! strategies and `prop_assert*` macros, over a deterministic generator.
//!
//! Shrinking is not implemented — failures report the generated inputs via
//! the standard assertion message instead.

use std::ops::Range;

/// Deterministic random source driving all strategies.
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// A generator with the given seed.
    pub fn new(seed: u64) -> Self {
        Gen { state: seed }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// A source of generated values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, gen: &mut Gen) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + gen.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, gen: &mut Gen) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (gen.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Strategy for any value of a type (`any::<u64>()`).
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(gen: &mut Gen) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(gen: &mut Gen) -> $t {
                gen.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(gen: &mut Gen) -> bool {
        gen.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, gen: &mut Gen) -> T {
        T::arbitrary(gen)
    }
}

/// The "any value of `T`" strategy.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`proptest::collection::vec` and friends).
pub mod collection {
    use super::{Gen, Strategy};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy producing a `Vec` with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` of values from `element`, with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, gen: &mut Gen) -> Vec<S::Value> {
            let len = self.size.clone().generate(gen);
            (0..len).map(|_| self.element.generate(gen)).collect()
        }
    }

    /// Strategy producing a `BTreeSet` targeting lengths in `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `BTreeSet` of values from `element`, with up to `size.end` items
    /// and at least `size.start` (where the element domain allows it).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, gen: &mut Gen) -> BTreeSet<S::Value> {
            let target = self.size.clone().generate(gen);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 10 + 16 {
                out.insert(self.element.generate(gen));
                attempts += 1;
            }
            out
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, gen: &mut Gen) -> S::Value {
        (**self).generate(gen)
    }
}

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property with `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Commonly-imported names.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Property assertion (shim: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion (shim: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property inequality assertion (shim: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip the current generated case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr); ) => {};
    (@cfg ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let mut __gen = $crate::Gen::new(0x5eed_0000 ^ (stringify!($name).len() as u64));
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __gen);)*
                $body
            }
        }
        $crate::__proptest_impl!(@cfg ($cfg); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(x in 10u64..20, y in 0usize..3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y < 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn collections_and_assume(
            v in crate::collection::vec(0u64..100, 0..10),
            s in crate::collection::btree_set(0u64..50, 1..5),
        ) {
            prop_assume!(!v.is_empty());
            prop_assert!(v.iter().all(|x| *x < 100));
            prop_assert!(!s.is_empty());
        }
    }

    #[test]
    fn any_is_deterministic_per_gen() {
        let mut g1 = super::Gen::new(1);
        let mut g2 = super::Gen::new(1);
        let a: u64 = super::Arbitrary::arbitrary(&mut g1);
        let b: u64 = super::Arbitrary::arbitrary(&mut g2);
        assert_eq!(a, b);
    }
}
