//! Offline stand-in for `bytes`: a cheaply-cloneable, immutable byte buffer
//! with serde support via the local shim.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply-cloneable immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    inner: Arc<Vec<u8>>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            inner: Arc::new(data.to_vec()),
        }
    }

    /// Wrap a static slice (copies in this shim).
    pub fn from_static(data: &'static [u8]) -> Self {
        Self::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copy out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.as_ref().clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.inner.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.inner.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.inner.iter().take(32) {
            if (0x20..0x7f).contains(&b) {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 32 {
            write!(f, "…({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { inner: Arc::new(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes {
            inner: Arc::new(v.into_bytes()),
        }
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Self::copy_from_slice(v.as_bytes())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.to_vec()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes {
            inner: Arc::new(iter.into_iter().collect()),
        }
    }
}

impl serde_shim::Serialize for Bytes {
    fn serialize<S: serde_shim::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bytes(self)
    }
}

impl<'de> serde_shim::Deserialize<'de> for Bytes {
    fn deserialize<D: serde_shim::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v: Vec<u8> = serde_shim::Deserialize::deserialize(d)?;
        Ok(Bytes::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_is_cheap_and_equal() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    fn conversions() {
        assert_eq!(Bytes::from("abc").to_vec(), b"abc".to_vec());
        assert_eq!(Bytes::from_static(b"xy").len(), 2);
        let v: Vec<u8> = Bytes::from(vec![9]).into();
        assert_eq!(v, vec![9]);
    }
}
