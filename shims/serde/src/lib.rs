//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of serde's API that the workspace uses, implemented over a
//! self-describing [`Value`] model: `Serialize` lowers a type to a [`Value`],
//! `Deserialize` rebuilds it from one, and the format crates (`bincode`,
//! `serde_json` shims) encode/decode [`Value`]s. The derive macros come from
//! the sibling `serde_derive` shim and support the attributes this workspace
//! uses: `#[serde(default)]` and `#[serde(with = "path")]`.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;

/// The self-describing data model every type serialises into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The unit value / JSON null.
    Unit,
    /// A boolean.
    Bool(bool),
    /// Any unsigned integer.
    U64(u64),
    /// Any signed integer.
    I64(i64),
    /// Any floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A byte blob (`serialize_bytes`).
    Bytes(Vec<u8>),
    /// An optional value.
    Option(Option<Box<Value>>),
    /// A sequence (Vec, tuple, tuple struct).
    Seq(Vec<Value>),
    /// A map with arbitrary keys.
    Map(Vec<(Value, Value)>),
    /// A struct: named fields in declaration order.
    Record(Vec<(String, Value)>),
    /// An enum variant: name plus payload (Unit / Seq / Record).
    Variant(String, Box<Value>),
}

/// The single error type shared by serialisation and deserialisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }

    /// A struct field was missing from the input.
    pub fn missing_field(name: &str) -> Self {
        Error(format!("missing field `{name}`"))
    }

    /// The input held a different shape than the target type expects.
    pub fn unexpected(expected: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Unit => "unit",
            Value::Bool(_) => "bool",
            Value::U64(_) => "u64",
            Value::I64(_) => "i64",
            Value::F64(_) => "f64",
            Value::Str(_) => "string",
            Value::Bytes(_) => "bytes",
            Value::Option(_) => "option",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
            Value::Record(_) => "record",
            Value::Variant(..) => "variant",
        };
        Error(format!("expected {expected}, got {kind}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can lower itself into the [`Value`] model.
pub trait Serialize {
    /// Serialise `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Consumes a [`Value`] produced by a [`Serialize`] implementation.
pub trait Serializer: Sized {
    /// Output of a successful serialisation.
    type Ok;
    /// Error type; every serde error must convert into it.
    type Error: From<Error>;

    /// Accept the lowered value.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;

    /// Accept a byte blob (kept distinct so formats can encode it compactly).
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Bytes(v.to_vec()))
    }
}

/// Produces the [`Value`] a [`Deserialize`] implementation rebuilds from.
pub trait Deserializer<'de>: Sized {
    /// Error type; every serde error must convert into it.
    type Error: From<Error>;

    /// Yield the input as a [`Value`].
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// A type that can rebuild itself from the [`Value`] model.
pub trait Deserialize<'de>: Sized {
    /// Deserialise from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// `serde::de` compatibility surface.
pub mod de {
    pub use crate::{Deserialize, Deserializer, Error};

    /// Owned deserialisation (no borrowed data), as in real serde.
    pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
    impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
}

/// `serde::ser` compatibility surface.
pub mod ser {
    pub use crate::{Error, Serialize, Serializer};
}

/// The identity serializer: returns the lowered [`Value`].
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;

    fn serialize_value(self, value: Value) -> Result<Value, Error> {
        Ok(value)
    }
}

/// The identity deserializer: yields a stored [`Value`].
pub struct ValueDeserializer {
    value: Value,
}

impl ValueDeserializer {
    /// Wrap a value.
    pub fn new(value: Value) -> Self {
        ValueDeserializer { value }
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = Error;

    fn take_value(self) -> Result<Value, Error> {
        Ok(self.value)
    }
}

/// Lower any serialisable value into the [`Value`] model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    value.serialize(ValueSerializer)
}

/// Rebuild a value from the [`Value`] model.
pub fn from_value<'de, T: Deserialize<'de>>(value: Value) -> Result<T, Error> {
    T::deserialize(ValueDeserializer::new(value))
}

/// Field-by-name access into a [`Value::Record`] (or a map with string
/// keys), used by derived struct deserialisers.
pub struct RecordAccess {
    fields: Vec<(String, Option<Value>)>,
}

impl RecordAccess {
    /// Accept a record (or a string-keyed map, which JSON input produces).
    pub fn new(value: Value) -> Result<Self, Error> {
        let fields = match value {
            Value::Record(fields) => fields
                .into_iter()
                .map(|(name, v)| (name, Some(v)))
                .collect(),
            Value::Map(entries) => {
                let mut fields = Vec::with_capacity(entries.len());
                for (k, v) in entries {
                    match k {
                        Value::Str(name) => fields.push((name, Some(v))),
                        other => return Err(Error::unexpected("string key", &other)),
                    }
                }
                fields
            }
            other => return Err(Error::unexpected("record", &other)),
        };
        Ok(RecordAccess { fields })
    }

    /// Remove and return the raw value of a field, if present.
    pub fn take(&mut self, name: &str) -> Option<Value> {
        self.fields
            .iter_mut()
            .find(|(n, v)| n == name && v.is_some())
            .and_then(|(_, v)| v.take())
    }

    /// Deserialise a required field.
    pub fn field<'de, T: Deserialize<'de>>(&mut self, name: &str) -> Result<T, Error> {
        match self.take(name) {
            Some(v) => from_value(v),
            None => Err(Error::missing_field(name)),
        }
    }

    /// Deserialise a field, falling back to `Default` when absent
    /// (`#[serde(default)]`).
    pub fn field_or_default<'de, T: Deserialize<'de> + Default>(
        &mut self,
        name: &str,
    ) -> Result<T, Error> {
        match self.take(name) {
            Some(v) => from_value(v),
            None => Ok(T::default()),
        }
    }
}

/// Element-by-element access into a [`Value::Seq`], used by derived tuple
/// struct and tuple variant deserialisers.
pub struct SeqAccess {
    items: std::vec::IntoIter<Value>,
}

impl SeqAccess {
    /// Accept a sequence.
    pub fn new(value: Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => Ok(SeqAccess {
                items: items.into_iter(),
            }),
            other => Err(Error::unexpected("sequence", &other)),
        }
    }

    /// Deserialise the next element.
    pub fn next<'de, T: Deserialize<'de>>(&mut self) -> Result<T, Error> {
        match self.items.next() {
            Some(v) => from_value(v),
            None => Err(Error::custom("sequence shorter than expected")),
        }
    }
}

/// Decode the `(variant name, payload)` of an enum from any of the shapes
/// the formats produce: a native [`Value::Variant`], a bare string (JSON
/// unit variant) or a single-entry record (JSON data variant).
pub fn enum_access(value: Value) -> Result<(String, Value), Error> {
    match value {
        Value::Variant(name, payload) => Ok((name, *payload)),
        Value::Str(name) => Ok((name, Value::Unit)),
        Value::Record(mut fields) if fields.len() == 1 => {
            let (name, payload) = fields.remove(0);
            Ok((name, payload))
        }
        Value::Map(mut entries) if entries.len() == 1 => {
            let (k, payload) = entries.remove(0);
            match k {
                Value::Str(name) => Ok((name, payload)),
                other => Err(Error::unexpected("variant name", &other)),
            }
        }
        other => Err(Error::unexpected("enum variant", &other)),
    }
}

// ---------------------------------------------------------------------------
// Serialize / Deserialize implementations for std types.
// ---------------------------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::U64(*self as u64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.take_value()? {
                    Value::U64(v) => <$t>::try_from(v)
                        .map_err(|_| Error::custom("integer out of range").into()),
                    Value::I64(v) => <$t>::try_from(v)
                        .map_err(|_| Error::custom("integer out of range").into()),
                    other => Err(Error::unexpected("integer", &other).into()),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::I64(*self as i64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.take_value()? {
                    Value::I64(v) => <$t>::try_from(v)
                        .map_err(|_| Error::custom("integer out of range").into()),
                    Value::U64(v) => <$t>::try_from(v)
                        .map_err(|_| Error::custom("integer out of range").into()),
                    other => Err(Error::unexpected("integer", &other).into()),
                }
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::F64(*self as f64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.take_value()? {
                    Value::F64(v) => Ok(v as $t),
                    Value::U64(v) => Ok(v as $t),
                    Value::I64(v) => Ok(v as $t),
                    other => Err(Error::unexpected("float", &other).into()),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Bool(*self))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Bool(v) => Ok(v),
            other => Err(Error::unexpected("bool", &other).into()),
        }
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.to_string()))
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Str(v) if v.chars().count() == 1 => Ok(v.chars().next().unwrap()),
            other => Err(Error::unexpected("char", &other).into()),
        }
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.to_string()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.clone()))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Str(v) => Ok(v),
            other => Err(Error::unexpected("string", &other).into()),
        }
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Unit)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Unit => Ok(()),
            other => Err(Error::unexpected("unit", &other).into()),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(Box::new(T::deserialize(d)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            None => s.serialize_value(Value::Option(None)),
            Some(v) => {
                let inner = to_value(v)?;
                s.serialize_value(Value::Option(Some(Box::new(inner))))
            }
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Option(None) | Value::Unit => Ok(None),
            Value::Option(Some(v)) => Ok(Some(from_value(*v)?)),
            // JSON input has no dedicated option shape: a bare value is Some.
            other => Ok(Some(from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut items = Vec::with_capacity(self.len());
        for item in self {
            items.push(to_value(item)?);
        }
        s.serialize_value(Value::Seq(items))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Seq(items) => items
                .into_iter()
                .map(|v| from_value(v).map_err(Into::into))
                .collect(),
            // A byte blob deserialises as a sequence of integers (Vec<u8>).
            Value::Bytes(bytes) => bytes
                .into_iter()
                .map(|b| from_value(Value::U64(b as u64)).map_err(Into::into))
                .collect(),
            other => Err(Error::unexpected("sequence", &other).into()),
        }
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut items = Vec::with_capacity(self.len());
        for item in self {
            items.push(to_value(item)?);
        }
        s.serialize_value(Value::Seq(items))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for VecDeque<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(Vec::<T>::deserialize(d)?.into())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut items = Vec::with_capacity(self.len());
        for item in self {
            items.push(to_value(item)?);
        }
        s.serialize_value(Value::Seq(items))
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(Vec::<T>::deserialize(d)?.into_iter().collect())
    }
}

impl<T: Serialize, H> Serialize for HashSet<T, H> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut items = Vec::with_capacity(self.len());
        for item in self {
            items.push(to_value(item)?);
        }
        s.serialize_value(Value::Seq(items))
    }
}

impl<'de, T, H> Deserialize<'de> for HashSet<T, H>
where
    T: Deserialize<'de> + Eq + std::hash::Hash,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(Vec::<T>::deserialize(d)?.into_iter().collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Seq(vec![to_value(&self.0)?, to_value(&self.1)?]))
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let mut seq = SeqAccess::new(d.take_value()?)?;
        Ok((seq.next()?, seq.next()?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Seq(vec![
            to_value(&self.0)?,
            to_value(&self.1)?,
            to_value(&self.2)?,
        ]))
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let mut seq = SeqAccess::new(d.take_value()?)?;
        Ok((seq.next()?, seq.next()?, seq.next()?))
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut entries = Vec::with_capacity(self.len());
        for (k, v) in self {
            entries.push((to_value(k)?, to_value(v)?));
        }
        s.serialize_value(Value::Map(entries))
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        map_entries(d.take_value()?)?
            .into_iter()
            .map(|(k, v)| Ok((from_value(k)?, from_value(v)?)))
            .collect::<Result<_, Error>>()
            .map_err(Into::into)
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut entries = Vec::with_capacity(self.len());
        for (k, v) in self {
            entries.push((to_value(k)?, to_value(v)?));
        }
        s.serialize_value(Value::Map(entries))
    }
}

impl<'de, K, V, H> Deserialize<'de> for HashMap<K, V, H>
where
    K: Deserialize<'de> + Eq + std::hash::Hash,
    V: Deserialize<'de>,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        map_entries(d.take_value()?)?
            .into_iter()
            .map(|(k, v)| Ok((from_value(k)?, from_value(v)?)))
            .collect::<Result<_, Error>>()
            .map_err(Into::into)
    }
}

fn map_entries(value: Value) -> Result<Vec<(Value, Value)>, Error> {
    match value {
        Value::Map(entries) => Ok(entries),
        Value::Record(fields) => Ok(fields
            .into_iter()
            .map(|(k, v)| (Value::Str(k), v))
            .collect()),
        other => Err(Error::unexpected("map", &other)),
    }
}

impl Serialize for std::path::PathBuf {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.to_string_lossy().into_owned()))
    }
}

impl<'de> Deserialize<'de> for std::path::PathBuf {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(std::path::PathBuf::from(String::deserialize(d)?))
    }
}

impl Serialize for std::time::Duration {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Seq(vec![
            Value::U64(self.as_secs()),
            Value::U64(self.subsec_nanos() as u64),
        ]))
    }
}

impl<'de> Deserialize<'de> for std::time::Duration {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let mut seq = SeqAccess::new(d.take_value()?)?;
        let secs: u64 = seq.next()?;
        let nanos: u32 = seq.next()?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(self.clone())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.take_value()
    }
}
