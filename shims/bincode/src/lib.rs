//! Offline stand-in for `bincode`: a compact, tagged binary encoding of the
//! local serde shim's [`serde::Value`] model.
//!
//! Layout per value: one tag byte, then a fixed- or length-prefixed body.
//! Integers are encoded as LEB128 varints, lengths likewise. Deserialisation
//! validates tags and lengths and requires the input to be fully consumed,
//! so truncated or corrupt inputs reliably error.

use std::fmt;

use serde::Value;

/// Decoding/encoding error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bincode: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Result alias matching real bincode's signature shape.
pub type Result<T> = std::result::Result<T, Error>;

const TAG_UNIT: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_U64: u8 = 3;
const TAG_I64: u8 = 4;
const TAG_F64: u8 = 5;
const TAG_STR: u8 = 6;
const TAG_BYTES: u8 = 7;
const TAG_NONE: u8 = 8;
const TAG_SOME: u8 = 9;
const TAG_SEQ: u8 = 10;
const TAG_MAP: u8 = 11;
const TAG_RECORD: u8 = 12;
const TAG_VARIANT: u8 = 13;

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn encode(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Unit => out.push(TAG_UNIT),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::U64(v) => {
            out.push(TAG_U64);
            put_varint(out, *v);
        }
        Value::I64(v) => {
            out.push(TAG_I64);
            // zigzag
            put_varint(out, ((v << 1) ^ (v >> 63)) as u64);
        }
        Value::F64(v) => {
            out.push(TAG_F64);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            put_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            out.push(TAG_BYTES);
            put_varint(out, b.len() as u64);
            out.extend_from_slice(b);
        }
        Value::Option(None) => out.push(TAG_NONE),
        Value::Option(Some(v)) => {
            out.push(TAG_SOME);
            encode(v, out);
        }
        Value::Seq(items) => {
            out.push(TAG_SEQ);
            put_varint(out, items.len() as u64);
            for item in items {
                encode(item, out);
            }
        }
        Value::Map(entries) => {
            out.push(TAG_MAP);
            put_varint(out, entries.len() as u64);
            for (k, v) in entries {
                encode(k, out);
                encode(v, out);
            }
        }
        Value::Record(fields) => {
            out.push(TAG_RECORD);
            put_varint(out, fields.len() as u64);
            for (name, v) in fields {
                put_varint(out, name.len() as u64);
                out.extend_from_slice(name.as_bytes());
                encode(v, out);
            }
        }
        Value::Variant(name, payload) => {
            out.push(TAG_VARIANT);
            put_varint(out, name.len() as u64);
            out.extend_from_slice(name.as_bytes());
            encode(payload, out);
        }
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn byte(&mut self) -> Result<u8> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| Error("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift >= 64 {
                return Err(Error("varint overflow".into()));
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(Error("unexpected end of input".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn string(&mut self) -> Result<String> {
        let len = self.varint()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| Error("invalid UTF-8".into()))
    }

    fn value(&mut self, depth: u32) -> Result<Value> {
        if depth > 128 {
            return Err(Error("nesting too deep".into()));
        }
        Ok(match self.byte()? {
            TAG_UNIT => Value::Unit,
            TAG_FALSE => Value::Bool(false),
            TAG_TRUE => Value::Bool(true),
            TAG_U64 => Value::U64(self.varint()?),
            TAG_I64 => {
                let z = self.varint()?;
                Value::I64(((z >> 1) as i64) ^ -((z & 1) as i64))
            }
            TAG_F64 => {
                let raw = self.take(8)?;
                Value::F64(f64::from_le_bytes(raw.try_into().unwrap()))
            }
            TAG_STR => Value::Str(self.string()?),
            TAG_BYTES => {
                let len = self.varint()? as usize;
                Value::Bytes(self.take(len)?.to_vec())
            }
            TAG_NONE => Value::Option(None),
            TAG_SOME => Value::Option(Some(Box::new(self.value(depth + 1)?))),
            TAG_SEQ => {
                let len = self.varint()? as usize;
                if len > self.bytes.len().saturating_sub(self.pos) {
                    return Err(Error("sequence length exceeds input".into()));
                }
                let mut items = Vec::with_capacity(len.min(1024));
                for _ in 0..len {
                    items.push(self.value(depth + 1)?);
                }
                Value::Seq(items)
            }
            TAG_MAP => {
                let len = self.varint()? as usize;
                if len > self.bytes.len().saturating_sub(self.pos) {
                    return Err(Error("map length exceeds input".into()));
                }
                let mut entries = Vec::with_capacity(len.min(1024));
                for _ in 0..len {
                    let k = self.value(depth + 1)?;
                    let v = self.value(depth + 1)?;
                    entries.push((k, v));
                }
                Value::Map(entries)
            }
            TAG_RECORD => {
                let len = self.varint()? as usize;
                if len > self.bytes.len().saturating_sub(self.pos) {
                    return Err(Error("record length exceeds input".into()));
                }
                let mut fields = Vec::with_capacity(len.min(1024));
                for _ in 0..len {
                    let name = self.string()?;
                    let v = self.value(depth + 1)?;
                    fields.push((name, v));
                }
                Value::Record(fields)
            }
            TAG_VARIANT => {
                let name = self.string()?;
                Value::Variant(name, Box::new(self.value(depth + 1)?))
            }
            tag => return Err(Error(format!("invalid tag byte {tag:#04x}"))),
        })
    }
}

/// Serialise a value to bytes.
pub fn serialize<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    let v = serde::to_value(value)?;
    let mut out = Vec::new();
    encode(&v, &mut out);
    Ok(out)
}

/// The number of bytes `serialize` would produce.
pub fn serialized_size<T: serde::Serialize + ?Sized>(value: &T) -> Result<u64> {
    Ok(serialize(value)?.len() as u64)
}

/// Deserialise a value from bytes. The input must be fully consumed.
pub fn deserialize<'a, T: serde::Deserialize<'a>>(bytes: &'a [u8]) -> Result<T> {
    let mut reader = Reader { bytes, pos: 0 };
    let value = reader.value(0)?;
    if reader.pos != bytes.len() {
        return Err(Error(format!(
            "trailing garbage: {} of {} bytes consumed",
            reader.pos,
            bytes.len()
        )));
    }
    Ok(serde::from_value(value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let bytes = serialize(&42u64).unwrap();
        assert_eq!(deserialize::<u64>(&bytes).unwrap(), 42);
        let bytes = serialize(&-7i32).unwrap();
        assert_eq!(deserialize::<i32>(&bytes).unwrap(), -7);
        let bytes = serialize(&"hello".to_string()).unwrap();
        assert_eq!(deserialize::<String>(&bytes).unwrap(), "hello");
        let bytes = serialize(&3.25f64).unwrap();
        assert_eq!(deserialize::<f64>(&bytes).unwrap(), 3.25);
        let bytes = serialize(&vec![1u8, 2, 3]).unwrap();
        assert_eq!(deserialize::<Vec<u8>>(&bytes).unwrap(), vec![1, 2, 3]);
        let bytes = serialize(&Some(5u32)).unwrap();
        assert_eq!(deserialize::<Option<u32>>(&bytes).unwrap(), Some(5));
    }

    #[test]
    fn garbage_inputs_error() {
        assert!(deserialize::<String>(&[0xff, 0xff, 0xff]).is_err());
        assert!(deserialize::<u64>(&[]).is_err());
        // trailing garbage
        let mut bytes = serialize(&1u64).unwrap();
        bytes.push(0);
        assert!(deserialize::<u64>(&bytes).is_err());
        // truncated
        let bytes = serialize(&"a long enough string".to_string()).unwrap();
        assert!(deserialize::<String>(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn serialized_size_matches() {
        let v = vec![1u64, 2, 3];
        assert_eq!(
            serialized_size(&v).unwrap(),
            serialize(&v).unwrap().len() as u64
        );
    }
}
