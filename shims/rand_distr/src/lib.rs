//! Offline stand-in for `rand_distr`: the `Exp` and `Zipf` distributions
//! this workspace samples from.

use rand::RngCore;

/// Types that can be sampled with a random source.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistrError(pub &'static str);

impl std::fmt::Display for DistrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DistrError {}

/// The exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy)]
pub struct Exp<F> {
    lambda: f64,
    _marker: std::marker::PhantomData<F>,
}

impl<F> Exp<F> {
    /// An exponential distribution with the given rate (`lambda > 0`).
    pub fn new(lambda: f64) -> Result<Self, DistrError> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Exp {
                lambda,
                _marker: std::marker::PhantomData,
            })
        } else {
            Err(DistrError("lambda must be positive and finite"))
        }
    }
}

impl Distribution<f64> for Exp<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse-CDF: -ln(1 - U) / lambda, with U in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        -(1.0 - unit).ln() / self.lambda
    }
}

/// The Zipf distribution over ranks `1..=n` with exponent `s`: sampling
/// returns the rank as a float, rank 1 being the most probable.
#[derive(Debug, Clone)]
pub struct Zipf<F> {
    /// Cumulative probabilities, one entry per rank.
    cdf: Vec<f64>,
    _marker: std::marker::PhantomData<F>,
}

impl<F> Zipf<F> {
    /// A Zipf distribution over `n` ranks with exponent `s >= 0`.
    pub fn new(n: u64, s: f64) -> Result<Self, DistrError> {
        if n == 0 {
            return Err(DistrError("n must be at least 1"));
        }
        if !(s.is_finite() && s >= 0.0) {
            return Err(DistrError("exponent must be non-negative and finite"));
        }
        let n = usize::try_from(n).map_err(|_| DistrError("n too large"))?;
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cdf.push(total);
        }
        for c in cdf.iter_mut() {
            *c /= total;
        }
        Ok(Zipf {
            cdf,
            _marker: std::marker::PhantomData,
        })
    }
}

impl Distribution<f64> for Zipf<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let idx = match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&unit).expect("finite"))
        {
            Ok(i) | Err(i) => i,
        };
        (idx.min(self.cdf.len() - 1) + 1) as f64
    }
}

/// Alias used by some callers.
pub use DistrError as Error;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exp_mean_approximates_inverse_lambda() {
        let exp = Exp::<f64>::new(0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| exp.sample(&mut rng)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean = {mean}");
        assert!(Exp::<f64>::new(0.0).is_err());
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let zipf = Zipf::<f64>::new(100, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 101];
        for _ in 0..50_000 {
            let rank = zipf.sample(&mut rng) as usize;
            assert!((1..=100).contains(&rank));
            counts[rank] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[10]);
        assert!(counts[1] > counts[50] * 10);
        assert!(Zipf::<f64>::new(0, 1.0).is_err());
    }
}
