//! Offline stand-in for `rand` 0.8: a deterministic xoshiro256++ generator
//! behind the `Rng`/`SeedableRng` API subset this workspace uses
//! (`StdRng::seed_from_u64`, `gen_range` over integer ranges, `gen_bool`).

use std::ops::{Range, RangeInclusive};

/// Core random-number source.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Sample-range support for [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128 + self.start as i128;
                v as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128 + lo as i128;
                v as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience methods over a random source.
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// A uniform `f64` in `[0, 1)`.
    fn gen_unit(&mut self) -> f64
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<T: RngCore> Rng for T {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256++ generator (stands in for rand's StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [mut s0, mut s1, mut s2, mut s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

/// `rand::prelude` compatibility surface.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let v = rng.gen_range(30..=70u32);
            assert!((30..=70).contains(&v));
            let v = rng.gen_range(0usize..3);
            assert!(v < 3);
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
        assert!(!StdRng::seed_from_u64(3).gen_bool(0.0));
        assert!(StdRng::seed_from_u64(3).gen_bool(1.0));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
