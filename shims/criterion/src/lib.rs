//! Offline stand-in for `criterion`: runs each benchmark a small, fixed
//! number of iterations and prints mean wall-clock time per iteration. No
//! statistics, warm-up scheduling or HTML reports — just enough to keep the
//! bench targets building, running and printing comparable numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How a batched iteration routine receives its setup value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small input: setup per batch.
    SmallInput,
    /// Large input: setup per batch.
    LargeInput,
    /// Fresh setup for every iteration.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id from just a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    iterations: u64,
    last_mean: Option<Duration>,
}

impl Bencher {
    /// Time `routine` over the configured iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let started = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.last_mean = Some(started.elapsed() / self.iterations.max(1) as u32);
    }

    /// Time `routine` with a fresh `setup` value per iteration.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let started = Instant::now();
            std::hint::black_box(routine(input));
            total += started.elapsed();
        }
        self.last_mean = Some(total / self.iterations.max(1) as u32);
    }
}

/// Prevent the optimiser from discarding a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    fn run(&self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            iterations: self.criterion.iterations,
            last_mean: None,
        };
        f(&mut bencher);
        if let Some(mean) = bencher.last_mean {
            println!("bench {}/{}: {:?}/iter", self.name, id, mean);
        }
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) {
        self.run(&id.to_string(), f);
    }

    /// Benchmark a closure that receives `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.run(&id.to_string(), |b| f(b, input));
    }

    /// Accepted for API compatibility; the shim runs a fixed iteration count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// The benchmark harness.
pub struct Criterion {
    iterations: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep iterations tiny: these benches also run under `cargo test`.
        Criterion { iterations: 3 }
    }
}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Benchmark a standalone closure.
    pub fn bench_function(&mut self, name: impl Display, f: impl FnOnce(&mut Bencher)) {
        let mut group = self.benchmark_group(name.to_string());
        group.bench_function("default", f);
        group.finish();
    }

    /// Accepted for API compatibility.
    pub fn sample_size(mut self, _n: usize) -> Self {
        self.iterations = self.iterations.max(1);
        self
    }
}

/// Define a benchmark group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Define the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, n| {
            b.iter_batched(|| *n, |n| n * 2, BatchSize::PerIteration)
        });
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut criterion = Criterion::default();
        sample_bench(&mut criterion);
        assert_eq!(black_box(5), 5);
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }
}
