#!/usr/bin/env bash
# Distribution smoke test: a coordinator and two seep-node workers on
# localhost, a word-frequency job driven end to end, one worker SIGKILLed
# mid-run. Asserts that recovery happens through the standard path (journal
# event + /metrics counters) and that the surviving run's results are
# byte-identical to the in-process baseline.
#
# Usage: scripts/dist_smoke.sh [path-to-seep-node-binary]
set -euo pipefail

BIN="${1:-target/release/seep-node}"
if [ ! -x "$BIN" ]; then
  echo "dist_smoke: building $BIN" >&2
  cargo build --release -p seep-node
fi

DIR="$(mktemp -d)"
trap 'kill -9 ${COORD:-} ${W1:-} ${W2:-} 2>/dev/null || true; rm -rf "$DIR"' EXIT

ROUNDS=20
RATE=20

# Raw-TCP /metrics scrape; CI runners may lack curl but bash has /dev/tcp.
scrape() {
  local host="${1%:*}" port="${1#*:}"
  exec 3<>"/dev/tcp/$host/$port" || return 1
  printf 'GET /metrics HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n\r\n' >&3
  cat <&3
  exec 3<&-
}

metric_at_least() {
  local body="$1" name="$2" threshold="$3"
  echo "$body" | awk -v n="$name" -v t="$threshold" \
    'index($1, n) == 1 && $NF + 0 >= t { found = 1 } END { exit !found }'
}

"$BIN" --coordinator --workers 2 --rounds "$ROUNDS" --rate "$RATE" \
  --round-delay-ms 150 --port-file "$DIR/port" --out "$DIR/dist.txt" \
  --metrics-addr 127.0.0.1:0 --metrics-port-file "$DIR/mport" \
  --journal "$DIR/journal.jsonl" --hold-ms 2000 >/dev/null &
COORD=$!

for _ in $(seq 1 100); do [ -s "$DIR/port" ] && break; sleep 0.1; done
ADDR="$(cat "$DIR/port")"
echo "dist_smoke: coordinator at $ADDR"

"$BIN" --worker --name w1 --coordinator-addr "$ADDR" >/dev/null & W1=$!
"$BIN" --worker --name w2 --coordinator-addr "$ADDR" >/dev/null & W2=$!

for _ in $(seq 1 100); do [ -s "$DIR/mport" ] && break; sleep 0.1; done
MADDR="$(cat "$DIR/mport")"

# Wait for at least two checkpoints, then SIGKILL the worker hosting the
# stateful operator (w2 under the deterministic round-robin placement).
for _ in $(seq 1 300); do
  if BODY="$(scrape "$MADDR" 2>/dev/null)" \
     && metric_at_least "$BODY" seep_checkpoints_total 2; then
    break
  fi
  sleep 0.2
done
metric_at_least "$BODY" seep_checkpoints_total 2 \
  || { echo "dist_smoke: no checkpoints observed" >&2; exit 1; }

echo "dist_smoke: SIGKILLing worker w2 (pid $W2)"
kill -9 "$W2"

# The failure must surface as a recovery on /metrics.
RECOVERED=0
for _ in $(seq 1 300); do
  if BODY="$(scrape "$MADDR" 2>/dev/null)" \
     && metric_at_least "$BODY" seep_recoveries_total 1; then
    RECOVERED=1
    break
  fi
  sleep 0.2
done
[ "$RECOVERED" = 1 ] || { echo "dist_smoke: recovery never surfaced on /metrics" >&2; exit 1; }
echo "$BODY" | grep -q '^seep_transport_bytes_total' \
  || { echo "dist_smoke: transport counters missing from /metrics" >&2; exit 1; }

wait "$COORD" || { echo "dist_smoke: coordinator failed" >&2; exit 1; }
wait "$W1" || { echo "dist_smoke: surviving worker failed" >&2; exit 1; }

grep -q '"kind":"Recovery"' "$DIR/journal.jsonl" \
  || { echo "dist_smoke: no Recovery event in journal" >&2; exit 1; }

# Results must match a run that never lost a worker. Processed counters
# reset when an instance is replaced, so only `result` lines are compared.
"$BIN" --baseline --rounds "$ROUNDS" --rate "$RATE" --out "$DIR/base.txt" >/dev/null
grep '^result ' "$DIR/dist.txt" > "$DIR/dist-results.txt"
grep '^result ' "$DIR/base.txt" > "$DIR/base-results.txt"
diff -u "$DIR/base-results.txt" "$DIR/dist-results.txt" \
  || { echo "dist_smoke: post-recovery results differ from baseline" >&2; exit 1; }

echo "dist_smoke: OK ($(wc -l < "$DIR/dist-results.txt") result lines identical after kill -9)"
