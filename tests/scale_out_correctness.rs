//! Integration test: dynamic scale out of the stateful word counter preserves
//! query semantics — the counts across the partitioned operators always equal
//! the counts of an unpartitioned run, no matter when and how often the
//! operator is scaled out.

use proptest::prelude::*;
use seep::runtime::RuntimeConfig;
use seep_bench::harness::WordCountHarness;

fn run_with_scale_outs(seconds: u64, rate: u64, scale_at: &[u64]) -> (u64, usize) {
    let mut harness = WordCountHarness::deploy(RuntimeConfig::default(), 300, 0);
    let mut done = 0usize;
    for s in 0..seconds {
        harness.run_for(1, rate);
        if scale_at.contains(&s) {
            // Scale out the first partition of the counter by one extra VM.
            let target = harness.handle.partitions(harness.counter)[0];
            harness.handle.scale_out(target, 2).expect("scale out");
            harness.handle.drain();
            done += 1;
        }
    }
    (harness.total_counted_words(), done)
}

#[test]
fn single_scale_out_preserves_totals() {
    let (baseline, _) = run_with_scale_outs(6, 40, &[]);
    let (scaled, done) = run_with_scale_outs(6, 40, &[3]);
    assert_eq!(done, 1);
    assert_eq!(baseline, scaled);
    assert!(baseline > 0);
}

#[test]
fn repeated_scale_out_grows_parallelism_and_preserves_totals() {
    let (baseline, _) = run_with_scale_outs(8, 30, &[]);
    let (scaled, done) = run_with_scale_outs(8, 30, &[2, 4, 6]);
    assert_eq!(done, 3);
    assert_eq!(baseline, scaled);

    // Parallelism grows by one partition per action (2-way split of one
    // existing partition each time).
    let mut harness = WordCountHarness::deploy(RuntimeConfig::default(), 300, 0);
    harness.run_for(1, 10);
    for _ in 0..3 {
        let target = harness.handle.partitions(harness.counter)[0];
        harness.handle.scale_out(target, 2).expect("scale out");
    }
    assert_eq!(harness.handle.parallelism(harness.counter), 4);
}

#[test]
fn scale_out_followed_by_failure_recovers_each_partition() {
    let mut harness = WordCountHarness::deploy(RuntimeConfig::default(), 300, 0);
    harness.run_for(4, 40);
    let target = harness.handle.partitions(harness.counter)[0];
    harness.handle.scale_out(target, 2).expect("scale out");
    harness.handle.drain();
    let before = harness.total_counted_words();

    // Checkpoint both partitions, then fail one of them and recover it.
    harness.handle.advance_to(harness.handle.now_ms() + 6_000);
    let victim = harness.handle.partitions(harness.counter)[1];
    harness.handle.fail_operator(victim);
    harness.handle.recover(victim, 1).expect("recovery");
    assert_eq!(harness.total_counted_words(), before);
    assert_eq!(harness.handle.parallelism(harness.counter), 2);
}

/// Plan equivalence: with the default (Even) split policy the plan-driven
/// `scale_out` produces exactly the seed behaviour's routing table — the
/// even key-space split, covering the full range — and records its per-phase
/// timings.
#[test]
fn plan_driven_even_split_matches_seed_routing() {
    use seep::core::KeyRange;

    let mut harness = WordCountHarness::deploy(RuntimeConfig::default(), 300, 0);
    harness.run_for(3, 40);
    let target = harness.handle.partitions(harness.counter)[0];
    harness.handle.scale_out(target, 2).expect("scale out");
    let graph = harness.handle.execution_graph();
    let mut ranges: Vec<KeyRange> = harness
        .handle
        .partitions(harness.counter)
        .iter()
        .map(|id| graph.instance(*id).unwrap().key_range)
        .collect();
    ranges.sort_by_key(|r| r.lo);
    assert_eq!(
        ranges,
        KeyRange::full().split_even(2).unwrap(),
        "the default policy must reproduce the seed's even split"
    );
    assert!(graph
        .routing(harness.counter)
        .unwrap()
        .covers_exactly(KeyRange::full()));
    // The plan recorded its split decision and phase timings.
    let record = &harness.handle.metrics().scale_outs()[0];
    assert_eq!(record.timing.split, seep::runtime::SplitKind::Even);
    assert!(record.timing.total_us > 0);
    assert!(record.timing.restore_us + record.timing.replay_us <= record.timing.total_us);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Scaling out at arbitrary points during a random workload never changes
    /// the aggregated word counts.
    #[test]
    fn prop_scale_out_preserves_counts(
        seconds in 4u64..8,
        rate in 5u64..20,
        scale_point in 1u64..3,
    ) {
        let (baseline, _) = run_with_scale_outs(seconds, rate, &[]);
        let (scaled, done) = run_with_scale_outs(seconds, rate, &[scale_point]);
        prop_assert_eq!(done, 1);
        prop_assert_eq!(baseline, scaled);
    }
}
