//! Fault-injection test proving checkpoint-store backend equivalence: the
//! same word-count recovery scenario run with `MemStore` and with
//! `FileStore` (including a process-visible on-disk log that survives the
//! simulated failure) produces identical final counts, and `FileStore`
//! recovers correctly from a log holding one full checkpoint plus several
//! incremental deltas.

use std::path::{Path, PathBuf};

use seep::core::Key;
use seep::runtime::{RuntimeConfig, StoreConfig};
use seep_bench::harness::WordCountHarness;

// The facade re-exports the store crate as `seep::store`.
use seep::store::{CheckpointStore, FileStore};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seep-equivalence-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Drive the scenario: warm up, fail the counter mid-stream, recover, tail
/// traffic, return the final aggregated counts.
fn run_scenario(config: RuntimeConfig) -> u64 {
    let mut harness = WordCountHarness::deploy(config, 400, 0);
    harness.run_for(7, 40); // crosses the 5 s checkpoint boundary
    harness.fail_and_recover(1);
    harness.run_for(3, 40);
    harness.total_counted_words()
}

/// The scenario with a mid-stream kill: capture that the on-disk log exists
/// and survives while the victim VM is down.
fn run_file_scenario_checking_log(config: RuntimeConfig, base: &Path) -> u64 {
    let mut harness = WordCountHarness::deploy(config, 400, 0);
    harness.run_for(7, 40);
    // Kill the worker mid-stream (no recovery yet) and observe the log.
    let victim = harness.counter_instance();
    harness.handle.fail_operator(victim);
    let segments = find_segments(base);
    assert!(
        !segments.is_empty(),
        "the checkpoint log must be process-visible on disk while the VM is down"
    );
    assert!(
        segments.iter().all(|p| p.exists()),
        "segment files vanished with the failed VM"
    );
    // Now recover from disk and finish the run.
    harness
        .handle
        .recover(victim, 1)
        .expect("recovery succeeds");
    harness.run_for(3, 40);
    harness.total_counted_words()
}

fn find_segments(base: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(ops) = std::fs::read_dir(base) else {
        return out;
    };
    for op_dir in ops.flatten() {
        if let Ok(files) = std::fs::read_dir(op_dir.path()) {
            for f in files.flatten() {
                if f.file_name().to_string_lossy().starts_with("seg-") {
                    out.push(f.path());
                }
            }
        }
    }
    out
}

#[test]
fn mem_and_file_backends_produce_identical_final_counts() {
    let dir = temp_dir("mem-vs-file");
    let mem_counts = run_scenario(RuntimeConfig::default().with_store(StoreConfig::mem()));
    let file_counts = run_file_scenario_checking_log(
        RuntimeConfig::default().with_store(StoreConfig::file(&dir)),
        &dir,
    );
    assert!(mem_counts > 0);
    assert_eq!(
        mem_counts, file_counts,
        "backends diverged: mem={mem_counts} file={file_counts}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tiered_backend_matches_mem_backend() {
    let dir = temp_dir("mem-vs-tiered");
    let mem_counts = run_scenario(RuntimeConfig::default().with_store(StoreConfig::mem()));
    let tiered_counts =
        run_scenario(RuntimeConfig::default().with_store(StoreConfig::tiered(&dir)));
    assert_eq!(mem_counts, tiered_counts);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn filestore_recovers_from_log_with_full_plus_incremental_deltas() {
    let dir = temp_dir("inc-log");
    let config =
        RuntimeConfig::default().with_store(StoreConfig::file(&dir).with_incremental(true));
    let counter_instance;
    let words_at_last_checkpoint;
    {
        let mut harness = WordCountHarness::deploy(config, 400, 0);
        // Cross three checkpoint boundaries (c = 5 s): first backup is a
        // full checkpoint, the following ones ship as deltas.
        harness.run_for(16, 30);
        counter_instance = harness.counter_instance();
        let io = harness.handle.metrics().store_io("file");
        assert!(io.writes >= 1, "expected at least one full backup: {io:?}");
        assert!(
            io.incremental_writes >= 2,
            "expected >= 2 incremental deltas: {io:?}"
        );
        // Take one more checkpoint with the pipeline fully drained so the
        // chain's tip reflects every processed tuple, then "crash".
        harness.handle.drain();
        let now = harness.handle.now_ms();
        harness.handle.advance_to(now + 5_000);
        words_at_last_checkpoint = harness.total_counted_words();
        // Simulated process crash: the runtime (and every in-memory store
        // handle) is dropped; only the log on disk remains.
    }
    // Recover by scanning the surviving logs with fresh FileStores: exactly
    // one upstream VM's log holds the counter's checkpoint chain.
    let segments = find_segments(&dir);
    assert!(!segments.is_empty(), "log must survive the process");
    let mut op_dirs: Vec<PathBuf> = segments
        .iter()
        .map(|p| p.parent().unwrap().to_path_buf())
        .collect();
    op_dirs.sort();
    op_dirs.dedup();
    let restored = op_dirs
        .iter()
        .find_map(|op_dir| {
            let store = FileStore::open_dir(op_dir).expect("log scan succeeds");
            store.latest(counter_instance).ok()
        })
        .expect("counter checkpoint recovered from full+delta chain");
    // The restored processing state carries the counts as of the last
    // checkpoint; with the pipeline drained at every virtual second, that is
    // exactly the live total when the process died.
    let restored_words: u64 = {
        let state = &restored.processing;
        state
            .iter()
            .filter(|(k, _)| *k != Key(u64::MAX))
            .filter_map(|(k, _)| {
                state
                    .get_decoded::<seep::operators::word_count::WordEntry>(k)
                    .ok()
                    .flatten()
                    .map(|e| e.count)
            })
            .sum()
    };
    assert_eq!(
        restored_words, words_at_last_checkpoint,
        "state restored from the delta chain must match the checkpointed counts"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
