//! Latency-sampling regression suite: per-tuple latency stamping became
//! 1-in-N sampling (`RuntimeConfig::with_latency_sampling`). N = 1 — the
//! default — must be bit-identical to the seed's sample-every-tuple
//! behaviour; N > 1 must record exactly ⌈eligible/N⌉ samples and keep the
//! percentile estimates in the same ballpark as the full population.

use seep::core::Key;
use seep::operators::word_count::WordFrequency;
use seep::operators::{WindowedWordCount, WordSplitter};
use seep::runtime::api::{passthrough, Job, JobHandle, SinkCollector};
use seep::runtime::RuntimeConfig;

/// Short tumbling window so sink output flows within a few virtual seconds.
const WINDOW_MS: u64 = 2_000;

/// Deploy the word-frequency chain and drive `sentences` two-word sentences
/// through it in chunks, closing every window, so the sink sees a stable,
/// deterministic number of tuples (each one a latency-probe candidate).
fn run(config: RuntimeConfig, sentences: u64) -> (JobHandle, usize) {
    let results: SinkCollector<WordFrequency> = SinkCollector::new();
    let mut handle = Job::builder(config)
        .source("feeder", passthrough("feeder"))
        .then_stateless("splitter", WordSplitter::new)
        .then_stateful("counter", || WindowedWordCount::new(WINDOW_MS))
        .sink_collect("sink", &results)
        .deploy()
        .expect("deploy");
    let mut now = handle.now_ms();
    for sequence in 0..sentences {
        let a = (sequence * 7 + 3) % 13;
        let b = (sequence * 13 + 5) % 13;
        let sentence = format!("word{a} word{b}");
        handle
            .inject_encoded("feeder", Key::from_str_key(&sentence), &sentence)
            .expect("inject");
        if sequence % 50 == 49 {
            now += 500;
            handle.advance_to(now);
            handle.drain();
        }
    }
    now += 2 * WINDOW_MS;
    handle.advance_to(now);
    handle.drain();
    let sink_tuples = results.take().len();
    (handle, sink_tuples)
}

#[test]
fn sampling_every_tuple_is_identical_to_the_default() {
    // `with_latency_sampling(1)` and the untouched default are the same
    // configuration: one sample per sink tuple, exactly as the seed did it.
    let (seed, seed_sink) = run(RuntimeConfig::default(), 400);
    let (explicit, explicit_sink) = run(RuntimeConfig::default().with_latency_sampling(1), 400);
    assert_eq!(seed_sink, explicit_sink);
    assert!(seed.metrics().latency_samples() > 0);
    assert_eq!(
        seed.metrics().latency_samples(),
        explicit.metrics().latency_samples()
    );
    assert_eq!(seed.metrics().latency_samples(), seed_sink);
    // Bucket contents are wall-clock dependent, but both runs must have put
    // one sample in the histogram for every sink tuple.
    assert_eq!(seed.metrics().latency_histogram().count, seed_sink as u64);
    assert_eq!(
        explicit.metrics().latency_histogram().count,
        seed_sink as u64
    );
}

#[test]
fn one_in_n_records_exactly_ceil_eligible_over_n() {
    let (full, sink_tuples) = run(RuntimeConfig::default(), 600);
    assert_eq!(full.metrics().latency_samples(), sink_tuples);
    for every in [2u32, 3, 8] {
        let (sampled, sampled_sink) =
            run(RuntimeConfig::default().with_latency_sampling(every), 600);
        assert_eq!(sampled_sink, sink_tuples, "data plane must be untouched");
        // The sample sequence only advances on probe-eligible tuples, so the
        // hit count is exact, not probabilistic.
        let expected = sink_tuples.div_ceil(every as usize);
        assert_eq!(
            sampled.metrics().latency_samples(),
            expected,
            "1-in-{every} of {sink_tuples} eligible tuples"
        );
    }
}

#[test]
fn sampled_percentiles_track_the_full_population() {
    // Virtual-time latencies here are near-zero and tightly clustered, so the
    // check is deliberately loose: sampled percentiles must stay within the
    // same order of magnitude band as the full population, proving the
    // sampled histogram is representative rather than empty or wild.
    let (full, _) = run(RuntimeConfig::default(), 600);
    let (sampled, _) = run(RuntimeConfig::default().with_latency_sampling(4), 600);
    assert!(sampled.metrics().latency_samples() > 0);
    for p in [50.0, 95.0, 99.0] {
        let full_p = full.metrics().latency_percentile_ms(p);
        let sampled_p = sampled.metrics().latency_percentile_ms(p);
        let tolerance = (full_p * 4.0).max(5.0);
        assert!(
            (sampled_p - full_p).abs() <= tolerance,
            "p{p}: sampled {sampled_p} vs full {full_p} (tolerance {tolerance})"
        );
    }
}

#[test]
fn sampling_zero_is_clamped_to_every_tuple() {
    // 0 is not a valid stride; the runtime clamps it to 1 (seed behaviour).
    let (clamped, sink_tuples) = run(RuntimeConfig::default().with_latency_sampling(0), 300);
    assert_eq!(clamped.metrics().latency_samples(), sink_tuples);
}
