//! Integration test: elastic scale out followed by scale in preserves query
//! semantics — after the round trip the merged operator's counts equal a run
//! that never scaled at all (no lost tuples, no duplicates), one VM has been
//! handed back to the provider, and the billing ledger stops charging for it.

use seep::runtime::{RuntimeConfig, StoreConfig};
use seep_bench::harness::WordCountHarness;

/// Drive the word-count query for `seconds` at `rate`, optionally splitting
/// the counter at `scale_out_at` and merging it back at `scale_in_at`.
fn run_round_trip(
    config: RuntimeConfig,
    seconds: u64,
    rate: u64,
    scale_out_at: Option<u64>,
    scale_in_at: Option<u64>,
) -> (u64, WordCountHarness) {
    let mut harness = WordCountHarness::deploy(config, 300, 0);
    for s in 0..seconds {
        harness.run_for(1, rate);
        if scale_out_at == Some(s) {
            let target = harness.handle.partitions(harness.counter)[0];
            harness.handle.scale_out(target, 2).expect("scale out");
            harness.handle.drain();
        }
        if scale_in_at == Some(s) {
            let parts = harness.handle.partitions(harness.counter);
            assert_eq!(parts.len(), 2, "round trip needs two partitions");
            harness
                .handle
                .scale_in(parts[0], parts[1])
                .expect("scale in");
            harness.handle.drain();
        }
    }
    (harness.total_counted_words(), harness)
}

#[test]
fn scale_out_then_scale_in_matches_the_never_scaled_run() {
    let (baseline, _) = run_round_trip(RuntimeConfig::default(), 8, 40, None, None);
    let (round_trip, harness) = run_round_trip(RuntimeConfig::default(), 8, 40, Some(2), Some(5));
    assert!(baseline > 0);
    assert_eq!(
        round_trip, baseline,
        "counts after the round trip must match the never-scaled run"
    );
    assert_eq!(harness.handle.parallelism(harness.counter), 1);
    assert_eq!(harness.handle.metrics().scale_outs().len(), 1);
    assert_eq!(harness.handle.metrics().scale_ins().len(), 1);
}

#[test]
fn scale_in_releases_the_vm_and_stops_billing() {
    let mut harness = WordCountHarness::deploy(RuntimeConfig::default(), 300, 0);
    harness.run_for(3, 40);
    let target = harness.handle.partitions(harness.counter)[0];
    harness.handle.scale_out(target, 2).expect("scale out");
    harness.handle.drain();
    harness.run_for(2, 40);

    let vms_before = harness.handle.vm_count();
    let parts = harness.handle.partitions(harness.counter);
    let outcome = harness
        .handle
        .scale_in(parts[0], parts[1])
        .expect("scale in");
    assert_eq!(harness.handle.vm_count(), vms_before - 1);

    // The released VM stops accruing cost: its terminated timestamp is set
    // and the provider's total no longer grows on its account.
    let released_vm = outcome
        .released_vm
        .expect("a single-slot merge empties the victim's VM");
    let vm = harness
        .handle
        .provider()
        .vm(released_vm)
        .expect("released VM still on the books");
    assert!(!vm.is_running());
    assert!(vm.terminated_at_ms.is_some());
    let now = harness.handle.now_ms();
    let cost_now = harness.handle.provider().total_cost(now);
    let cost_later = harness.handle.provider().total_cost(now + 3_600_000);
    let hourly = seep_cloud::VmSpec::small().hourly_cost;
    let still_running = harness.handle.vm_count() as f64;
    assert!(
        (cost_later - cost_now - still_running * hourly).abs() < 1e-6,
        "only the surviving VMs keep billing"
    );
}

#[test]
fn round_trip_with_durable_backend_preserves_counts() {
    let dir = std::env::temp_dir().join(format!("seep-scale-in-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let durable =
        RuntimeConfig::default().with_store(StoreConfig::file(&dir).with_incremental(true));
    let (baseline, _) = run_round_trip(RuntimeConfig::default(), 6, 30, None, None);
    let (round_trip, harness) = run_round_trip(durable, 6, 30, Some(1), Some(4));
    assert_eq!(round_trip, baseline);
    // The merged operator's state went through the on-disk log: the merge
    // read checkpoints back and stored the merged one.
    let io = harness.handle.metrics().store_io("file");
    assert!(io.restore_bytes > 0, "merge restored from the log");
    assert!(io.write_bytes > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The skewed-split round trip: even-split → rebalance (the key boundary is
/// re-drawn from the sampled key distribution, both VMs reused) → merge back
/// to one partition. The counts must equal the never-scaled run at every
/// step — a rebalance moves state between partitions without losing or
/// duplicating any of it — and the VM count must be unchanged by the
/// rebalance itself.
#[test]
fn even_split_rebalance_merge_round_trip_keeps_counts() {
    let (baseline, _) = run_round_trip(RuntimeConfig::default(), 8, 40, None, None);

    let mut harness = WordCountHarness::deploy(RuntimeConfig::default(), 300, 0);
    for s in 0..8u64 {
        harness.run_for(1, 40);
        if s == 2 {
            let target = harness.handle.partitions(harness.counter)[0];
            harness.handle.scale_out(target, 2).expect("scale out");
            harness.handle.drain();
        }
        if s == 4 {
            let vms_before = harness.handle.vm_count();
            let parts = harness.handle.partitions(harness.counter);
            let outcome = harness
                .handle
                .rebalance(parts[0], parts[1])
                .expect("rebalance");
            harness.handle.drain();
            assert_eq!(outcome.new_operators.len(), 2);
            assert_eq!(
                harness.handle.vm_count(),
                vms_before,
                "a rebalance neither acquires nor releases VMs"
            );
            assert_eq!(harness.handle.parallelism(harness.counter), 2);
        }
        if s == 6 {
            let parts = harness.handle.partitions(harness.counter);
            harness
                .handle
                .scale_in(parts[0], parts[1])
                .expect("scale in");
            harness.handle.drain();
        }
    }
    assert_eq!(
        harness.total_counted_words(),
        baseline,
        "counts after the even-split → rebalance → merge round trip must \
         match the never-scaled run"
    );
    assert_eq!(harness.handle.parallelism(harness.counter), 1);
    assert_eq!(harness.handle.metrics().scale_outs().len(), 1);
    assert_eq!(harness.handle.metrics().rebalances().len(), 1);
    assert_eq!(harness.handle.metrics().scale_ins().len(), 1);
    // The rebalance record carries the plan's split decision and timing.
    let record = &harness.handle.metrics().rebalances()[0];
    assert_eq!(record.parallelism, 2);
    assert!(record.timing.total_us > 0);
}

/// Regression: the merged checkpoint stored as the survivor's initial backup
/// must carry the merged emit clock. If the merged operator's VM fails
/// *before its first periodic checkpoint*, serial recovery resets the shared
/// logical clock from that backup — a zero clock would make the recovered
/// operator re-issue timestamps the downstream duplicate filters have
/// already seen, silently discarding genuinely new output.
#[test]
fn merged_backup_failing_before_next_checkpoint_recovers_with_live_clock() {
    let mut harness = WordCountHarness::deploy(RuntimeConfig::default(), 300, 0);
    harness.run_for(3, 40);
    let target = harness.handle.partitions(harness.counter)[0];
    harness.handle.scale_out(target, 2).expect("scale out");
    harness.handle.drain();
    harness.run_for(2, 40);

    let parts = harness.handle.partitions(harness.counter);
    harness
        .handle
        .scale_in(parts[0], parts[1])
        .expect("scale in");
    harness.handle.drain();
    let counted_before = harness.total_counted_words();

    // Fail the merged operator immediately — its only backup is the merged
    // checkpoint stored during the scale in — and recover serially.
    let merged = harness.handle.partitions(harness.counter)[0];
    harness.handle.fail_operator(merged);
    harness.handle.recover(merged, 1).expect("recovery");
    assert_eq!(harness.total_counted_words(), counted_before);

    // New traffic after the recovery must be counted: the reset clock must
    // not collide with timestamps the sink's duplicate filter already saw.
    harness.run_for(2, 40);
    assert!(
        harness.total_counted_words() > counted_before,
        "post-recovery output must not be dropped as duplicates"
    );
}

#[test]
fn repeated_round_trips_keep_counts_stable() {
    let mut harness = WordCountHarness::deploy(RuntimeConfig::default(), 300, 0);
    let mut expected = None;
    for _ in 0..3 {
        harness.run_for(2, 25);
        let target = harness.handle.partitions(harness.counter)[0];
        harness.handle.scale_out(target, 2).expect("scale out");
        harness.handle.drain();
        harness.run_for(1, 25);
        let parts = harness.handle.partitions(harness.counter);
        harness
            .handle
            .scale_in(parts[0], parts[1])
            .expect("scale in");
        harness.handle.drain();
        // Totals only ever grow by the injected tuples; a merge never loses
        // or duplicates state across iterations.
        let total = harness.total_counted_words();
        if let Some(prev) = expected {
            assert!(total > prev, "counts keep growing ({prev} -> {total})");
        }
        expected = Some(total);
    }
    assert_eq!(harness.handle.parallelism(harness.counter), 1);
    assert_eq!(harness.handle.metrics().scale_ins().len(), 3);
}
