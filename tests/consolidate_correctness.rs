//! Integration tests for the placement layer's whole-operator plans: an
//! N-way rebalance re-splits all π partitions in ONE `ReconfigPlan`, and a
//! consolidation packs light partitions onto shared VM slots and releases
//! the emptied VMs — in both cases the counts and sink deliveries must be
//! identical to a run that never reconfigured (no lost tuples, no
//! duplicates), and consolidation must provably stop billing on the
//! released VMs (mirroring `scale_in_correctness.rs`).

use seep::runtime::{RuntimeConfig, StoreConfig};
use seep_bench::harness::WordCountHarness;
use seep_cloud::VmPoolConfig;

fn two_slot_config() -> RuntimeConfig {
    RuntimeConfig {
        pool: VmPoolConfig::default().with_slots_per_vm(2),
        ..RuntimeConfig::default()
    }
}

/// Drive the word-count query for `seconds` at `rate` with no
/// reconfiguration: the equivalence baseline.
fn baseline(config: RuntimeConfig, seconds: u64, rate: u64) -> u64 {
    let mut harness = WordCountHarness::deploy(config, 300, 0);
    harness.run_for(seconds, rate);
    harness.total_counted_words()
}

#[test]
fn four_partition_rebalance_is_one_plan_and_matches_baseline() {
    let expected = baseline(RuntimeConfig::default(), 8, 40);

    let mut harness = WordCountHarness::deploy(RuntimeConfig::default(), 300, 0);
    for s in 0..8u64 {
        harness.run_for(1, 40);
        if s == 2 {
            let target = harness.handle.partitions(harness.counter)[0];
            harness.handle.scale_out(target, 4).expect("scale out");
            harness.handle.drain();
        }
        if s == 5 {
            let vms_before = harness.handle.vm_count();
            let outcome = harness
                .handle
                .rebalance_operator(harness.counter)
                .expect("N-way rebalance");
            harness.handle.drain();
            assert_eq!(
                outcome.new_operators.len(),
                4,
                "all four partitions re-split in one plan"
            );
            assert_eq!(harness.handle.vm_count(), vms_before, "no VM change");
            assert_eq!(harness.handle.parallelism(harness.counter), 4);
        }
    }
    assert_eq!(
        harness.total_counted_words(),
        expected,
        "counts after the 4-way rebalance must match the never-reconfigured run"
    );
    // Exactly one rebalance record covering all four partitions, with the
    // pooled sample's post-split imbalance prediction in the plan timing.
    let rebalances = harness.handle.metrics().rebalances();
    assert_eq!(rebalances.len(), 1);
    assert_eq!(rebalances[0].parallelism, 4);
    assert!(rebalances[0].timing.total_us > 0);
    assert!(
        rebalances[0].timing.post_split_imbalance > 0.0,
        "post-split imbalance must be reported in ReconfigTiming"
    );
}

#[test]
fn consolidate_matches_baseline_and_stops_billing_on_released_vms() {
    let expected = baseline(two_slot_config(), 8, 40);

    let mut harness = WordCountHarness::deploy(two_slot_config(), 300, 0);
    let mut released = Vec::new();
    for s in 0..8u64 {
        harness.run_for(1, 40);
        if s == 2 {
            let target = harness.handle.partitions(harness.counter)[0];
            harness.handle.scale_out(target, 4).expect("scale out");
            harness.handle.drain();
        }
        if s == 5 {
            let vms_before = harness.handle.vm_count();
            let outcome = harness
                .handle
                .consolidate(harness.counter)
                .expect("consolidate");
            harness.handle.drain();
            assert_eq!(outcome.new_operators.len(), 4, "parallelism kept");
            assert_eq!(outcome.released_vms.len(), 2, "4 partitions on 2 VMs");
            assert_eq!(harness.handle.vm_count(), vms_before - 2);
            released = outcome.released_vms.clone();
        }
    }
    // Equivalence: a subsequent drain already happened inside run_for; the
    // totals must match the never-reconfigured run exactly.
    assert_eq!(
        harness.total_counted_words(),
        expected,
        "counts after the consolidation must match the never-reconfigured run"
    );
    assert_eq!(harness.handle.parallelism(harness.counter), 4);

    // Billing provably stops on every released VM: terminated timestamps are
    // set and the provider's total only grows on the survivors' account.
    assert_eq!(released.len(), 2);
    for vm in &released {
        let vm = harness.handle.provider().vm(*vm).expect("on the books");
        assert!(!vm.is_running());
        assert!(vm.terminated_at_ms.is_some());
    }
    let now = harness.handle.now_ms();
    let cost_now = harness.handle.provider().total_cost(now);
    let cost_later = harness.handle.provider().total_cost(now + 3_600_000);
    let hourly = seep_cloud::VmSpec::small().hourly_cost;
    let still_running = harness.handle.vm_count() as f64;
    assert!(
        (cost_later - cost_now - still_running * hourly).abs() < 1e-6,
        "only the surviving VMs keep billing"
    );

    // New traffic still routes correctly to the packed partitions.
    let before = harness.total_counted_words();
    harness.run_for(1, 40);
    assert!(harness.total_counted_words() > before);
}

#[test]
fn consolidate_with_durable_backend_preserves_counts() {
    let dir = std::env::temp_dir().join(format!("seep-consolidate-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let durable = RuntimeConfig {
        store: StoreConfig::file(&dir).with_incremental(true),
        ..two_slot_config()
    };
    let expected = baseline(two_slot_config(), 6, 30);

    let mut harness = WordCountHarness::deploy(durable, 300, 0);
    for s in 0..6u64 {
        harness.run_for(1, 30);
        if s == 1 {
            let target = harness.handle.partitions(harness.counter)[0];
            harness.handle.scale_out(target, 4).expect("scale out");
            harness.handle.drain();
        }
        if s == 3 {
            harness
                .handle
                .consolidate(harness.counter)
                .expect("consolidate");
            harness.handle.drain();
        }
    }
    assert_eq!(harness.total_counted_words(), expected);
    // The packed partitions' state went through the on-disk log: the
    // consolidation read the four checkpoints back and re-stored the parts.
    let io = harness.handle.metrics().store_io("file");
    assert!(io.restore_bytes > 0, "consolidation restored from the log");
    assert!(io.write_bytes > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Consolidation composes with the rest of the elasticity machinery: after
/// packing, a merge of two co-resident partitions vacates a slot without
/// killing the shared VM, and a failure of the shared VM takes both
/// partitions down and recovers cleanly.
#[test]
fn consolidated_partitions_merge_and_recover() {
    let mut harness = WordCountHarness::deploy(two_slot_config(), 300, 0);
    harness.run_for(3, 40);
    let target = harness.handle.partitions(harness.counter)[0];
    harness.handle.scale_out(target, 4).expect("scale out");
    harness.handle.drain();
    harness.run_for(1, 40);
    harness
        .handle
        .consolidate(harness.counter)
        .expect("consolidate");
    harness.handle.drain();
    let words_before = harness.total_counted_words();

    // Merge the first adjacent pair: they share a VM after the packing, so
    // no VM is released — only a slot opens up.
    let vms_before = harness.handle.vm_count();
    let parts = harness.handle.partitions(harness.counter);
    let outcome = harness
        .handle
        .scale_in(parts[0], parts[1])
        .expect("scale in");
    harness.handle.drain();
    assert_eq!(harness.handle.parallelism(harness.counter), 3);
    assert!(
        outcome.released_vm.is_none(),
        "merging co-residents vacates a slot, not a VM"
    );
    assert_eq!(harness.handle.vm_count(), vms_before);
    assert_eq!(harness.total_counted_words(), words_before);

    // Crash the VM hosting the merged operator and recover: counts survive.
    let merged = outcome.merged_operator;
    harness.handle.fail_operator(merged);
    harness.handle.recover(merged, 1).expect("recovery");
    harness.handle.drain();
    assert_eq!(harness.total_counted_words(), words_before);
}
