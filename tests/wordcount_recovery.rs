//! Integration test: failure recovery on the windowed word-frequency query is
//! exact — after a crash of the stateful word counter, the recovered
//! deployment holds exactly the state a failure-free run would hold, for all
//! three fault-tolerance strategies and regardless of when the failure
//! happens relative to the checkpoint schedule.

use proptest::prelude::*;
use seep::runtime::{RecoveryStrategy, RuntimeConfig};
use seep_bench::harness::WordCountHarness;

/// Drive `seconds` of traffic at `rate` fragments/s, optionally failing and
/// recovering the word counter after `fail_after` seconds. Returns the total
/// word count across partitions at the end.
fn run_scenario(
    strategy: RecoveryStrategy,
    seconds: u64,
    rate: u64,
    fail_after: Option<u64>,
    parallelism: usize,
) -> u64 {
    let config = RuntimeConfig::default().with_strategy(strategy);
    let mut harness = WordCountHarness::deploy(config, 500, 0);
    match fail_after {
        None => harness.run_for(seconds, rate),
        Some(at) => {
            let at = at.min(seconds);
            harness.run_for(at, rate);
            harness.fail_and_recover(parallelism);
            harness.run_for(seconds - at, rate);
        }
    }
    harness.total_counted_words()
}

#[test]
fn recovery_matches_failure_free_run_for_all_strategies() {
    for strategy in [
        RecoveryStrategy::StateManagement,
        RecoveryStrategy::UpstreamBackup,
        RecoveryStrategy::SourceReplay,
    ] {
        let baseline = run_scenario(strategy, 8, 30, None, 1);
        let with_failure = run_scenario(strategy, 8, 30, Some(6), 1);
        assert_eq!(
            baseline,
            with_failure,
            "{}: recovery changed the results",
            strategy.label()
        );
        assert!(baseline > 0);
    }
}

#[test]
fn failure_right_after_checkpoint_and_right_before_checkpoint() {
    // Checkpoints fire every 5 s; failing at 6 s (just after) and at 9 s
    // (just before the next one) exercises both the small-replay and the
    // large-replay paths.
    for fail_at in [6u64, 9] {
        let baseline = run_scenario(RecoveryStrategy::StateManagement, 10, 40, None, 1);
        let recovered = run_scenario(RecoveryStrategy::StateManagement, 10, 40, Some(fail_at), 1);
        assert_eq!(baseline, recovered, "failure at t={fail_at}s");
    }
}

#[test]
fn parallel_recovery_is_also_exact() {
    let baseline = run_scenario(RecoveryStrategy::StateManagement, 8, 40, None, 1);
    let parallel = run_scenario(RecoveryStrategy::StateManagement, 8, 40, Some(6), 2);
    assert_eq!(baseline, parallel);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For random (short) workloads and random failure points, recovery with
    /// state management reproduces the failure-free totals exactly.
    #[test]
    fn prop_recovery_is_exact(
        seconds in 3u64..7,
        rate in 5u64..25,
        fail_frac in 0.2f64..0.9,
    ) {
        let fail_after = ((seconds as f64 * fail_frac).floor() as u64).max(1);
        let baseline = run_scenario(RecoveryStrategy::StateManagement, seconds, rate, None, 1);
        let recovered =
            run_scenario(RecoveryStrategy::StateManagement, seconds, rate, Some(fail_after), 1);
        prop_assert_eq!(baseline, recovered);
    }
}
