//! Batch/tuple equivalence property suite: running the same query over the
//! same injected stream with any per-edge batch size must be observably
//! identical to the per-tuple run (batch size 1, the seed's data plane) —
//! same sink outputs in the same order, same per-operator processed counts,
//! same emit clocks and the same number of per-tuple latency samples.
//!
//! Set `SEEP_STORE=file` to run the whole suite against the durable
//! `FileStore` checkpoint backend (CI does); the default is the in-memory
//! backend.

use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use seep::core::Key;
use seep::operators::word_count::WordFrequency;
use seep::operators::{WindowedWordCount, WordSplitter};
use seep::runtime::api::{passthrough, Job, SinkCollector};
use seep::runtime::{RuntimeConfig, StoreConfig};

/// Short tumbling window so sink output flows within a few virtual seconds.
const WINDOW_MS: u64 = 2_000;

/// Distinguishes the on-disk store directories of concurrent runs.
static RUN_TAG: AtomicUsize = AtomicUsize::new(0);

/// The checkpoint-store backend under test: `SEEP_STORE=file` selects the
/// durable log-structured backend, anything else the seed's in-memory one.
fn store_config() -> StoreConfig {
    match std::env::var("SEEP_STORE").as_deref() {
        Ok("file") => {
            let tag = RUN_TAG.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir().join(format!(
                "seep-batch-equivalence-{}-{tag}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            StoreConfig::file(dir)
        }
        _ => StoreConfig::mem(),
    }
}

/// Everything observable about one run, compared across batch sizes.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Fingerprint {
    /// `(word, count, window)` in sink arrival order.
    sink_outputs: Vec<(String, u64, u64)>,
    /// Tuples processed per logical operator, in chain order.
    processed: Vec<(String, u64)>,
    /// Emit-clock value per logical operator, in chain order.
    emit_clocks: Vec<(String, u64)>,
    /// End-to-end latency samples recorded (one per sink tuple).
    latency_samples: usize,
}

/// Deploy feeder → splitter → `relays` pass-through stages → windowed word
/// counter → collecting sink, inject `chunks` of two-word sentences (one
/// drain and 500 ms of virtual time per chunk), close the final window and
/// fingerprint the run. `batch` sets the job-wide batch size;
/// `splitter_batch` optionally overrides the splitter's outbound edges.
fn run_chain(
    batch: usize,
    splitter_batch: Option<usize>,
    relays: usize,
    chunks: &[usize],
    vocabulary: usize,
) -> Fingerprint {
    let config = RuntimeConfig::default().with_store(store_config());
    let results: SinkCollector<WordFrequency> = SinkCollector::new();
    let mut names = vec!["feeder".to_string(), "splitter".to_string()];
    let mut builder = Job::builder(config)
        .source("feeder", passthrough("feeder"))
        .then_stateless("splitter", WordSplitter::new);
    for relay in 0..relays {
        let name = format!("relay{relay}");
        builder = builder.then_stateless(&name, passthrough(&name));
        names.push(name);
    }
    builder = builder
        .then_stateful("counter", || WindowedWordCount::new(WINDOW_MS))
        .sink_collect("sink", &results)
        .batch_size(batch);
    if let Some(size) = splitter_batch {
        builder = builder.batch_size_at("splitter", size);
    }
    names.push("counter".to_string());
    names.push("sink".to_string());
    let mut handle = builder.deploy().expect("deploy");

    let mut sequence = 0u64;
    let mut now = handle.now_ms();
    for &chunk in chunks {
        for _ in 0..chunk {
            // Deterministic two-word sentences over a bounded vocabulary.
            let a = (sequence * 7 + 3) % vocabulary as u64;
            let b = (sequence * 13 + 5) % vocabulary as u64;
            let sentence = format!("word{a} word{b}");
            handle
                .inject_encoded("feeder", Key::from_str_key(&sentence), &sentence)
                .expect("inject");
            sequence += 1;
        }
        now += 500;
        handle.advance_to(now);
        handle.drain();
    }
    // Close the last window so every pending count reaches the sink.
    handle.advance_to(now + 2 * WINDOW_MS);
    handle.drain();

    let metrics = handle.metrics();
    let processed = names
        .iter()
        .map(|name| {
            let total = handle
                .partitions(name.as_str())
                .iter()
                .map(|id| metrics.processed_by(*id))
                .sum();
            (name.clone(), total)
        })
        .collect();
    let emit_clocks = names
        .iter()
        .map(|name| (name.clone(), handle.emit_clock(name.as_str())))
        .collect();
    Fingerprint {
        sink_outputs: results
            .take()
            .into_iter()
            .map(|f| (f.word, f.count, f.window))
            .collect(),
        processed,
        emit_clocks,
        latency_samples: metrics.latency_samples(),
    }
}

#[test]
fn common_batch_sizes_match_the_per_tuple_run() {
    let chunks = [12, 1, 30, 7, 19];
    let baseline = run_chain(1, None, 0, &chunks, 23);
    assert!(
        !baseline.sink_outputs.is_empty(),
        "windows must have closed: {baseline:?}"
    );
    for batch in [2, 3, 64, 256] {
        let batched = run_chain(batch, None, 0, &chunks, 23);
        assert_eq!(baseline, batched, "batch={batch} diverged");
    }
}

#[test]
fn per_edge_batch_override_matches_the_per_tuple_run() {
    let chunks = [20, 5, 33];
    let baseline = run_chain(1, None, 1, &chunks, 17);
    // Job-wide batch 8 with the splitter's (hottest) edges at 64.
    let mixed = run_chain(8, Some(64), 1, &chunks, 17);
    assert_eq!(baseline, mixed);
}

#[test]
fn latency_histogram_records_per_tuple_not_per_batch() {
    let chunks = [25, 25, 25];
    let per_tuple = run_chain(1, None, 0, &chunks, 11);
    let batched = run_chain(64, None, 0, &chunks, 11);
    assert!(
        per_tuple.latency_samples > 0,
        "sink tuples must produce latency samples"
    );
    assert_eq!(
        per_tuple.latency_samples, batched.latency_samples,
        "a batch of sink tuples must contribute one sample per tuple"
    );
    // One sample per sink tuple exactly.
    assert_eq!(per_tuple.latency_samples, batched.sink_outputs.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any batch size, chain depth and injection interleaving produces the
    /// per-tuple run's outputs, counts and clocks.
    #[test]
    fn prop_batched_run_is_equivalent_to_per_tuple_run(
        batch in 1usize..257,
        relays in 0usize..3,
        chunks in proptest::collection::vec(1usize..40, 1..6),
        vocabulary in 5usize..40,
    ) {
        let baseline = run_chain(1, None, relays, &chunks, vocabulary);
        let batched = run_chain(batch, None, relays, &chunks, vocabulary);
        prop_assert_eq!(baseline, batched);
    }
}
