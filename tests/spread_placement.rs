//! Integration test: the `PlacementPreference` knob. Under the default
//! (`FreshVm`, the seed behaviour) every scale-out partition draws a fresh
//! VM; under `Pack` new partitions fill partially occupied VM slots first,
//! so the same plan sequence runs on fewer machines — with identical query
//! results either way.

use seep::cloud::VmPoolConfig;
use seep::runtime::{PlacementPreference, RuntimeConfig};
use seep_bench::harness::WordCountHarness;

fn run_scaled(placement: PlacementPreference) -> (u64, usize, usize) {
    let config = RuntimeConfig {
        pool: VmPoolConfig::default().with_slots_per_vm(2),
        ..RuntimeConfig::default()
    }
    .with_placement(placement);
    let mut harness = WordCountHarness::deploy(config, 300, 0);
    harness.run_for(2, 40);
    let target = harness.handle.partitions(harness.counter)[0];
    harness.handle.scale_out(target, 2).expect("scale out");
    harness.handle.drain();
    harness.run_for(2, 40);
    let parallelism = harness.handle.parallelism(harness.counter);
    (
        harness.total_counted_words(),
        harness.handle.vm_count(),
        parallelism,
    )
}

/// Same plan, same results; Pack uses strictly fewer VMs by landing the new
/// partition on an existing machine's free slot.
#[test]
fn pack_reuses_free_slots_and_preserves_results() {
    let (fresh_words, fresh_vms, fresh_par) = run_scaled(PlacementPreference::FreshVm);
    let (packed_words, packed_vms, packed_par) = run_scaled(PlacementPreference::Pack);
    assert_eq!(fresh_par, 2);
    assert_eq!(packed_par, 2);
    assert_eq!(
        fresh_words, packed_words,
        "placement must not change results"
    );
    assert!(fresh_words > 0);
    assert!(
        packed_vms < fresh_vms,
        "Pack must use fewer VMs ({packed_vms}) than FreshVm ({fresh_vms})"
    );
}

/// With single-slot VMs (the paper's one-operator-per-VM deployment) Pack
/// degenerates to the seed behaviour: no free slots exist, so every new
/// partition still draws a fresh VM.
#[test]
fn pack_falls_back_to_fresh_vms_when_slots_are_full() {
    let config = RuntimeConfig::default().with_placement(PlacementPreference::Pack);
    let mut harness = WordCountHarness::deploy(config, 300, 0);
    harness.run_for(2, 30);
    let vms_before = harness.handle.vm_count();
    let target = harness.handle.partitions(harness.counter)[0];
    harness.handle.scale_out(target, 2).expect("scale out");
    harness.handle.drain();
    assert_eq!(
        harness.handle.vm_count(),
        vms_before + 1,
        "a full deployment has no slot to pack into"
    );
}
