//! Fusion equivalence suite: compiling the decomposed word-frequency query
//! (feeder → tokenizer → empty-token filter → word keyer → counter → sink)
//! with the physical-plan compiler's fusion enabled must be observably
//! identical to deploying every stage as its own operator — same sink
//! outputs in the same order, same attributed per-logical-operator processed
//! counts and emit clocks, and the same number of latency samples — across
//! batch sizes and with reconfiguration plans of all five kinds (scale out,
//! rebalance, scale in, consolidate, recovery) executed mid-stream.
//!
//! The fused arm uses [`FusionPolicy::FuseKeepBatches`] so both arms run the
//! exact same per-edge batch sizes and only the fusion itself differs.
//!
//! Set `SEEP_STORE=file` to run the whole suite against the durable
//! `FileStore` checkpoint backend (CI does); the default is the in-memory
//! backend. One test additionally pins the durable backend explicitly.

use std::sync::atomic::{AtomicUsize, Ordering};

use seep::core::Key;
use seep::operators::word_count::WordFrequency;
use seep::operators::{EmptyTokenFilter, SentenceTokenizer, WindowedWordCount, WordKeyer};
use seep::runtime::api::{passthrough, Job, JobHandle, SinkCollector};
use seep::runtime::{FusionPolicy, RuntimeConfig, StoreConfig};

/// Short tumbling window so sink output flows within a few virtual seconds.
const WINDOW_MS: u64 = 2_000;

/// The logical operators of the query, in chain order.
const NAMES: [&str; 6] = [
    "feeder",
    "tokenizer",
    "word_filter",
    "word_keyer",
    "counter",
    "sink",
];

/// Distinguishes the on-disk store directories of concurrent runs.
static RUN_TAG: AtomicUsize = AtomicUsize::new(0);

/// The checkpoint-store backend under test: `SEEP_STORE=file` selects the
/// durable log-structured backend, anything else the seed's in-memory one.
fn store_config() -> StoreConfig {
    match std::env::var("SEEP_STORE").as_deref() {
        Ok("file") => file_store(),
        _ => StoreConfig::mem(),
    }
}

/// A fresh on-disk store directory for one run.
fn file_store() -> StoreConfig {
    let tag = RUN_TAG.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "seep-fusion-equivalence-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    StoreConfig::file(dir)
}

/// Everything observable about one run, compared across fusion policies.
/// Processed counts and emit clocks go through the handle's attribution
/// path, so on the fused arm they are read back out of the fused unit's
/// per-stage counters.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Fingerprint {
    /// `(word, count, window)` in sink arrival order.
    sink_outputs: Vec<(String, u64, u64)>,
    /// Tuples processed per logical operator, in chain order.
    processed: Vec<(String, u64)>,
    /// Emit-clock value per logical operator, in chain order.
    emit_clocks: Vec<(String, u64)>,
    /// End-to-end latency samples recorded.
    latency_samples: usize,
}

/// A reconfiguration plan applied after the chunk with the given 0-based
/// index. Steps addressing the chain go through the tokenizer's name: on the
/// fused arm that resolves to the fused unit, so the plan transparently
/// reconfigures all three stages at once.
#[derive(Debug, Clone, Copy)]
enum PlanStep {
    /// Scale the counter out to this parallelism.
    ScaleOutCounter(usize),
    /// Scale the splitter chain out to this parallelism (the fused unit on
    /// the fused arm, the bare tokenizer on the unfused arm).
    ScaleOutChain(usize),
    /// N-way rebalance of the counter's key ranges.
    RebalanceCounter,
    /// Merge the counter's first two partitions (scale in).
    ScaleInCounter,
    /// Pack the counter's partitions onto shared VM slots.
    ConsolidateCounter,
    /// Crash the first counter partition's VM and recover at this
    /// parallelism.
    FailAndRecoverCounter(usize),
}

fn apply(handle: &mut JobHandle, step: PlanStep) {
    match step {
        PlanStep::ScaleOutCounter(pi) => {
            let target = handle.partitions("counter")[0];
            handle.scale_out(target, pi).expect("scale out counter");
        }
        PlanStep::ScaleOutChain(pi) => {
            let target = handle.partitions("tokenizer")[0];
            handle.scale_out(target, pi).expect("scale out chain");
        }
        PlanStep::RebalanceCounter => {
            handle.rebalance_operator("counter").expect("rebalance");
        }
        PlanStep::ScaleInCounter => {
            let parts = handle.partitions("counter");
            assert!(parts.len() >= 2, "scale in needs siblings");
            handle.scale_in(parts[0], parts[1]).expect("scale in");
        }
        PlanStep::ConsolidateCounter => {
            handle.consolidate("counter").expect("consolidate");
        }
        PlanStep::FailAndRecoverCounter(pi) => {
            let victim = handle.partitions("counter")[0];
            handle.fail_operator(victim);
            handle.recover(victim, pi).expect("recover");
        }
    }
}

/// Deploy the decomposed chain under the given fusion policy, inject
/// `chunks` of punctuated two-word sentences (one drain and 500 ms of
/// virtual time per chunk — the punctuation makes the tokenizer emit empty
/// segments for the filter to drop), apply any due plans between chunks,
/// close the final window and fingerprint the run.
fn run_chain(
    fusion: FusionPolicy,
    batch: usize,
    slots_per_vm: usize,
    store: StoreConfig,
    chunks: &[usize],
    vocabulary: usize,
    plans: &[(usize, PlanStep)],
) -> Fingerprint {
    let mut config = RuntimeConfig::default()
        .with_store(store)
        .with_batch_size(batch);
    config.pool = config.pool.with_slots_per_vm(slots_per_vm);
    let results: SinkCollector<WordFrequency> = SinkCollector::new();
    let mut handle = Job::builder(config)
        .fusion(fusion)
        .source("feeder", passthrough("feeder"))
        .then_stateless("tokenizer", SentenceTokenizer::new)
        .then_stateless("word_filter", EmptyTokenFilter::new)
        .then_stateless("word_keyer", WordKeyer::new)
        .then_stateful("counter", || WindowedWordCount::new(WINDOW_MS))
        .sink_collect("sink", &results)
        .deploy()
        .expect("deploy");
    assert_eq!(
        handle.plan_manifest().has_fusion(),
        !matches!(fusion, FusionPolicy::Disabled),
        "the arm must exercise the policy it claims to"
    );

    let mut sequence = 0u64;
    let mut now = handle.now_ms();
    for (index, &chunk) in chunks.iter().enumerate() {
        for _ in 0..chunk {
            // Deterministic punctuated sentences over a bounded vocabulary.
            let a = (sequence * 7 + 3) % vocabulary as u64;
            let b = (sequence * 13 + 5) % vocabulary as u64;
            let sentence = format!(" word{a}, word{b}!");
            handle
                .inject_encoded("feeder", Key::from_str_key(&sentence), &sentence)
                .expect("inject");
            sequence += 1;
        }
        now += 500;
        handle.advance_to(now);
        handle.drain();
        for &(after, step) in plans {
            if after == index {
                apply(&mut handle, step);
                handle.drain();
            }
        }
    }
    // Close the last window so every pending count reaches the sink.
    handle.advance_to(now + 2 * WINDOW_MS);
    handle.drain();

    let metrics = handle.metrics();
    Fingerprint {
        sink_outputs: results
            .take()
            .into_iter()
            .map(|f| (f.word, f.count, f.window))
            .collect(),
        processed: NAMES
            .iter()
            .map(|name| (name.to_string(), handle.processed_total(*name)))
            .collect(),
        emit_clocks: NAMES
            .iter()
            .map(|name| (name.to_string(), handle.emit_clock(*name)))
            .collect(),
        latency_samples: metrics.latency_samples(),
    }
}

#[test]
fn fused_plan_matches_the_unfused_plan() {
    let chunks = [40, 25, 1, 33, 18];
    for batch in [1, 64] {
        let unfused = run_chain(
            FusionPolicy::Disabled,
            batch,
            1,
            store_config(),
            &chunks,
            23,
            &[],
        );
        assert!(
            !unfused.sink_outputs.is_empty(),
            "windows must have closed: {unfused:?}"
        );
        let fused = run_chain(
            FusionPolicy::FuseKeepBatches,
            batch,
            1,
            store_config(),
            &chunks,
            23,
            &[],
        );
        assert_eq!(unfused, fused, "batch={batch} diverged");
    }
}

#[test]
fn scaled_out_chain_matches() {
    // The fused unit itself scaled out mid-stream: on the fused arm one plan
    // repartitions all three chain stages at once; on the unfused arm the
    // same step scales only the tokenizer. Both must keep the stream's
    // observable behaviour (and the per-stage attribution) identical.
    let chunks = [30, 30, 30, 20];
    let plans = [
        (0, PlanStep::ScaleOutChain(2)),
        (1, PlanStep::ScaleOutCounter(3)),
    ];
    let unfused = run_chain(
        FusionPolicy::Disabled,
        64,
        1,
        store_config(),
        &chunks,
        17,
        &plans,
    );
    assert!(!unfused.sink_outputs.is_empty());
    let fused = run_chain(
        FusionPolicy::FuseKeepBatches,
        64,
        1,
        store_config(),
        &chunks,
        17,
        &plans,
    );
    assert_eq!(unfused, fused);
}

#[test]
fn all_five_plan_kinds_match() {
    // Scale out → rebalance → crash-recovery → scale in → consolidate, each
    // between chunks of live traffic, on a pool with two VM slots so
    // consolidation packs surviving partitions onto shared VMs.
    let chunks = [30, 20, 20, 20, 20, 15];
    let plans = [
        (0, PlanStep::ScaleOutCounter(3)),
        (1, PlanStep::RebalanceCounter),
        (2, PlanStep::FailAndRecoverCounter(1)),
        (3, PlanStep::ScaleInCounter),
        (4, PlanStep::ConsolidateCounter),
    ];
    for batch in [1, 64] {
        let unfused = run_chain(
            FusionPolicy::Disabled,
            batch,
            2,
            store_config(),
            &chunks,
            29,
            &plans,
        );
        assert!(!unfused.sink_outputs.is_empty());
        let fused = run_chain(
            FusionPolicy::FuseKeepBatches,
            batch,
            2,
            store_config(),
            &chunks,
            29,
            &plans,
        );
        assert_eq!(unfused, fused, "batch={batch} diverged");
    }
}

#[test]
fn durable_file_store_matches() {
    // Pin the durable backend explicitly (independent of SEEP_STORE) with a
    // mid-stream scale-out, so the counter's checkpoints really hit the
    // log-structured store on both arms.
    let chunks = [25, 25, 20];
    let plans = [(0, PlanStep::ScaleOutCounter(2))];
    let unfused = run_chain(
        FusionPolicy::Disabled,
        64,
        1,
        file_store(),
        &chunks,
        19,
        &plans,
    );
    assert!(!unfused.sink_outputs.is_empty());
    let fused = run_chain(
        FusionPolicy::FuseKeepBatches,
        64,
        1,
        file_store(),
        &chunks,
        19,
        &plans,
    );
    assert_eq!(unfused, fused);
}

#[test]
fn default_policy_fuses_and_stays_equivalent() {
    // The builder's default policy (`Fuse`) additionally applies the planner's
    // batch heuristic to the fused unit's output edge when the job left every
    // batch size at the default. Batching never changes sink outputs, counts
    // or (at the default 1:1 sampling) latency sample counts — only arrival
    // granularity — so the default policy must still agree with the unfused
    // plan on the whole fingerprint.
    let chunks = [40, 25, 33];
    let unfused = run_chain(
        FusionPolicy::Disabled,
        1,
        1,
        store_config(),
        &chunks,
        23,
        &[],
    );
    let fused = run_chain(FusionPolicy::Fuse, 1, 1, store_config(), &chunks, 23, &[]);
    assert_eq!(unfused.sink_outputs, fused.sink_outputs);
    assert_eq!(unfused.processed, fused.processed);
    assert_eq!(unfused.emit_clocks, fused.emit_clocks);
    assert_eq!(unfused.latency_samples, fused.latency_samples);
}
