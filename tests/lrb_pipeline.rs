//! Integration test: the Linear Road Benchmark operators composed into the
//! full query of Fig. 5, fed by the synthetic LRB generator, produce
//! consistent results — and the stateful toll calculator can be scaled out
//! and recovered mid-run without breaking the accounting invariants.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use seep::core::operator::OperatorFactory;
use seep::core::{Key, LogicalOpId, OutputTuple, QueryGraph, StatefulOperator, StatelessFn, Tuple};
use seep::operators::lrb::{
    BalanceAccount, Collector, Forwarder, LrbRecord, TollAssessment, TollCalculator,
};
use seep::runtime::{Runtime, RuntimeConfig};
use seep::workloads::{LrbConfig, LrbGenerator};

struct LrbHarness {
    runtime: Runtime,
    src: LogicalOpId,
    toll_calc: LogicalOpId,
    toll_assess: LogicalOpId,
    sink_tolls: Arc<Mutex<Vec<(u32, u32)>>>,    // (vid, toll)
    sink_balances: Arc<Mutex<Vec<(u32, u64)>>>, // (vid, balance)
}

fn deploy() -> LrbHarness {
    let mut b = QueryGraph::builder();
    let src = b.source("data_feeder");
    let fwd = b.stateless("forwarder");
    let calc = b.stateful("toll_calculator");
    let assess = b.stateful("toll_assessment");
    let account = b.stateful("balance_account");
    let coll = b.stateless("collector");
    let snk = b.sink("sink");
    b.connect(src, fwd);
    b.connect(fwd, calc);
    b.connect(fwd, assess); // balance queries go straight to the assessment
    b.connect(calc, assess);
    b.connect(assess, account); // balance responses are aggregated per account
    b.connect(assess, coll); // toll notifications go to the collector
    b.connect(account, coll);
    b.connect(coll, snk);
    let query = b.build().expect("valid LRB query graph");

    let sink_tolls: Arc<Mutex<Vec<(u32, u32)>>> = Arc::new(Mutex::new(Vec::new()));
    let sink_balances: Arc<Mutex<Vec<(u32, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let tolls = sink_tolls.clone();
    let balances = sink_balances.clone();

    let mut factories: HashMap<LogicalOpId, Arc<dyn OperatorFactory>> = HashMap::new();
    factories.insert(
        src,
        Arc::new(|| -> Box<dyn StatefulOperator> {
            Box::new(StatelessFn::new(
                "feeder",
                |_, t: &Tuple, out: &mut Vec<OutputTuple>| {
                    out.push(OutputTuple::new(t.key, t.payload.clone()));
                },
            ))
        }) as Arc<dyn OperatorFactory>,
    );
    factories.insert(
        fwd,
        Arc::new(|| -> Box<dyn StatefulOperator> { Box::new(Forwarder::new()) })
            as Arc<dyn OperatorFactory>,
    );
    factories.insert(
        calc,
        Arc::new(|| -> Box<dyn StatefulOperator> { Box::new(TollCalculator::new()) })
            as Arc<dyn OperatorFactory>,
    );
    factories.insert(
        assess,
        Arc::new(|| -> Box<dyn StatefulOperator> { Box::new(TollAssessment::new()) })
            as Arc<dyn OperatorFactory>,
    );
    factories.insert(
        account,
        Arc::new(|| -> Box<dyn StatefulOperator> { Box::new(BalanceAccount::new()) })
            as Arc<dyn OperatorFactory>,
    );
    factories.insert(
        coll,
        Arc::new(|| -> Box<dyn StatefulOperator> { Box::new(Collector::new()) })
            as Arc<dyn OperatorFactory>,
    );
    factories.insert(
        snk,
        Arc::new(move || -> Box<dyn StatefulOperator> {
            let tolls = tolls.clone();
            let balances = balances.clone();
            Box::new(StatelessFn::new(
                "lrb_sink",
                move |_, t: &Tuple, _out: &mut Vec<OutputTuple>| {
                    if let Ok(record) = t.decode::<LrbRecord>() {
                        match record {
                            LrbRecord::Toll(n) => tolls.lock().push((n.vid, n.toll)),
                            LrbRecord::BalanceResponse(r) => {
                                balances.lock().push((r.vid, r.balance))
                            }
                            _ => {}
                        }
                    }
                },
            ))
        }) as Arc<dyn OperatorFactory>,
    );

    let mut runtime = Runtime::new(RuntimeConfig::default());
    runtime.deploy(query, factories).expect("deployment");
    LrbHarness {
        runtime,
        src,
        toll_calc: calc,
        toll_assess: assess,
        sink_tolls,
        sink_balances,
    }
}

fn feed_seconds(h: &mut LrbHarness, generator: &mut LrbGenerator, seconds: u32) {
    for t in 0..seconds {
        for record in generator.generate_second(t) {
            let key = Key::from_u64(u64::from(record.time()) << 32 | t as u64);
            let payload = bincode::serialize(&record).expect("serialise");
            h.runtime.inject(h.src, key, payload);
        }
        h.runtime.advance_to(((t + 1) as u64) * 1_000);
        h.runtime.drain();
    }
}

/// Sum of balances held by all toll-assessment partitions.
fn total_balance(h: &LrbHarness) -> u64 {
    h.runtime
        .partitions(h.toll_assess)
        .iter()
        .filter_map(|id| {
            h.runtime.with_operator(*id, |op| {
                let state = op.get_processing_state();
                state
                    .iter()
                    .filter_map(|(k, _)| {
                        state
                            .get_decoded::<(u64, u64, u64)>(k) // Account {balance, charges, queries}
                            .ok()
                            .flatten()
                            .map(|(balance, _, _)| balance)
                    })
                    .sum::<u64>()
            })
        })
        .sum()
}

#[test]
fn lrb_pipeline_produces_tolls_and_consistent_balances() {
    let mut h = deploy();
    let mut generator = LrbGenerator::new(LrbConfig {
        expressways: 2,
        duration_secs: 200,
        balance_query_fraction: 0.05,
        ..Default::default()
    });
    feed_seconds(&mut h, &mut generator, 12);

    let tolls = h.sink_tolls.lock().clone();
    assert!(!tolls.is_empty(), "toll notifications must reach the sink");
    // Every toll charged at the sink is reflected in some account balance.
    let charged: u64 = tolls.iter().map(|(_, t)| u64::from(*t)).sum();
    assert_eq!(total_balance(&h), charged);

    let balances = h.sink_balances.lock().clone();
    assert!(
        !balances.is_empty(),
        "balance queries must be answered (query fraction 5%)"
    );
}

#[test]
fn toll_calculator_scale_out_and_recovery_keep_accounting_consistent() {
    let mut h = deploy();
    let mut generator = LrbGenerator::new(LrbConfig {
        expressways: 2,
        duration_secs: 200,
        ..Default::default()
    });
    feed_seconds(&mut h, &mut generator, 6);

    // Scale the toll calculator out to two partitions (checkpointed state is
    // split by segment key range).
    let target = h.runtime.partitions(h.toll_calc)[0];
    h.runtime.scale_out(target, 2).expect("scale out");
    assert_eq!(h.runtime.parallelism(h.toll_calc), 2);
    feed_seconds(&mut h, &mut generator, 6);

    // Fail one partition and recover it; accounting stays consistent.
    h.runtime.advance_to(h.runtime.now_ms() + 6_000); // force a checkpoint round
    let victim = h.runtime.partitions(h.toll_calc)[0];
    h.runtime.fail_operator(victim);
    h.runtime.recover(victim, 1).expect("recovery");
    feed_seconds(&mut h, &mut generator, 4);

    let charged: u64 = h.sink_tolls.lock().iter().map(|(_, t)| u64::from(*t)).sum();
    assert_eq!(
        total_balance(&h),
        charged,
        "sum of account balances must equal the tolls delivered to the sink"
    );
    assert_eq!(h.runtime.parallelism(h.toll_calc), 2);
}
