//! Integration test: the Linear Road Benchmark operators composed into the
//! full query of Fig. 5, fed by the synthetic LRB generator, produce
//! consistent results — and the stateful toll calculator can be scaled out
//! and recovered mid-run without breaking the accounting invariants.
//!
//! The query has fan-out (the forwarder feeds both the toll calculator and
//! the toll assessment) and fan-in (the collector merges assessment and
//! account output), so it exercises the job builder's `branch`/`connect`
//! path rather than the linear `then_*` chaining.

use seep::api::{passthrough, Job, JobHandle, SinkCollector};
use seep::core::{Key, LogicalOpId};
use seep::operators::lrb::{
    BalanceAccount, Collector, Forwarder, LrbRecord, TollAssessment, TollCalculator,
};
use seep::runtime::RuntimeConfig;
use seep::workloads::{LrbConfig, LrbGenerator};

struct LrbHarness {
    handle: JobHandle,
    src: LogicalOpId,
    toll_calc: LogicalOpId,
    toll_assess: LogicalOpId,
    sink: SinkCollector<LrbRecord>,
}

fn deploy() -> LrbHarness {
    let sink = SinkCollector::new();
    let handle = Job::builder(RuntimeConfig::default())
        .source("data_feeder", passthrough("feeder"))
        .then_stateless("forwarder", Forwarder::new)
        .then_stateful("toll_calculator", TollCalculator::new)
        .branch("forwarder")
        .then_stateful("toll_assessment", TollAssessment::new)
        .connect("toll_calculator", "toll_assessment") // fan-in at the assessment
        .then_stateful("balance_account", BalanceAccount::new)
        .branch("toll_assessment")
        .then_stateless("collector", Collector::new)
        .connect("balance_account", "collector") // fan-in at the collector
        .sink_collect("sink", &sink)
        .deploy()
        .expect("valid LRB job");
    let src = handle.op("data_feeder");
    let toll_calc = handle.op("toll_calculator");
    let toll_assess = handle.op("toll_assessment");
    LrbHarness {
        handle,
        src,
        toll_calc,
        toll_assess,
        sink,
    }
}

fn feed_seconds(h: &mut LrbHarness, generator: &mut LrbGenerator, seconds: u32) {
    for t in 0..seconds {
        for record in generator.generate_second(t) {
            let key = Key::from_u64(u64::from(record.time()) << 32 | t as u64);
            let payload = bincode::serialize(&record).expect("serialise");
            h.handle.inject(h.src, key, payload);
        }
        h.handle.advance_to(((t + 1) as u64) * 1_000);
        h.handle.drain();
    }
}

/// Toll notifications delivered to the sink so far, as `(vid, toll)`.
fn sink_tolls(h: &LrbHarness) -> Vec<(u32, u32)> {
    h.sink.with(|records| {
        records
            .iter()
            .filter_map(|r| match r {
                LrbRecord::Toll(n) => Some((n.vid, n.toll)),
                _ => None,
            })
            .collect()
    })
}

/// Balance responses delivered to the sink so far, as `(vid, balance)`.
fn sink_balances(h: &LrbHarness) -> Vec<(u32, u64)> {
    h.sink.with(|records| {
        records
            .iter()
            .filter_map(|r| match r {
                LrbRecord::BalanceResponse(b) => Some((b.vid, b.balance)),
                _ => None,
            })
            .collect()
    })
}

/// Sum of balances held by all toll-assessment partitions.
fn total_balance(h: &LrbHarness) -> u64 {
    h.handle
        .partitions(h.toll_assess)
        .iter()
        .filter_map(|id| {
            h.handle.with_operator(*id, |op| {
                let state = op.get_processing_state();
                state
                    .iter()
                    .filter_map(|(k, _)| {
                        state
                            .get_decoded::<(u64, u64, u64)>(k) // Account {balance, charges, queries}
                            .ok()
                            .flatten()
                            .map(|(balance, _, _)| balance)
                    })
                    .sum::<u64>()
            })
        })
        .sum()
}

#[test]
fn lrb_pipeline_produces_tolls_and_consistent_balances() {
    let mut h = deploy();
    let mut generator = LrbGenerator::new(LrbConfig {
        expressways: 2,
        duration_secs: 200,
        balance_query_fraction: 0.05,
        ..Default::default()
    });
    feed_seconds(&mut h, &mut generator, 12);

    let tolls = sink_tolls(&h);
    assert!(!tolls.is_empty(), "toll notifications must reach the sink");
    // Every toll charged at the sink is reflected in some account balance.
    let charged: u64 = tolls.iter().map(|(_, t)| u64::from(*t)).sum();
    assert_eq!(total_balance(&h), charged);

    assert!(
        !sink_balances(&h).is_empty(),
        "balance queries must be answered (query fraction 5%)"
    );
}

#[test]
fn toll_calculator_scale_out_and_recovery_keep_accounting_consistent() {
    let mut h = deploy();
    let mut generator = LrbGenerator::new(LrbConfig {
        expressways: 2,
        duration_secs: 200,
        ..Default::default()
    });
    feed_seconds(&mut h, &mut generator, 6);

    // Scale the toll calculator out to two partitions (checkpointed state is
    // split by segment key range).
    let target = h.handle.partitions(h.toll_calc)[0];
    h.handle.scale_out(target, 2).expect("scale out");
    assert_eq!(h.handle.parallelism(h.toll_calc), 2);
    feed_seconds(&mut h, &mut generator, 6);

    // Fail one partition and recover it; accounting stays consistent.
    h.handle.advance_to(h.handle.now_ms() + 6_000); // force a checkpoint round
    let victim = h.handle.partitions(h.toll_calc)[0];
    h.handle.fail_operator(victim);
    h.handle.recover(victim, 1).expect("recovery");
    feed_seconds(&mut h, &mut generator, 4);

    let charged: u64 = sink_tolls(&h).iter().map(|(_, t)| u64::from(*t)).sum();
    assert_eq!(
        total_balance(&h),
        charged,
        "sum of account balances must equal the tolls delivered to the sink"
    );
    assert_eq!(h.handle.parallelism(h.toll_calc), 2);
}
