//! Parallel/cooperative equivalence suite: draining the same query over the
//! same injected stream on the threaded worker pool (`worker_threads` ∈
//! {2, 4}) must be observably identical to the cooperative single-threaded
//! stepper — same sink outputs in the same order, same per-operator
//! processed counts, same emit clocks and the same number of latency
//! samples — including with reconfiguration plans of all five kinds
//! (scale out, rebalance, scale in, consolidate, recovery) executed
//! mid-stream between drains.
//!
//! Set `SEEP_STORE=file` to run the whole suite against the durable
//! `FileStore` checkpoint backend (CI does); the default is the in-memory
//! backend. One test additionally pins the durable backend explicitly.

use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use seep::core::Key;
use seep::operators::word_count::WordFrequency;
use seep::operators::{WindowedWordCount, WordSplitter};
use seep::runtime::api::{passthrough, Job, JobHandle, SinkCollector};
use seep::runtime::{RuntimeConfig, StoreConfig};

/// Short tumbling window so sink output flows within a few virtual seconds.
const WINDOW_MS: u64 = 2_000;

/// Distinguishes the on-disk store directories of concurrent runs.
static RUN_TAG: AtomicUsize = AtomicUsize::new(0);

/// The checkpoint-store backend under test: `SEEP_STORE=file` selects the
/// durable log-structured backend, anything else the seed's in-memory one.
fn store_config() -> StoreConfig {
    match std::env::var("SEEP_STORE").as_deref() {
        Ok("file") => file_store(),
        _ => StoreConfig::mem(),
    }
}

/// A fresh on-disk store directory for one run.
fn file_store() -> StoreConfig {
    let tag = RUN_TAG.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "seep-parallel-equivalence-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    StoreConfig::file(dir)
}

/// Everything observable about one run, compared across thread counts.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Fingerprint {
    /// `(word, count, window)` in sink arrival order.
    sink_outputs: Vec<(String, u64, u64)>,
    /// Tuples processed per logical operator, in chain order.
    processed: Vec<(String, u64)>,
    /// Emit-clock value per logical operator, in chain order.
    emit_clocks: Vec<(String, u64)>,
    /// End-to-end latency samples recorded.
    latency_samples: usize,
}

/// A reconfiguration plan applied after the chunk with the given 0-based
/// index, exercising the quiesce barrier between parallel drains.
#[derive(Debug, Clone, Copy)]
enum PlanStep {
    /// Scale the counter out to this parallelism.
    ScaleOutCounter(usize),
    /// Scale the splitter out to this parallelism (a *stateless* scale-out:
    /// its sibling partitions then share the emit gate under the pool).
    ScaleOutSplitter(usize),
    /// N-way rebalance of the counter's key ranges.
    RebalanceCounter,
    /// Merge the counter's first two partitions (scale in).
    ScaleInCounter,
    /// Pack the counter's partitions onto shared VM slots.
    ConsolidateCounter,
    /// Crash the first counter partition's VM and recover at this
    /// parallelism.
    FailAndRecoverCounter(usize),
}

fn apply(handle: &mut JobHandle, step: PlanStep) {
    match step {
        PlanStep::ScaleOutCounter(pi) => {
            let target = handle.partitions("counter")[0];
            handle.scale_out(target, pi).expect("scale out counter");
        }
        PlanStep::ScaleOutSplitter(pi) => {
            let target = handle.partitions("splitter")[0];
            handle.scale_out(target, pi).expect("scale out splitter");
        }
        PlanStep::RebalanceCounter => {
            handle.rebalance_operator("counter").expect("rebalance");
        }
        PlanStep::ScaleInCounter => {
            let parts = handle.partitions("counter");
            assert!(parts.len() >= 2, "scale in needs siblings");
            handle.scale_in(parts[0], parts[1]).expect("scale in");
        }
        PlanStep::ConsolidateCounter => {
            handle.consolidate("counter").expect("consolidate");
        }
        PlanStep::FailAndRecoverCounter(pi) => {
            let victim = handle.partitions("counter")[0];
            handle.fail_operator(victim);
            handle.recover(victim, pi).expect("recover");
        }
    }
}

/// Deploy feeder → splitter → windowed word counter → collecting sink,
/// inject `chunks` of two-word sentences (one drain and 500 ms of virtual
/// time per chunk), apply any due plans between chunks, close the final
/// window and fingerprint the run.
fn run_chain(
    worker_threads: usize,
    batch: usize,
    slots_per_vm: usize,
    store: StoreConfig,
    chunks: &[usize],
    vocabulary: usize,
    plans: &[(usize, PlanStep)],
) -> Fingerprint {
    let mut config = RuntimeConfig::default()
        .with_store(store)
        .with_batch_size(batch)
        .with_worker_threads(worker_threads);
    config.pool = config.pool.with_slots_per_vm(slots_per_vm);
    let results: SinkCollector<WordFrequency> = SinkCollector::new();
    let mut handle = Job::builder(config)
        .source("feeder", passthrough("feeder"))
        .then_stateless("splitter", WordSplitter::new)
        .then_stateful("counter", || WindowedWordCount::new(WINDOW_MS))
        .sink_collect("sink", &results)
        .deploy()
        .expect("deploy");
    let names = ["feeder", "splitter", "counter", "sink"];

    let mut sequence = 0u64;
    let mut now = handle.now_ms();
    for (index, &chunk) in chunks.iter().enumerate() {
        for _ in 0..chunk {
            // Deterministic two-word sentences over a bounded vocabulary.
            let a = (sequence * 7 + 3) % vocabulary as u64;
            let b = (sequence * 13 + 5) % vocabulary as u64;
            let sentence = format!("word{a} word{b}");
            handle
                .inject_encoded("feeder", Key::from_str_key(&sentence), &sentence)
                .expect("inject");
            sequence += 1;
        }
        now += 500;
        handle.advance_to(now);
        handle.drain();
        for &(after, step) in plans {
            if after == index {
                apply(&mut handle, step);
                handle.drain();
            }
        }
    }
    // Close the last window so every pending count reaches the sink.
    handle.advance_to(now + 2 * WINDOW_MS);
    handle.drain();

    let metrics = handle.metrics();
    let processed = names
        .iter()
        .map(|name| {
            let total = handle
                .partitions(*name)
                .iter()
                .map(|id| metrics.processed_by(*id))
                .sum();
            (name.to_string(), total)
        })
        .collect();
    let emit_clocks = names
        .iter()
        .map(|name| (name.to_string(), handle.emit_clock(*name)))
        .collect();
    Fingerprint {
        sink_outputs: results
            .take()
            .into_iter()
            .map(|f| (f.word, f.count, f.window))
            .collect(),
        processed,
        emit_clocks,
        latency_samples: metrics.latency_samples(),
    }
}

#[test]
fn worker_pool_matches_the_cooperative_stepper() {
    let chunks = [40, 25, 1, 33, 18];
    for batch in [1, 64] {
        let baseline = run_chain(1, batch, 1, store_config(), &chunks, 23, &[]);
        assert!(
            !baseline.sink_outputs.is_empty(),
            "windows must have closed: {baseline:?}"
        );
        for threads in [2, 4] {
            let pooled = run_chain(threads, batch, 1, store_config(), &chunks, 23, &[]);
            assert_eq!(baseline, pooled, "threads={threads} batch={batch} diverged");
        }
    }
}

#[test]
fn scaled_out_stages_match_under_the_pool() {
    // Both hot stages scaled out mid-stream: the splitter's sibling
    // partitions then emit concurrently onto the shared logical stream, the
    // exact scenario the emit gate exists for.
    let chunks = [30, 30, 30, 20];
    let plans = [
        (0, PlanStep::ScaleOutSplitter(2)),
        (1, PlanStep::ScaleOutCounter(3)),
    ];
    let baseline = run_chain(1, 64, 1, store_config(), &chunks, 17, &plans);
    assert!(!baseline.sink_outputs.is_empty());
    for threads in [2, 4] {
        let pooled = run_chain(threads, 64, 1, store_config(), &chunks, 17, &plans);
        assert_eq!(baseline, pooled, "threads={threads} diverged");
    }
}

#[test]
fn all_five_plan_kinds_match_under_the_pool() {
    // Scale out → rebalance → crash-recovery → scale in → consolidate, each
    // between chunks of live traffic, on a pool with two VM slots so
    // consolidation packs surviving partitions onto shared VMs.
    let chunks = [30, 20, 20, 20, 20, 15];
    let plans = [
        (0, PlanStep::ScaleOutCounter(3)),
        (1, PlanStep::RebalanceCounter),
        (2, PlanStep::FailAndRecoverCounter(1)),
        (3, PlanStep::ScaleInCounter),
        (4, PlanStep::ConsolidateCounter),
    ];
    let baseline = run_chain(1, 64, 2, store_config(), &chunks, 29, &plans);
    assert!(!baseline.sink_outputs.is_empty());
    for threads in [2, 4] {
        let pooled = run_chain(threads, 64, 2, store_config(), &chunks, 29, &plans);
        assert_eq!(baseline, pooled, "threads={threads} diverged");
    }
}

#[test]
fn durable_file_store_matches_under_the_pool() {
    // Pin the durable backend explicitly (independent of SEEP_STORE) with a
    // mid-stream scale-out, so checkpoints really hit the log-structured
    // store under the pool.
    let chunks = [25, 25, 20];
    let plans = [(0, PlanStep::ScaleOutCounter(2))];
    let baseline = run_chain(1, 64, 1, file_store(), &chunks, 19, &plans);
    assert!(!baseline.sink_outputs.is_empty());
    let pooled = run_chain(4, 64, 1, file_store(), &chunks, 19, &plans);
    assert_eq!(baseline, pooled);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any thread count, batch size and injection interleaving produces the
    /// cooperative stepper's outputs, counts and clocks.
    #[test]
    fn prop_pooled_run_is_equivalent_to_cooperative_run(
        threads in 2usize..5,
        batch in 1usize..129,
        chunks in proptest::collection::vec(1usize..40, 1..5),
        vocabulary in 5usize..30,
    ) {
        let baseline = run_chain(1, batch, 1, store_config(), &chunks, vocabulary, &[]);
        let pooled = run_chain(threads, batch, 1, store_config(), &chunks, vocabulary, &[]);
        prop_assert_eq!(baseline, pooled);
    }
}
