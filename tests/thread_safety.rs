//! Thread-safety audit of the shared control-plane state the parallel data
//! plane touches from worker threads: compile-time `Send`/`Sync` assertions
//! for every type that crosses a thread boundary, and an 8-thread stress of
//! the shared clock and the metrics registry with exact-total assertions —
//! a lost update anywhere shows up as a wrong count.

use seep::net::Network;
use seep::runtime::obs::ObsShared;
use seep::runtime::worker::SharedClock;
use seep::runtime::{Journal, Metrics, WorkerCore};

use seep::core::OperatorId;

/// The parallel executor moves workers to scoped threads (`Send`) and shares
/// the clock, metrics, network and journal across them (`Sync`). These
/// bounds are the whole safety argument, so assert them where a regression
/// turns into a compile error rather than a data race.
#[test]
fn shared_state_is_send_and_sync() {
    fn is_send<T: Send>() {}
    fn is_sync<T: Sync>() {}
    is_send::<WorkerCore>();
    is_send::<SharedClock>();
    is_sync::<SharedClock>();
    is_send::<Metrics>();
    is_sync::<Metrics>();
    is_send::<Network>();
    is_sync::<Network>();
    is_send::<Journal>();
    is_sync::<Journal>();
    is_send::<ObsShared>();
    is_sync::<ObsShared>();
}

const THREADS: u64 = 8;
const ITERATIONS: u64 = 5_000;

#[test]
fn clock_ticks_are_never_lost_across_eight_threads() {
    let clock = SharedClock::new();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..ITERATIONS {
                    // One single tick and one 2-block reservation per
                    // iteration, mixing both advancement paths.
                    let single = clock.tick();
                    assert!(single > 0);
                    let first = clock.tick_many(2);
                    assert!(first > single);
                }
            });
        }
    });
    assert_eq!(
        clock.last(),
        THREADS * ITERATIONS * 3,
        "every tick must be represented exactly once"
    );
}

#[test]
fn metrics_totals_are_exact_across_eight_threads() {
    let metrics = Metrics::new();
    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let metrics = &metrics;
            scope.spawn(move || {
                let op = OperatorId::new(thread + 1);
                for i in 0..ITERATIONS {
                    metrics.record_processed(op, 1);
                    metrics.record_latency_us(i % 700);
                }
            });
        }
    });
    for thread in 0..THREADS {
        assert_eq!(
            metrics.processed_by(OperatorId::new(thread + 1)),
            ITERATIONS,
            "per-operator processed count must be exact"
        );
    }
    assert_eq!(
        metrics.latency_samples() as u64,
        THREADS * ITERATIONS,
        "every latency sample must be recorded exactly once"
    );
    assert_eq!(metrics.latency_histogram().count, THREADS * ITERATIONS);
}

#[test]
fn timestamp_blocks_reserved_concurrently_never_overlap() {
    // tick_many hands out contiguous blocks; concurrent reservations must
    // partition the timestamp space with no gaps and no overlaps.
    let clock = SharedClock::new();
    let blocks: Vec<Vec<(u64, u64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                scope.spawn(|| {
                    (0..ITERATIONS)
                        .map(|i| {
                            let n = i % 7 + 1;
                            (clock.tick_many(n), n)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut starts: Vec<(u64, u64)> = blocks.into_iter().flatten().collect();
    starts.sort_unstable();
    let mut next_free = 1;
    for (first, n) in starts {
        assert_eq!(first, next_free, "blocks must tile the timestamp space");
        next_free = first + n;
    }
    assert_eq!(next_free - 1, clock.last());
}
