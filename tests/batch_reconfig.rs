//! Reconfiguration × batching: every whole-operator plan kind (scale out,
//! N-way rebalance, consolidation, scale in) and VM-crash recovery run with
//! a batched data plane, triggered **mid-batch** — tuples injected but not
//! yet drained, so partial output batches are pending inside the workers
//! when the plan starts. The executor must flush those partials into the
//! channels before drain/pause/capture, keeping the final counts identical
//! to a per-tuple run that never reconfigured.

use seep::core::Key;
use seep::runtime::{RuntimeConfig, StoreConfig};
use seep_bench::harness::WordCountHarness;
use seep_cloud::VmPoolConfig;

/// Batch size used by the batched arms: large enough that a second's worth
/// of injections always leaves a partial batch pending.
const BATCH: usize = 64;

fn batched(config: RuntimeConfig) -> RuntimeConfig {
    config.with_batch_size(BATCH)
}

fn two_slot_config() -> RuntimeConfig {
    RuntimeConfig {
        pool: VmPoolConfig::default().with_slots_per_vm(2),
        ..RuntimeConfig::default()
    }
}

/// Drive the word-count query for 8 virtual seconds at 37 deterministic
/// two-word fragments per second (37 is coprime to the batch size, so the
/// source always holds a partial batch when `action` runs). `action` is
/// called after each second's injections and **before** the drain — exactly
/// the mid-batch moment.
fn drive(config: RuntimeConfig, mut action: impl FnMut(&mut WordCountHarness, u64)) -> u64 {
    let mut harness = WordCountHarness::deploy(config, 300, 0);
    let start = harness.handle.now_ms();
    let mut sequence = 0u64;
    for s in 0..8u64 {
        for _ in 0..37 {
            let sentence = format!("alpha{} beta{}", sequence % 29, (sequence * 3) % 31);
            let payload = bincode::serialize(&sentence).expect("fragment serialises");
            harness
                .handle
                .inject(harness.source, Key::from_str_key(&sentence), payload);
            sequence += 1;
        }
        action(&mut harness, s);
        harness.handle.advance_to(start + (s + 1) * 1_000);
        harness.handle.drain();
    }
    harness.total_counted_words()
}

/// The never-reconfigured per-tuple run every scenario must reproduce.
fn baseline(config: RuntimeConfig) -> u64 {
    drive(config, |_, _| {})
}

#[test]
fn batched_runs_match_per_tuple_baseline_without_reconfiguration() {
    let expected = baseline(RuntimeConfig::default());
    assert!(expected > 0);
    assert_eq!(baseline(batched(RuntimeConfig::default())), expected);
}

#[test]
fn scale_out_mid_batch_flushes_partials_and_matches_baseline() {
    let expected = baseline(RuntimeConfig::default());
    let counted = drive(batched(RuntimeConfig::default()), |harness, s| {
        if s == 2 {
            let target = harness.handle.partitions(harness.counter)[0];
            harness.handle.scale_out(target, 4).expect("scale out");
        }
    });
    assert_eq!(counted, expected);
}

#[test]
fn rebalance_mid_batch_flushes_partials_and_matches_baseline() {
    let expected = baseline(RuntimeConfig::default());
    let counted = drive(batched(RuntimeConfig::default()), |harness, s| {
        if s == 2 {
            let target = harness.handle.partitions(harness.counter)[0];
            harness.handle.scale_out(target, 4).expect("scale out");
        }
        if s == 5 {
            harness
                .handle
                .rebalance_operator(harness.counter)
                .expect("rebalance");
            assert_eq!(harness.handle.parallelism(harness.counter), 4);
        }
    });
    assert_eq!(counted, expected);
}

#[test]
fn consolidate_and_scale_in_mid_batch_match_baseline() {
    let expected = baseline(two_slot_config());
    let counted = drive(batched(two_slot_config()), |harness, s| {
        if s == 2 {
            let target = harness.handle.partitions(harness.counter)[0];
            harness.handle.scale_out(target, 4).expect("scale out");
        }
        if s == 4 {
            let outcome = harness
                .handle
                .consolidate(harness.counter)
                .expect("consolidate");
            assert_eq!(outcome.released_vms.len(), 2, "4 partitions on 2 VMs");
        }
        if s == 6 {
            let parts = harness.handle.partitions(harness.counter);
            harness
                .handle
                .scale_in(parts[0], parts[1])
                .expect("scale in");
            assert_eq!(harness.handle.parallelism(harness.counter), 3);
        }
    });
    assert_eq!(counted, expected);
}

#[test]
fn vm_crash_recovery_mid_batch_matches_baseline() {
    let expected = baseline(RuntimeConfig::default());
    let counted = drive(batched(RuntimeConfig::default()), |harness, s| {
        // Crash the counter's VM with this second's injections still
        // pending as a partial source batch, past the 5 s checkpoint
        // boundary so recovery restores a checkpoint and replays the rest.
        if s == 6 {
            let victim = harness.counter_instance();
            harness.handle.fail_operator(victim);
            harness.handle.recover(victim, 1).expect("recovery");
        }
    });
    assert_eq!(counted, expected);
}

#[test]
fn batched_consolidate_with_durable_backend_matches_baseline() {
    let dir = std::env::temp_dir().join(format!("seep-batch-reconfig-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let expected = baseline(two_slot_config());
    let durable = RuntimeConfig {
        store: StoreConfig::file(&dir).with_incremental(true),
        ..two_slot_config()
    };
    let counted = drive(batched(durable), |harness, s| {
        if s == 2 {
            let target = harness.handle.partitions(harness.counter)[0];
            harness.handle.scale_out(target, 4).expect("scale out");
        }
        if s == 5 {
            harness
                .handle
                .consolidate(harness.counter)
                .expect("consolidate");
        }
    });
    assert_eq!(counted, expected);
    let _ = std::fs::remove_dir_all(&dir);
}
