//! Length-prefixed framing for the TCP transport.
//!
//! Every frame is a 4-byte big-endian length followed by that many payload
//! bytes. The payload of a data-plane frame is [`crate::wire::encode`]'s
//! output; the coordinator control plane reuses the same framing with its
//! own message encoding. [`FrameReader`] reassembles frames from the
//! arbitrary split points a TCP stream delivers — a frame may arrive in one
//! read, byte by byte, or glued to its neighbours — and rejects frames
//! whose advertised length is implausible so a desynchronised or hostile
//! peer cannot request an unbounded allocation.

use std::io::{self, Read, Write};

/// Upper bound on a frame payload. Generous for data batches (a full batch
/// of large tuples is far below this) while bounding the allocation a
/// corrupt length prefix could demand.
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// Bytes of framing overhead per frame (the length prefix).
pub const FRAME_HEADER_LEN: usize = 4;

/// Write one frame: length prefix plus payload, in a single buffered write
/// so the kernel sees the frame as one unit where possible.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME_LEN", payload.len()),
        ));
    }
    let mut buf = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)
}

/// Read exactly one frame from a blocking reader. Returns `Ok(None)` on a
/// clean end of stream (EOF at a frame boundary) and an error for a
/// truncated frame or an oversized length prefix.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection dropped inside a frame header",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME_LEN"),
        ));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match r.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection dropped mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Some(payload))
}

/// Incremental frame reassembly for non-blocking sockets: feed it whatever
/// bytes a read returned, pop complete frames as they form. Partial frames
/// stay buffered across reads.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// A reader with an empty reassembly buffer.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Append bytes read from the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete frame, if one has fully arrived. Returns an
    /// error when the buffered length prefix is implausible (the stream is
    /// desynchronised and the connection should be dropped).
    pub fn next_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        if self.buf.len() < FRAME_HEADER_LEN {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds MAX_FRAME_LEN"),
            ));
        }
        if self.buf.len() < FRAME_HEADER_LEN + len {
            return Ok(None);
        }
        let payload = self.buf[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len].to_vec();
        self.buf.drain(..FRAME_HEADER_LEN + len);
        Ok(Some(payload))
    }

    /// Bytes buffered but not yet consumed as a complete frame.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn framed(payloads: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::new();
        for p in payloads {
            write_frame(&mut out, p).unwrap();
        }
        out
    }

    #[test]
    fn write_then_read_round_trips() {
        let bytes = framed(&[b"hello", b"", b"world"]);
        let mut cursor = std::io::Cursor::new(bytes);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"world");
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    /// Frames reassemble regardless of where the stream splits them —
    /// including one byte at a time.
    #[test]
    fn reader_reassembles_torn_frames() {
        let bytes = framed(&[b"alpha", b"beta-beta", b""]);
        for chunk in [1usize, 2, 3, 7, bytes.len()] {
            let mut reader = FrameReader::new();
            let mut frames = Vec::new();
            for piece in bytes.chunks(chunk) {
                reader.push(piece);
                while let Some(f) = reader.next_frame().unwrap() {
                    frames.push(f);
                }
            }
            assert_eq!(
                frames,
                vec![b"alpha".to_vec(), b"beta-beta".to_vec(), Vec::new()],
                "chunk size {chunk}"
            );
            assert_eq!(reader.pending(), 0);
        }
    }

    /// A partial frame stays pending: no frame is surfaced until the rest
    /// arrives.
    #[test]
    fn partial_frame_stays_buffered() {
        let bytes = framed(&[b"partial-frame"]);
        let mut reader = FrameReader::new();
        reader.push(&bytes[..bytes.len() - 1]);
        assert_eq!(reader.next_frame().unwrap(), None);
        assert!(reader.pending() > 0);
        reader.push(&bytes[bytes.len() - 1..]);
        assert_eq!(reader.next_frame().unwrap().unwrap(), b"partial-frame");
    }

    /// A dropped connection mid-frame is an error, not a silent truncation.
    #[test]
    fn truncated_stream_is_an_error() {
        let bytes = framed(&[b"will-be-cut"]);
        let mut cursor = std::io::Cursor::new(&bytes[..bytes.len() - 3]);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Cut inside the header as well.
        let mut cursor = std::io::Cursor::new(&bytes[..2]);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut bytes = vec![0xffu8, 0xff, 0xff, 0xff];
        bytes.extend_from_slice(b"garbage");
        let mut reader = FrameReader::new();
        reader.push(&bytes);
        assert!(reader.next_frame().is_err());
        let mut cursor = std::io::Cursor::new(bytes);
        assert_eq!(
            read_frame(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }
}
