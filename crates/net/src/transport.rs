//! The transport abstraction behind [`crate::Network`].
//!
//! A transport ships envelopes to operators that are *not* registered in the
//! local process. The in-process plane needs no transport at all — local
//! sends stay zero-copy channel moves — so a transport only sees the traffic
//! that genuinely crosses a process boundary. The TCP implementation lives
//! in [`crate::tcp`]; tests can plug in loopback fakes.

use seep_core::OperatorId;

use crate::message::Envelope;
use crate::network::SendError;

/// Ships envelopes across a process boundary. `addr` is the peer's
/// data-plane listen address (`host:port`), as published in the
/// coordinator's peer table.
pub trait Transport: Send + Sync {
    /// Deliver `envelope` to the process listening at `addr`. Implementations
    /// must encode with [`crate::wire::encode`] (the one wire definition) and
    /// account exactly [`crate::wire::encoded_size`] payload bytes per
    /// envelope, so byte counters agree across transports.
    fn send(&self, addr: &str, envelope: &Envelope) -> Result<(), SendError>;

    /// Per-connection traffic counters, for metrics export.
    fn connections(&self) -> Vec<ConnectionStats>;
}

/// Traffic counters for one transport connection (one direction).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConnectionStats {
    /// Peer address (`host:port`).
    pub peer: String,
    /// `"out"` for dialled connections, `"in"` for accepted ones.
    pub direction: &'static str,
    /// Envelope payload bytes (excluding the 4-byte frame header; framing
    /// overhead is `frames * FRAME_HEADER_LEN`). Matches the in-process
    /// [`crate::TransportStats`] accounting for identical traffic.
    pub bytes: u64,
    /// Complete frames shipped or reassembled.
    pub frames: u64,
    /// Data tuples carried (control frames count zero).
    pub tuples: u64,
    /// Times the connection was re-dialled after a failure.
    pub reconnects: u64,
}

/// Weight used for the tuples counter: data tuples in the envelope.
pub fn envelope_tuple_count(envelope: &Envelope) -> u64 {
    envelope.message.tuple_count() as u64
}

/// Helper for routing tables: a remote operator endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteRoute {
    /// The operator reachable at the address.
    pub operator: OperatorId,
    /// Data-plane address of the hosting process.
    pub addr: String,
}
