//! Network transfer-time model used by the discrete-event simulator.
//!
//! A message of `b` bytes between two VMs takes `rtt/2 + b / bandwidth`
//! (propagation plus serialisation/transmission). The defaults approximate
//! the intra-region EC2 network the paper ran on: sub-millisecond latency and
//! ~1 Gbit/s per small instance.

use serde::{Deserialize, Serialize};

/// Parameters of the network model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Round-trip time between two VMs, in milliseconds.
    pub rtt_ms: f64,
    /// Usable bandwidth per VM network interface, in bytes per millisecond.
    pub bandwidth_bytes_per_ms: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            rtt_ms: 0.5,
            // ~1 Gbit/s ≈ 125 MB/s ≈ 125_000 bytes/ms.
            bandwidth_bytes_per_ms: 125_000.0,
        }
    }
}

impl LatencyModel {
    /// A model with no latency and infinite bandwidth (useful for isolating
    /// compute effects in tests).
    pub fn zero() -> Self {
        LatencyModel {
            rtt_ms: 0.0,
            bandwidth_bytes_per_ms: f64::INFINITY,
        }
    }

    /// Time in milliseconds to transfer a message of `bytes` bytes.
    pub fn transfer_ms(&self, bytes: usize) -> f64 {
        let transmission = if self.bandwidth_bytes_per_ms.is_finite() {
            bytes as f64 / self.bandwidth_bytes_per_ms
        } else {
            0.0
        };
        self.rtt_ms / 2.0 + transmission
    }

    /// Time in milliseconds to transfer a state checkpoint of `bytes` bytes
    /// (same formula; named separately because checkpoints are large and the
    /// recovery-time model calls this out explicitly).
    pub fn state_transfer_ms(&self, bytes: usize) -> f64 {
        self.transfer_ms(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_is_free() {
        let m = LatencyModel::zero();
        assert_eq!(m.transfer_ms(1_000_000), 0.0);
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let m = LatencyModel::default();
        let small = m.transfer_ms(100);
        let large = m.transfer_ms(2_000_000); // 2 MB state checkpoint
        assert!(large > small);
        // 2 MB at 125 kB/ms ≈ 16 ms plus half an RTT.
        assert!((large - (0.25 + 16.0)).abs() < 0.5, "got {large}");
        assert_eq!(m.state_transfer_ms(2_000_000), large);
    }

    #[test]
    fn rtt_floor_applies_to_tiny_messages() {
        let m = LatencyModel::default();
        assert!(m.transfer_ms(1) >= m.rtt_ms / 2.0);
    }
}
