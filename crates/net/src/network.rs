//! Node-granularity connectivity between operator workers.
//!
//! The network keeps one inbound channel per operator instance and lets any
//! other worker (or a coordinator) send envelopes to it. Disconnecting an
//! operator — because its VM failed or was released — closes its channel, so
//! in-flight sends fail the way writes to a dead TCP peer would.
//!
//! Operators hosted in *other* processes are reached through a pluggable
//! [`Transport`]: a remote route maps the operator id to its host's
//! data-plane address, and sends to it fall through to the transport. With
//! no transport installed the network is exactly the in-process plane it
//! always was — local hops never pay for the indirection.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;

use seep_core::{OperatorId, StreamId, Tuple};

use crate::channel::{ChannelSendError, DataChannel, DataReceiver, DataSender};
use crate::message::{ControlMessage, Envelope, Message};
use crate::transport::Transport;

/// Error returned when a send cannot be delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The destination operator is not (or no longer) registered.
    UnknownDestination(OperatorId),
    /// The destination's channel is closed (its worker stopped).
    Disconnected(OperatorId),
    /// The destination's channel is full and the send was non-blocking.
    Backpressure(OperatorId),
}

/// Registry of operator endpoints.
#[derive(Clone, Default)]
pub struct Network {
    senders: Arc<RwLock<HashMap<OperatorId, DataSender>>>,
    /// Operators hosted elsewhere: id → data-plane address of the host.
    remote: Arc<RwLock<HashMap<OperatorId, String>>>,
    /// Ships envelopes to remote hosts; `None` for the pure in-process plane.
    transport: Arc<RwLock<Option<Arc<dyn Transport>>>>,
    capacity: usize,
}

impl Network {
    /// Create a network whose per-operator inbound channels hold up to
    /// `capacity` messages.
    pub fn new(capacity: usize) -> Self {
        Network {
            senders: Arc::new(RwLock::new(HashMap::new())),
            remote: Arc::new(RwLock::new(HashMap::new())),
            transport: Arc::new(RwLock::new(None)),
            capacity: capacity.max(1),
        }
    }

    /// Install the transport used for operators with remote routes.
    pub fn set_transport(&self, transport: Arc<dyn Transport>) {
        *self.transport.write() = Some(transport);
    }

    /// The installed transport, if any.
    pub fn transport(&self) -> Option<Arc<dyn Transport>> {
        self.transport.read().clone()
    }

    /// Route sends for `operator` to the process listening at `addr`.
    /// A local registration always wins over a remote route, so moving an
    /// operator into this process just means registering it.
    pub fn set_remote_route(&self, operator: OperatorId, addr: impl Into<String>) {
        self.remote.write().insert(operator, addr.into());
    }

    /// Drop the remote route for `operator`.
    pub fn clear_remote_route(&self, operator: OperatorId) {
        self.remote.write().remove(&operator);
    }

    /// Remote routes, in operator order.
    pub fn remote_routes(&self) -> Vec<(OperatorId, String)> {
        let mut routes: Vec<(OperatorId, String)> = self
            .remote
            .read()
            .iter()
            .map(|(op, addr)| (*op, addr.clone()))
            .collect();
        routes.sort();
        routes
    }

    /// Attempt delivery through the transport when `to` has a remote route.
    fn send_remote(&self, envelope: &Envelope) -> Option<Result<(), SendError>> {
        let addr = self.remote.read().get(&envelope.to).cloned()?;
        let transport = self.transport.read().clone()?;
        Some(transport.send(&addr, envelope))
    }

    /// Register an operator and return the receiving end of its inbound
    /// channel. Re-registering an operator replaces its channel.
    pub fn register(&self, operator: OperatorId) -> DataReceiver {
        let (tx, rx) = DataChannel::new(self.capacity);
        self.senders.write().insert(operator, tx);
        rx
    }

    /// Remove an operator's endpoint (VM failed or released). Subsequent sends
    /// to it fail with [`SendError::UnknownDestination`].
    pub fn disconnect(&self, operator: OperatorId) {
        self.senders.write().remove(&operator);
    }

    /// Whether an operator currently has an endpoint.
    pub fn is_connected(&self, operator: OperatorId) -> bool {
        self.senders.read().contains_key(&operator)
    }

    /// Registered operators.
    pub fn connected(&self) -> Vec<OperatorId> {
        let mut ops: Vec<OperatorId> = self.senders.read().keys().copied().collect();
        ops.sort();
        ops
    }

    /// Send an envelope, blocking under back-pressure. A local endpoint is
    /// preferred; otherwise the envelope falls through to the transport when
    /// a remote route exists.
    pub fn send(&self, envelope: Envelope) -> Result<(), SendError> {
        let to = envelope.to;
        let sender = {
            let senders = self.senders.read();
            senders.get(&to).cloned()
        };
        let Some(sender) = sender else {
            return match self.send_remote(&envelope) {
                Some(result) => result,
                None => Err(SendError::UnknownDestination(to)),
            };
        };
        sender.send(envelope).map_err(|e| match e {
            ChannelSendError::Disconnected => SendError::Disconnected(to),
            ChannelSendError::Full => SendError::Backpressure(to),
        })
    }

    /// Send without blocking; surfaces back-pressure to the caller. Remote
    /// sends write to the socket directly (the kernel buffer absorbs the
    /// burst; a full buffer blocks briefly rather than erroring).
    pub fn try_send(&self, envelope: Envelope) -> Result<(), SendError> {
        let to = envelope.to;
        let sender = {
            let senders = self.senders.read();
            senders.get(&to).cloned()
        };
        let Some(sender) = sender else {
            return match self.send_remote(&envelope) {
                Some(result) => result,
                None => Err(SendError::UnknownDestination(to)),
            };
        };
        sender.try_send(envelope).map_err(|e| match e {
            ChannelSendError::Disconnected => SendError::Disconnected(to),
            ChannelSendError::Full => SendError::Backpressure(to),
        })
    }

    /// Convenience: send a data tuple from `from` to `to` on `stream`.
    pub fn send_tuple(
        &self,
        from: OperatorId,
        to: OperatorId,
        stream: StreamId,
        tuple: Tuple,
    ) -> Result<(), SendError> {
        self.send(Envelope::new(from, to, Message::data(stream, tuple)))
    }

    /// Convenience: send a control message from a coordinator (addressed from
    /// the target itself, the "from" field is informational for control
    /// traffic).
    pub fn send_control(&self, to: OperatorId, control: ControlMessage) -> Result<(), SendError> {
        self.send(Envelope::new(to, to, Message::Control(control)))
    }
}

/// Blocking receive helper used by worker loops: waits up to `timeout` for the
/// next envelope on `rx`.
pub fn recv_next(rx: &DataReceiver, timeout: Duration) -> Option<Envelope> {
    rx.recv_timeout(timeout).ok().flatten()
}

#[cfg(test)]
mod tests {
    use super::*;
    use seep_core::Key;

    #[test]
    fn register_send_receive() {
        let net = Network::new(16);
        let rx = net.register(OperatorId::new(2));
        assert!(net.is_connected(OperatorId::new(2)));
        net.send_tuple(
            OperatorId::new(1),
            OperatorId::new(2),
            StreamId(0),
            Tuple::new(1, Key(1), vec![1]),
        )
        .unwrap();
        let env = recv_next(&rx, Duration::from_millis(20)).unwrap();
        assert_eq!(env.from, OperatorId::new(1));
        assert!(env.message.is_data());
    }

    #[test]
    fn unknown_destination_errors() {
        let net = Network::new(4);
        let err = net.send_control(OperatorId::new(9), ControlMessage::StopProcessing);
        assert_eq!(err, Err(SendError::UnknownDestination(OperatorId::new(9))));
    }

    #[test]
    fn disconnect_removes_endpoint() {
        let net = Network::new(4);
        let _rx = net.register(OperatorId::new(1));
        assert_eq!(net.connected(), vec![OperatorId::new(1)]);
        net.disconnect(OperatorId::new(1));
        assert!(!net.is_connected(OperatorId::new(1)));
        let err = net.send_control(OperatorId::new(1), ControlMessage::Shutdown);
        assert!(matches!(err, Err(SendError::UnknownDestination(_))));
    }

    #[test]
    fn dropped_receiver_reports_disconnected() {
        let net = Network::new(4);
        let rx = net.register(OperatorId::new(3));
        drop(rx);
        let err = net.send_control(OperatorId::new(3), ControlMessage::Shutdown);
        assert_eq!(err, Err(SendError::Disconnected(OperatorId::new(3))));
    }

    #[test]
    fn try_send_reports_backpressure() {
        let net = Network::new(1);
        let _rx = net.register(OperatorId::new(4));
        let env = Envelope::new(
            OperatorId::new(0),
            OperatorId::new(4),
            Message::Control(ControlMessage::StopProcessing),
        );
        net.try_send(env.clone()).unwrap();
        assert_eq!(
            net.try_send(env),
            Err(SendError::Backpressure(OperatorId::new(4)))
        );
    }

    /// Sends to an operator with a remote route fall through to the
    /// transport; a local registration always shadows the route.
    #[test]
    fn remote_route_falls_through_to_the_transport() {
        use crate::transport::{ConnectionStats, Transport};
        use parking_lot::Mutex;

        #[derive(Default)]
        struct Recording {
            sent: Mutex<Vec<(String, Envelope)>>,
        }
        impl Transport for Recording {
            fn send(&self, addr: &str, envelope: &Envelope) -> Result<(), SendError> {
                self.sent.lock().push((addr.to_string(), envelope.clone()));
                Ok(())
            }
            fn connections(&self) -> Vec<ConnectionStats> {
                Vec::new()
            }
        }

        let net = Network::new(4);
        let remote_op = OperatorId::new(7);
        let transport = Arc::new(Recording::default());
        net.set_transport(transport.clone());

        // No route yet: still an unknown destination.
        assert_eq!(
            net.send_control(remote_op, ControlMessage::StopProcessing),
            Err(SendError::UnknownDestination(remote_op))
        );

        net.set_remote_route(remote_op, "10.0.0.2:7000");
        assert_eq!(
            net.remote_routes(),
            vec![(remote_op, "10.0.0.2:7000".into())]
        );
        net.send_tuple(
            OperatorId::new(1),
            remote_op,
            StreamId(0),
            Tuple::new(1, Key(1), vec![1]),
        )
        .unwrap();
        net.try_send(Envelope::new(
            OperatorId::new(1),
            remote_op,
            Message::Control(ControlMessage::StartProcessing),
        ))
        .unwrap();
        assert_eq!(transport.sent.lock().len(), 2);
        assert_eq!(transport.sent.lock()[0].0, "10.0.0.2:7000");

        // Registering the operator locally shadows the remote route.
        let rx = net.register(remote_op);
        net.send_control(remote_op, ControlMessage::Shutdown)
            .unwrap();
        assert_eq!(rx.queued(), 1);
        assert_eq!(transport.sent.lock().len(), 2, "local endpoint must win");

        net.clear_remote_route(remote_op);
        assert!(net.remote_routes().is_empty());
    }

    #[test]
    fn reregistering_replaces_channel() {
        let net = Network::new(4);
        let old_rx = net.register(OperatorId::new(5));
        let new_rx = net.register(OperatorId::new(5));
        net.send_control(OperatorId::new(5), ControlMessage::StartProcessing)
            .unwrap();
        assert_eq!(old_rx.queued(), 0);
        assert_eq!(new_rx.queued(), 1);
    }
}
