//! Bounded, zero-copy data channels between workers.
//!
//! Channels move [`Envelope`] values directly: tuple payloads are refcounted
//! byte buffers ([`bytes::Bytes`]), so an in-process hop is a pointer move
//! plus a refcount bump — no serialise/deserialise round-trip. The wire
//! encoding a process boundary would pay lives in [`crate::wire`], and the
//! byte counters here report the *exact* encoded size of the traffic
//! ([`crate::wire::encoded_size`]) so the transport stats measure precisely
//! what the TCP transport ships for the same envelopes. Channels are bounded
//! to model the finite socket buffers that give rise to back-pressure.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam_channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};

use crate::message::Envelope;

/// Counters describing the traffic that crossed a channel.
#[derive(Debug, Default)]
pub struct TransportStats {
    messages: AtomicU64,
    bytes: AtomicU64,
}

impl TransportStats {
    /// Messages transferred.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Exact wire bytes transferred: what a process boundary serialises for
    /// this traffic. Local hops do not actually encode, but they account the
    /// same byte count the TCP transport pays ([`crate::wire::encoded_size`]).
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Record one message of `bytes` encoded size.
    pub fn record(&self, bytes: usize) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }
}

/// The sending half of a data channel.
#[derive(Clone)]
pub struct DataSender {
    tx: Sender<Envelope>,
    stats: Arc<TransportStats>,
    queued_tuples: Arc<AtomicU64>,
}

/// The receiving half of a data channel.
pub struct DataReceiver {
    rx: Receiver<Envelope>,
    stats: Arc<TransportStats>,
    queued_tuples: Arc<AtomicU64>,
}

/// In-queue weight of an envelope: data tuples it carries, with control
/// messages still counting as one so `queued() == 0` keeps meaning "empty".
fn envelope_tuples(envelope: &Envelope) -> u64 {
    envelope.message.tuple_count().max(1) as u64
}

/// A bounded channel carrying [`Envelope`]s by value.
pub struct DataChannel;

impl DataChannel {
    /// Create a channel with room for `capacity` in-flight messages.
    #[allow(clippy::new_ret_no_self)] // the channel IS the sender/receiver pair
    pub fn new(capacity: usize) -> (DataSender, DataReceiver) {
        let (tx, rx) = bounded(capacity.max(1));
        let stats = Arc::new(TransportStats::default());
        let queued_tuples = Arc::new(AtomicU64::new(0));
        (
            DataSender {
                tx,
                stats: stats.clone(),
                queued_tuples: queued_tuples.clone(),
            },
            DataReceiver {
                rx,
                stats,
                queued_tuples,
            },
        )
    }
}

/// Error returned by [`DataSender::send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelSendError {
    /// The receiver has been dropped (its VM failed or was released).
    Disconnected,
    /// The channel is full (back-pressure) and the send was non-blocking.
    Full,
}

impl DataSender {
    /// Send an envelope, blocking while the channel is full. Returns an error
    /// only when the receiving side is gone.
    pub fn send(&self, envelope: Envelope) -> Result<(), ChannelSendError> {
        let tuples = envelope_tuples(&envelope);
        let bytes = crate::wire::encoded_size(&envelope);
        self.tx
            .send(envelope)
            .map_err(|_| ChannelSendError::Disconnected)?;
        self.queued_tuples.fetch_add(tuples, Ordering::Relaxed);
        self.stats.record(bytes);
        Ok(())
    }

    /// Try to send without blocking; fails with [`ChannelSendError::Full`]
    /// when the channel is at capacity.
    pub fn try_send(&self, envelope: Envelope) -> Result<(), ChannelSendError> {
        let tuples = envelope_tuples(&envelope);
        let bytes = crate::wire::encoded_size(&envelope);
        match self.tx.try_send(envelope) {
            Ok(()) => {
                self.queued_tuples.fetch_add(tuples, Ordering::Relaxed);
                self.stats.record(bytes);
                Ok(())
            }
            Err(TrySendError::Full(_)) => Err(ChannelSendError::Full),
            Err(TrySendError::Disconnected(_)) => Err(ChannelSendError::Disconnected),
        }
    }

    /// Traffic statistics shared with the receiver.
    pub fn stats(&self) -> &TransportStats {
        &self.stats
    }
}

impl DataReceiver {
    /// Receive the next envelope, waiting up to `timeout`. Returns `Ok(None)`
    /// on timeout and `Err(())` when every sender is gone.
    #[allow(clippy::result_unit_err)] // disconnection carries no detail
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<Envelope>, ()> {
        match self.rx.recv_timeout(timeout) {
            Ok(env) => {
                self.queued_tuples
                    .fetch_sub(envelope_tuples(&env), Ordering::Relaxed);
                Ok(Some(env))
            }
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(()),
        }
    }

    /// Drain everything currently queued without blocking.
    pub fn drain(&self) -> Vec<Envelope> {
        let mut out = Vec::new();
        while let Ok(env) = self.rx.try_recv() {
            self.queued_tuples
                .fetch_sub(envelope_tuples(&env), Ordering::Relaxed);
            out.push(env);
        }
        out
    }

    /// Number of data tuples currently queued (control messages count as
    /// one each, so non-zero always means "something to process").
    pub fn queued(&self) -> usize {
        self.queued_tuples.load(Ordering::Relaxed) as usize
    }

    /// Traffic statistics shared with the sender.
    pub fn stats(&self) -> &TransportStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;
    use seep_core::{Key, OperatorId, StreamId, Tuple};

    fn envelope(ts: u64) -> Envelope {
        Envelope::new(
            OperatorId::new(1),
            OperatorId::new(2),
            Message::data(StreamId(0), Tuple::new(ts, Key(ts), vec![0u8; 16])),
        )
    }

    #[test]
    fn send_receive_roundtrip() {
        let (tx, rx) = DataChannel::new(8);
        tx.send(envelope(1)).unwrap();
        tx.send(envelope(2)).unwrap();
        assert_eq!(rx.queued(), 2);
        let first = rx.recv_timeout(Duration::from_millis(10)).unwrap().unwrap();
        match first.message {
            Message::Data { tuple, .. } => assert_eq!(tuple.ts, 1),
            _ => panic!("expected data"),
        }
        assert_eq!(rx.drain().len(), 1);
        assert_eq!(rx.stats().messages(), 2);
        assert!(rx.stats().bytes() > 32);
    }

    /// A local hop must not copy the tuple payload: the received envelope
    /// shares the sender's payload allocation.
    #[test]
    fn local_hop_shares_the_payload_allocation() {
        let (tx, rx) = DataChannel::new(8);
        let env = envelope(1);
        let payload = match &env.message {
            Message::Data { tuple, .. } => tuple.payload.clone(),
            _ => unreachable!(),
        };
        tx.send(env).unwrap();
        let received = rx.recv_timeout(Duration::from_millis(10)).unwrap().unwrap();
        match received.message {
            Message::Data { tuple, .. } => {
                assert_eq!(
                    tuple.payload.as_ptr(),
                    payload.as_ptr(),
                    "payload must be refcount-shared, not re-encoded"
                );
            }
            _ => panic!("expected data"),
        }
    }

    /// The byte counter records exactly what the wire encoding of the same
    /// traffic would occupy — no estimate slack.
    #[test]
    fn recorded_bytes_equal_the_wire_encoding_exactly() {
        let (tx, rx) = DataChannel::new(8);
        let mut expected = 0u64;
        for ts in [0u64, 7, 200, 70_000] {
            let env = envelope(ts);
            expected += crate::wire::encode(&env).len() as u64;
            tx.send(env).unwrap();
        }
        assert_eq!(rx.stats().bytes(), expected);
    }

    #[test]
    fn queued_counts_tuples_inside_batches() {
        use seep_core::TupleBatch;
        let (tx, rx) = DataChannel::new(8);
        let mut batch = TupleBatch::new();
        for ts in 1..=5u64 {
            batch.push(Tuple::new(ts, Key(ts), vec![0u8; 4]), 0);
        }
        let env = Envelope::new(
            OperatorId::new(1),
            OperatorId::new(2),
            Message::data_batch(StreamId(0), batch),
        );
        tx.send(env).unwrap();
        tx.send(envelope(9)).unwrap();
        assert_eq!(rx.queued(), 6, "5 batched tuples + 1 single");
        rx.recv_timeout(Duration::from_millis(10)).unwrap().unwrap();
        assert_eq!(rx.queued(), 1);
        rx.drain();
        assert_eq!(rx.queued(), 0);
    }

    #[test]
    fn timeout_returns_none() {
        let (_tx, rx) = DataChannel::new(1);
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)).unwrap(), None);
    }

    #[test]
    fn try_send_reports_backpressure() {
        let (tx, rx) = DataChannel::new(1);
        tx.try_send(envelope(1)).unwrap();
        assert_eq!(tx.try_send(envelope(2)), Err(ChannelSendError::Full));
        rx.drain();
        assert!(tx.try_send(envelope(3)).is_ok());
    }

    #[test]
    fn dropped_receiver_disconnects_sender() {
        let (tx, rx) = DataChannel::new(1);
        drop(rx);
        assert_eq!(tx.send(envelope(1)), Err(ChannelSendError::Disconnected));
    }

    #[test]
    fn dropped_sender_disconnects_receiver() {
        let (tx, rx) = DataChannel::new(1);
        drop(tx);
        assert!(rx.recv_timeout(Duration::from_millis(1)).is_err());
    }
}
