//! # seep-net
//!
//! In-memory transport substrate connecting operator workers.
//!
//! The paper's prototype runs each operator on its own VM and ships tuples
//! over TCP; serialisation cost is significant enough that the benchmark's
//! source and sink saturate at ~600 000 tuples/s. This crate reproduces the
//! relevant behaviour for a single-process deployment:
//!
//! * messages crossing a [`channel::DataChannel`] move as values — tuple
//!   payloads are refcounted buffers, so a local hop is zero-copy; the wire
//!   encoding a process boundary would pay lives in [`wire`] and stays
//!   byte-identical to what the serialising channels used to ship,
//! * channels are bounded, providing the back-pressure that output buffers
//!   compensate for,
//! * the [`network::Network`] registry models node-granularity connectivity:
//!   a failed VM's endpoints are disconnected, and sends to them fail exactly
//!   like a broken TCP connection would,
//! * [`latency::LatencyModel`] provides the transfer-time model the
//!   discrete-event simulator uses for the same messages,
//! * the [`transport::Transport`] trait plus [`tcp`] put the same wire
//!   encoding on real sockets: operators with remote routes are reached
//!   through length-prefixed [`frame`]s, so a multi-process deployment
//!   ships byte-for-byte what the in-process counters report.

#![warn(missing_docs)]

pub mod channel;
pub mod frame;
pub mod latency;
pub mod message;
pub mod network;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use channel::{DataChannel, DataReceiver, DataSender, TransportStats};
pub use frame::{read_frame, write_frame, FrameReader, FRAME_HEADER_LEN, MAX_FRAME_LEN};
pub use latency::LatencyModel;
pub use message::{ControlMessage, Envelope, Message};
pub use network::{Network, SendError};
pub use tcp::{TcpIngress, TcpTransport};
pub use transport::{ConnectionStats, RemoteRoute, Transport};
