//! Transport-boundary encoding of envelopes.
//!
//! The in-process channels move [`Envelope`] values directly: tuple payloads
//! are refcounted byte buffers, so a local hop is a pointer move plus a
//! refcount bump instead of a serialise/deserialise round-trip. Serialisation
//! has not disappeared — a process boundary still pays it — it has moved
//! here, behind the transport boundary, so a future TCP transport encodes
//! with exactly the bytes every hop used to produce and the encoding stays
//! one testable definition instead of a side effect of every channel send.

use crate::message::Envelope;

/// Encode an envelope exactly as it would cross a process boundary — the
/// same bincode bytes every in-process hop paid for before the zero-copy
/// channels.
pub fn encode(envelope: &Envelope) -> Vec<u8> {
    bincode::serialize(envelope).expect("envelope serialises")
}

/// Decode an envelope received from a remote transport.
pub fn decode(bytes: &[u8]) -> Result<Envelope, bincode::Error> {
    bincode::deserialize(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{ControlMessage, Message};
    use seep_core::{Key, OperatorId, StreamId, Tuple, TupleBatch};

    fn envelopes() -> Vec<Envelope> {
        let mut batch = TupleBatch::new();
        batch.push(Tuple::new(5, Key(1), vec![1, 2, 3]), 100);
        batch.push(Tuple::new(6, Key(2), vec![4]), 0);
        vec![
            Envelope::new(
                OperatorId::new(1),
                OperatorId::new(2),
                Message::data(StreamId(0), Tuple::new(3, Key(9), vec![7, 8])),
            )
            .with_emit_time(42),
            Envelope::new(
                OperatorId::new(3),
                OperatorId::new(4),
                Message::data_batch(StreamId(1), batch),
            ),
            Envelope::new(
                OperatorId::new(5),
                OperatorId::new(5),
                Message::Control(ControlMessage::StopProcessing),
            ),
        ]
    }

    /// The transport-boundary encoding is byte-identical to what the
    /// serialising channels used to put on the wire (a direct
    /// `bincode::serialize` of the envelope), for every message kind.
    #[test]
    fn encoding_is_byte_identical_to_the_serialising_channel() {
        for envelope in envelopes() {
            let wire = encode(&envelope);
            let legacy = bincode::serialize(&envelope).unwrap();
            assert_eq!(wire, legacy, "encoding drifted for {envelope:?}");
            assert_eq!(wire.len(), envelope.wire_size());
        }
    }

    #[test]
    fn round_trip_preserves_every_field() {
        for envelope in envelopes() {
            let back = decode(&encode(&envelope)).expect("decodes");
            assert_eq!(back, envelope);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(&[0xff; 3]).is_err());
    }
}
