//! Transport-boundary encoding of envelopes.
//!
//! The in-process channels move [`Envelope`] values directly: tuple payloads
//! are refcounted byte buffers, so a local hop is a pointer move plus a
//! refcount bump instead of a serialise/deserialise round-trip. Serialisation
//! has not disappeared — a process boundary still pays it — it has moved
//! here, behind the transport boundary, so a future TCP transport encodes
//! with exactly the bytes every hop used to produce and the encoding stays
//! one testable definition instead of a side effect of every channel send.

use seep_core::{Tuple, TupleBatch};

use crate::message::{Envelope, Message};

/// Encode an envelope exactly as it would cross a process boundary — the
/// same bincode bytes every in-process hop paid for before the zero-copy
/// channels.
pub fn encode(envelope: &Envelope) -> Vec<u8> {
    bincode::serialize(envelope).expect("envelope serialises")
}

/// Decode an envelope received from a remote transport.
pub fn decode(bytes: &[u8]) -> Result<Envelope, bincode::Error> {
    bincode::deserialize(bytes)
}

/// LEB128 length of a varint-encoded integer.
fn varint_len(mut v: u64) -> usize {
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

/// Encoded size of a bare `u64` value: tag byte plus varint.
fn u64_size(v: u64) -> usize {
    1 + varint_len(v)
}

/// Encoded size of a single-field newtype over an integer (`OperatorId`,
/// `Key`, `StreamId`): a one-element sequence wrapping the integer.
fn newtype_u64_size(v: u64) -> usize {
    // seq tag + element count (1) + tagged varint.
    2 + u64_size(v)
}

/// Encoded size of a record field name (names here are short ASCII, so the
/// length prefix is a single varint byte).
fn field(name: &str) -> usize {
    1 + name.len()
}

/// Encoded size of a sequence header for `count` elements.
fn seq_header(count: usize) -> usize {
    1 + varint_len(count as u64)
}

/// Encoded size of a tuple: a three-field record (`ts`, `key`, `payload`)
/// with the payload written as raw bytes.
fn tuple_size(tuple: &Tuple) -> usize {
    2 + field("ts")
        + u64_size(tuple.ts)
        + field("key")
        + newtype_u64_size(tuple.key.0)
        + field("payload")
        + 1
        + varint_len(tuple.payload.len() as u64)
        + tuple.payload.len()
}

/// Encoded size of a tuple batch: a two-field record of parallel sequences.
fn batch_size(batch: &TupleBatch) -> usize {
    2 + field("tuples")
        + seq_header(batch.tuples.len())
        + batch.tuples.iter().map(tuple_size).sum::<usize>()
        + field("emitted_at_us")
        + seq_header(batch.emitted_at_us.len())
        + batch
            .emitted_at_us
            .iter()
            .map(|&us| u64_size(us))
            .sum::<usize>()
}

/// Exact size in bytes of [`encode`]'s output, computed arithmetically —
/// no allocation, no serialisation walk — so every data-plane hop can
/// account its true wire bytes. Data messages (the hot path) are costed by
/// mirroring the encoder's layout field by field; the rare control messages
/// fall back to a real `serialized_size` walk rather than mirroring the
/// whole routing-state encoding here.
pub fn encoded_size(envelope: &Envelope) -> usize {
    let message = match &envelope.message {
        // variant tag + name + two-field record body.
        Message::Data { stream, tuple } => {
            2 + "Data".len()
                + 2
                + field("stream")
                + newtype_u64_size(u64::from(stream.0))
                + field("tuple")
                + tuple_size(tuple)
        }
        Message::DataBatch { stream, batch } => {
            2 + "DataBatch".len()
                + 2
                + field("stream")
                + newtype_u64_size(u64::from(stream.0))
                + field("batch")
                + batch_size(batch)
        }
        Message::Control(_) => return bincode::serialized_size(envelope).unwrap_or(0) as usize,
    };
    // envelope record: four named fields.
    2 + field("from")
        + newtype_u64_size(envelope.from.0)
        + field("to")
        + newtype_u64_size(envelope.to.0)
        + field("message")
        + message
        + field("emitted_at_us")
        + u64_size(envelope.emitted_at_us)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{ControlMessage, Message};
    use seep_core::{Key, OperatorId, StreamId, Tuple, TupleBatch};

    fn envelopes() -> Vec<Envelope> {
        let mut batch = TupleBatch::new();
        batch.push(Tuple::new(5, Key(1), vec![1, 2, 3]), 100);
        batch.push(Tuple::new(6, Key(2), vec![4]), 0);
        vec![
            Envelope::new(
                OperatorId::new(1),
                OperatorId::new(2),
                Message::data(StreamId(0), Tuple::new(3, Key(9), vec![7, 8])),
            )
            .with_emit_time(42),
            Envelope::new(
                OperatorId::new(3),
                OperatorId::new(4),
                Message::data_batch(StreamId(1), batch),
            ),
            Envelope::new(
                OperatorId::new(5),
                OperatorId::new(5),
                Message::Control(ControlMessage::StopProcessing),
            ),
        ]
    }

    /// The transport-boundary encoding is byte-identical to what the
    /// serialising channels used to put on the wire (a direct
    /// `bincode::serialize` of the envelope), for every message kind.
    #[test]
    fn encoding_is_byte_identical_to_the_serialising_channel() {
        for envelope in envelopes() {
            let wire = encode(&envelope);
            let legacy = bincode::serialize(&envelope).unwrap();
            assert_eq!(wire, legacy, "encoding drifted for {envelope:?}");
            assert_eq!(wire.len(), envelope.wire_size());
        }
    }

    #[test]
    fn round_trip_preserves_every_field() {
        for envelope in envelopes() {
            let back = decode(&encode(&envelope)).expect("decodes");
            assert_eq!(back, envelope);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(&[0xff; 3]).is_err());
    }

    /// The arithmetic size mirror matches the encoder byte for byte across
    /// every message kind and across varint length boundaries.
    #[test]
    fn encoded_size_is_exact() {
        // Values straddling every LEB128 length boundary.
        let edges = [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX];
        let mut corpus = envelopes();
        for &v in &edges {
            corpus.push(
                Envelope::new(
                    OperatorId::new(v),
                    OperatorId::new(v.wrapping_add(1)),
                    Message::data(
                        StreamId(v as u32),
                        Tuple::new(v, Key(v), vec![0u8; (v % 300) as usize]),
                    ),
                )
                .with_emit_time(v),
            );
            let mut batch = TupleBatch::new();
            for i in 0..(v % 5) + 1 {
                batch.push(Tuple::new(v, Key(v ^ i), vec![1u8; 130]), v);
            }
            corpus.push(Envelope::new(
                OperatorId::new(2),
                OperatorId::new(v),
                Message::data_batch(StreamId(7), batch),
            ));
        }
        // An empty batch exercises the zero-length sequence headers.
        corpus.push(Envelope::new(
            OperatorId::new(1),
            OperatorId::new(2),
            Message::data_batch(StreamId(0), TupleBatch::new()),
        ));
        for envelope in corpus {
            assert_eq!(
                encoded_size(&envelope),
                encode(&envelope).len(),
                "size mirror drifted for {envelope:?}"
            );
        }
    }
}
