//! Messages exchanged between operator workers.
//!
//! Two kinds of traffic cross the network: **data** (stream tuples, including
//! replayed tuples after a restore) and **control** (the runtime stopping,
//! starting or re-configuring operators during scale out — Algorithm 3 stops
//! upstream operators, repartitions their routing and buffer state, then
//! restarts them).

use serde::{Deserialize, Serialize};

use seep_core::{OperatorId, RoutingState, StreamId, Timestamp, Tuple, TupleBatch};

/// Control messages used by the scale-out / recovery coordinators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ControlMessage {
    /// Pause tuple processing (Algorithm 3, line 10).
    StopProcessing,
    /// Resume tuple processing (Algorithm 3, line 14).
    StartProcessing,
    /// Replace the routing state towards a logical downstream operator.
    UpdateRouting {
        /// The logical downstream operator whose partitioning changed.
        logical_downstream: u32,
        /// The new routing state.
        routing: RoutingState,
    },
    /// Trim the output buffer towards `downstream` up to `ts` (issued after a
    /// downstream checkpoint was backed up — Algorithm 1, line 4).
    TrimBuffer {
        /// The downstream operator whose tuples may be discarded.
        downstream: OperatorId,
        /// Discard tuples with timestamps `<= ts`.
        ts: Timestamp,
    },
    /// Replay the output buffer towards `downstream` (Algorithm 1, line 10).
    ReplayBuffer {
        /// The operator to replay to.
        downstream: OperatorId,
    },
    /// Orderly shutdown of the worker.
    Shutdown,
}

/// A message on the wire: either a data tuple on a stream or a control message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// A stream tuple.
    Data {
        /// The stream the tuple belongs to (identified by the logical
        /// producer operator).
        stream: StreamId,
        /// The tuple itself.
        tuple: Tuple,
    },
    /// A control message from a coordinator.
    Control(ControlMessage),
    /// A run of consecutive stream tuples from one producer, sent in one
    /// envelope on the batched data plane. Appended after `Control` so the
    /// wire encoding of the seed's two variants is unchanged.
    DataBatch {
        /// The stream the tuples belong to (identified by the logical
        /// producer operator).
        stream: StreamId,
        /// The tuples with their per-tuple source emit times.
        batch: TupleBatch,
    },
}

impl Message {
    /// Convenience constructor for data messages.
    pub fn data(stream: StreamId, tuple: Tuple) -> Self {
        Message::Data { stream, tuple }
    }

    /// Convenience constructor for batched data messages.
    pub fn data_batch(stream: StreamId, batch: TupleBatch) -> Self {
        Message::DataBatch { stream, batch }
    }

    /// Whether this carries data tuples (single or batched).
    pub fn is_data(&self) -> bool {
        matches!(self, Message::Data { .. } | Message::DataBatch { .. })
    }

    /// Number of data tuples this message carries.
    pub fn tuple_count(&self) -> usize {
        match self {
            Message::Data { .. } => 1,
            Message::DataBatch { batch, .. } => batch.len(),
            Message::Control(_) => 0,
        }
    }
}

/// An addressed message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    /// Sending operator.
    pub from: OperatorId,
    /// Receiving operator.
    pub to: OperatorId,
    /// The payload.
    pub message: Message,
    /// Wall-clock time (µs since an arbitrary epoch) at which the *source*
    /// tuple this message descends from was emitted. Operators propagate it
    /// from input to output so sinks can measure end-to-end processing
    /// latency, the metric reported throughout §6. Zero when unknown (e.g.
    /// control messages or window-triggered emissions).
    #[serde(default)]
    pub emitted_at_us: u64,
}

impl Envelope {
    /// Wrap a message with its addressing information.
    pub fn new(from: OperatorId, to: OperatorId, message: Message) -> Self {
        Envelope {
            from,
            to,
            message,
            emitted_at_us: 0,
        }
    }

    /// Attach the source emit time used for end-to-end latency measurement.
    pub fn with_emit_time(mut self, emitted_at_us: u64) -> Self {
        self.emitted_at_us = emitted_at_us;
        self
    }

    /// Serialised size of the envelope in bytes (what would cross the wire).
    pub fn wire_size(&self) -> usize {
        bincode::serialized_size(self).unwrap_or(0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seep_core::Key;

    #[test]
    fn data_message_roundtrip() {
        let msg = Message::data(StreamId(1), Tuple::new(3, Key(9), vec![1, 2, 3]));
        assert!(msg.is_data());
        let env = Envelope::new(OperatorId::new(1), OperatorId::new(2), msg.clone());
        let bytes = bincode::serialize(&env).unwrap();
        let back: Envelope = bincode::deserialize(&bytes).unwrap();
        assert_eq!(back.message, msg);
        assert_eq!(back.from, OperatorId::new(1));
        assert!(env.wire_size() > 3);
    }

    #[test]
    fn data_batch_roundtrip_and_counts() {
        let mut batch = TupleBatch::new();
        batch.push(Tuple::new(5, Key(1), vec![1]), 100);
        batch.push(Tuple::new(6, Key(2), vec![2]), 0);
        let msg = Message::data_batch(StreamId(3), batch);
        assert!(msg.is_data());
        assert_eq!(msg.tuple_count(), 2);
        let bytes = bincode::serialize(&msg).unwrap();
        let back: Message = bincode::deserialize(&bytes).unwrap();
        assert_eq!(back, msg);
        // The seed variants' wire encodings are unchanged by the new variant.
        let single = Message::data(StreamId(1), Tuple::new(3, Key(9), vec![1, 2, 3]));
        assert_eq!(single.tuple_count(), 1);
        assert_eq!(Message::Control(ControlMessage::Shutdown).tuple_count(), 0);
    }

    #[test]
    fn control_messages_roundtrip() {
        let msgs = vec![
            ControlMessage::StopProcessing,
            ControlMessage::StartProcessing,
            ControlMessage::TrimBuffer {
                downstream: OperatorId::new(5),
                ts: 99,
            },
            ControlMessage::ReplayBuffer {
                downstream: OperatorId::new(5),
            },
            ControlMessage::UpdateRouting {
                logical_downstream: 2,
                routing: RoutingState::single(OperatorId::new(7)),
            },
            ControlMessage::Shutdown,
        ];
        for m in msgs {
            let wrapped = Message::Control(m.clone());
            assert!(!wrapped.is_data());
            let bytes = bincode::serialize(&wrapped).unwrap();
            let back: Message = bincode::deserialize(&bytes).unwrap();
            assert_eq!(back, wrapped);
        }
    }
}
