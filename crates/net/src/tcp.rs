//! TCP transport: length-prefixed [`crate::wire`] frames over sockets.
//!
//! [`TcpTransport`] is the dialling side — one connection per peer address,
//! re-dialled once on failure so a restarted peer picks up where it left
//! off. [`TcpIngress`] is the accepting side: a non-blocking listener whose
//! `poll` drains readable bytes, reassembles frames ([`crate::frame`]) and
//! decodes envelopes for local delivery. Both sides account the exact
//! envelope payload bytes ([`crate::wire::encoded_size`]) so transport
//! stats agree byte-for-byte with the in-process channel plane for the same
//! traffic.

use std::collections::HashMap;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::frame::{write_frame, FrameReader};
use crate::message::Envelope;
use crate::network::SendError;
use crate::transport::{envelope_tuple_count, ConnectionStats, Transport};
use crate::wire;

/// Shared counters for one peer connection.
#[derive(Debug, Default)]
struct PeerCounters {
    bytes: AtomicU64,
    frames: AtomicU64,
    tuples: AtomicU64,
    reconnects: AtomicU64,
}

impl PeerCounters {
    fn record(&self, bytes: usize, tuples: u64) {
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        self.frames.fetch_add(1, Ordering::Relaxed);
        self.tuples.fetch_add(tuples, Ordering::Relaxed);
    }

    fn snapshot(&self, peer: &str, direction: &'static str) -> ConnectionStats {
        ConnectionStats {
            peer: peer.to_string(),
            direction,
            bytes: self.bytes.load(Ordering::Relaxed),
            frames: self.frames.load(Ordering::Relaxed),
            tuples: self.tuples.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
        }
    }
}

struct Outbound {
    stream: Option<TcpStream>,
    counters: Arc<PeerCounters>,
}

/// The dialling half of the TCP transport: one outbound connection per peer
/// data address, connected on first use and re-dialled once per send on
/// failure.
#[derive(Default)]
pub struct TcpTransport {
    peers: Mutex<HashMap<String, Outbound>>,
}

impl TcpTransport {
    /// A transport with no connections yet; peers are dialled on first send.
    pub fn new() -> Self {
        TcpTransport::default()
    }

    fn write_to_peer(out: &mut Outbound, addr: &str, payload: &[u8]) -> io::Result<()> {
        if out.stream.is_none() {
            out.stream = Some(TcpStream::connect(addr)?);
        }
        let stream = out.stream.as_mut().expect("connected above");
        match write_frame(stream, payload) {
            Ok(()) => Ok(()),
            Err(e) => {
                // Drop the broken connection and re-dial once: a worker that
                // restarted (or a socket torn mid-frame) gets one fresh
                // attempt before the send is declared failed.
                out.stream = None;
                out.counters.reconnects.fetch_add(1, Ordering::Relaxed);
                let mut fresh = TcpStream::connect(addr).map_err(|_| e)?;
                write_frame(&mut fresh, payload)?;
                out.stream = Some(fresh);
                Ok(())
            }
        }
    }
}

impl Transport for TcpTransport {
    fn send(&self, addr: &str, envelope: &Envelope) -> Result<(), SendError> {
        let payload = wire::encode(envelope);
        let mut peers = self.peers.lock();
        let out = peers.entry(addr.to_string()).or_insert_with(|| Outbound {
            stream: None,
            counters: Arc::new(PeerCounters::default()),
        });
        match Self::write_to_peer(out, addr, &payload) {
            Ok(()) => {
                out.counters
                    .record(payload.len(), envelope_tuple_count(envelope));
                Ok(())
            }
            Err(_) => {
                out.stream = None;
                Err(SendError::Disconnected(envelope.to))
            }
        }
    }

    fn connections(&self) -> Vec<ConnectionStats> {
        let peers = self.peers.lock();
        let mut out: Vec<ConnectionStats> = peers
            .iter()
            .map(|(addr, o)| o.counters.snapshot(addr, "out"))
            .collect();
        out.sort_by(|a, b| a.peer.cmp(&b.peer));
        out
    }
}

struct IngressConn {
    stream: TcpStream,
    reader: FrameReader,
    counters: Arc<PeerCounters>,
}

/// The accepting half of the TCP transport: a non-blocking listener plus
/// per-connection frame reassembly. Single-threaded by design — the worker
/// daemon polls it from its event loop.
pub struct TcpIngress {
    listener: TcpListener,
    local: SocketAddr,
    conns: Vec<IngressConn>,
    /// Counters outlive their connection so a dropped peer's traffic stays
    /// visible in metrics.
    stats: Vec<(String, Arc<PeerCounters>)>,
}

impl TcpIngress {
    /// Bind a non-blocking data-plane listener. Use port 0 to let the OS
    /// pick, then read [`TcpIngress::local_addr`].
    pub fn bind(addr: &str) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        Ok(TcpIngress {
            listener,
            local,
            conns: Vec::new(),
            stats: Vec::new(),
        })
    }

    /// The bound listen address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Accept pending connections, drain readable bytes, and hand each
    /// complete decoded envelope to `deliver`. Returns the number of
    /// envelopes delivered. Broken or desynchronised connections are
    /// dropped (their counters survive in [`TcpIngress::connections`]).
    pub fn poll(&mut self, deliver: &mut dyn FnMut(Envelope)) -> usize {
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let counters = Arc::new(PeerCounters::default());
                    let peer = peer.to_string();
                    self.stats.push((peer, counters.clone()));
                    self.conns.push(IngressConn {
                        stream,
                        reader: FrameReader::new(),
                        counters,
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        let mut delivered = 0;
        let mut buf = [0u8; 64 * 1024];
        self.conns.retain_mut(|conn| {
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => return false, // clean EOF: peer is gone
                    Ok(n) => conn.reader.push(&buf[..n]),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => return false,
                }
            }
            loop {
                match conn.reader.next_frame() {
                    Ok(Some(frame)) => match wire::decode(&frame) {
                        Ok(envelope) => {
                            conn.counters
                                .record(frame.len(), envelope_tuple_count(&envelope));
                            delivered += 1;
                            deliver(envelope);
                        }
                        // A frame that is not an envelope means the stream
                        // is desynchronised or the peer speaks a different
                        // protocol: drop the connection.
                        Err(_) => return false,
                    },
                    Ok(None) => break,
                    Err(_) => return false,
                }
            }
            true
        });
        delivered
    }

    /// Number of live inbound connections.
    pub fn connection_count(&self) -> usize {
        self.conns.len()
    }

    /// Per-connection counters, including connections that have closed.
    pub fn connections(&self) -> Vec<ConnectionStats> {
        self.stats
            .iter()
            .map(|(peer, c)| c.snapshot(peer, "in"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;
    use seep_core::{Key, OperatorId, StreamId, Tuple, TupleBatch};
    use std::time::{Duration, Instant};

    fn data_envelope(ts: u64) -> Envelope {
        Envelope::new(
            OperatorId::new(1),
            OperatorId::new(2),
            Message::data(StreamId(0), Tuple::new(ts, Key(ts), vec![7u8; 32])),
        )
    }

    fn batch_envelope() -> Envelope {
        let mut batch = TupleBatch::new();
        for ts in 0..10u64 {
            batch.push(Tuple::new(ts, Key(ts), vec![1u8; 150]), ts);
        }
        Envelope::new(
            OperatorId::new(3),
            OperatorId::new(4),
            Message::data_batch(StreamId(1), batch),
        )
    }

    fn poll_until(
        ingress: &mut TcpIngress,
        out: &mut Vec<Envelope>,
        want: usize,
    ) -> Result<(), String> {
        let deadline = Instant::now() + Duration::from_secs(5);
        while out.len() < want {
            ingress.poll(&mut |env| out.push(env));
            if Instant::now() > deadline {
                return Err(format!("timed out with {} of {want} envelopes", out.len()));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        Ok(())
    }

    #[test]
    fn envelopes_cross_a_real_socket() {
        let mut ingress = TcpIngress::bind("127.0.0.1:0").unwrap();
        let addr = ingress.local_addr().to_string();
        let transport = TcpTransport::new();
        let sent = vec![data_envelope(1), batch_envelope(), data_envelope(2)];
        for env in &sent {
            transport.send(&addr, env).unwrap();
        }
        let mut got = Vec::new();
        poll_until(&mut ingress, &mut got, sent.len()).unwrap();
        assert_eq!(got, sent);
        assert_eq!(ingress.connection_count(), 1);
    }

    /// Both directions account exactly the envelope encoding — and the
    /// same bytes the in-process channel records for identical traffic.
    #[test]
    fn byte_accounting_matches_the_channel_plane() {
        let mut ingress = TcpIngress::bind("127.0.0.1:0").unwrap();
        let addr = ingress.local_addr().to_string();
        let transport = TcpTransport::new();
        let traffic = vec![data_envelope(1), batch_envelope(), data_envelope(200)];

        let (channel_tx, channel_rx) = crate::DataChannel::new(64);
        for env in &traffic {
            transport.send(&addr, env).unwrap();
            channel_tx.send(env.clone()).unwrap();
        }
        let mut got = Vec::new();
        poll_until(&mut ingress, &mut got, traffic.len()).unwrap();

        let exact: u64 = traffic.iter().map(|e| wire::encode(e).len() as u64).sum();
        let out = transport.connections();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].bytes, exact, "TCP egress bytes");
        assert_eq!(out[0].frames, traffic.len() as u64);
        let inb = ingress.connections();
        assert_eq!(inb.len(), 1);
        assert_eq!(inb[0].bytes, exact, "TCP ingress bytes");
        assert_eq!(
            channel_rx.stats().bytes(),
            exact,
            "in-process channel bytes must equal TCP bytes for the same traffic"
        );
        assert_eq!(out[0].tuples, 12, "2 singles + 10 batched");
    }

    /// Killing the ingress connection mid-stream: the next send re-dials
    /// once (counted as a reconnect) and traffic resumes.
    #[test]
    fn sender_reconnects_after_connection_drop() {
        let mut ingress = TcpIngress::bind("127.0.0.1:0").unwrap();
        let addr = ingress.local_addr().to_string();
        let transport = TcpTransport::new();
        transport.send(&addr, &data_envelope(1)).unwrap();
        let mut got = Vec::new();
        poll_until(&mut ingress, &mut got, 1).unwrap();

        // Tear down the accepted connection under the sender.
        ingress.conns.clear();
        // The sender may need a few sends before the kernel surfaces the
        // reset; each failure re-dials.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut delivered_after_drop = 0;
        let mut ts = 2u64;
        while delivered_after_drop == 0 && Instant::now() < deadline {
            let _ = transport.send(&addr, &data_envelope(ts));
            ts += 1;
            delivered_after_drop = ingress.poll(&mut |env| got.push(env));
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(delivered_after_drop > 0, "traffic never resumed");
        let stats = &transport.connections()[0];
        assert!(stats.reconnects >= 1, "reconnect was not counted");
    }

    /// A peer that writes garbage (not a wire envelope) is dropped without
    /// poisoning other connections.
    #[test]
    fn garbage_frame_drops_only_that_connection() {
        use std::io::Write;
        let mut ingress = TcpIngress::bind("127.0.0.1:0").unwrap();
        let addr = ingress.local_addr().to_string();
        let transport = TcpTransport::new();
        transport.send(&addr, &data_envelope(1)).unwrap();
        let mut garbage = TcpStream::connect(&addr).unwrap();
        write_frame(&mut garbage, b"not an envelope").unwrap();
        garbage.flush().unwrap();
        let mut got = Vec::new();
        poll_until(&mut ingress, &mut got, 1).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while ingress.connection_count() > 1 && Instant::now() < deadline {
            ingress.poll(&mut |env| got.push(env));
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(ingress.connection_count(), 1, "garbage peer not dropped");
        transport.send(&addr, &data_envelope(2)).unwrap();
        poll_until(&mut ingress, &mut got, 2).unwrap();
        assert_eq!(got.len(), 2);
    }
}
