//! Integration tests for the typed `Job` builder API: construction-time
//! validation (cycles, dead-end sinks, duplicate names, dangling
//! `branch`/`connect` targets), the low-level deploy guards it sits on, and
//! a round-trip proving a `Job`-built deployment behaves identically to the
//! hand-built `QueryGraph` + factory-map path.

use std::collections::HashMap;
use std::sync::Arc;

use seep_core::operator::OperatorFactory;
use seep_core::{Error, Key, LogicalOpId, QueryGraph, StatelessFn, Tuple};
use seep_operators::word_count::WordFrequency;
use seep_operators::{WindowedWordCount, WordSplitter};
use seep_runtime::api::{discard, passthrough, Job, SinkCollector};
use seep_runtime::{Runtime, RuntimeConfig};

fn invalid_graph(err: Error) -> String {
    match err {
        Error::InvalidGraph(msg) => msg,
        other => panic!("expected InvalidGraph, got {other:?}"),
    }
}

#[test]
fn builder_rejects_cycles() {
    let err = Job::builder(RuntimeConfig::default())
        .source("src", passthrough("src"))
        .then_stateful("a", passthrough("a"))
        .then_stateful("b", passthrough("b"))
        .connect("b", "a") // back edge: a -> b -> a
        .sink("sink", discard("sink"))
        .build()
        .unwrap_err();
    assert!(invalid_graph(err).contains("cycle"));
}

#[test]
fn builder_rejects_sink_with_no_inbound_stream() {
    // `sink()` always chains from the cursor, so an orphaned sink can only
    // be declared through the explicit `add_sink` + `connect` path — and a
    // forgotten `connect` must fail loudly at build time.
    let err = Job::builder(RuntimeConfig::default())
        .source("src", passthrough("src"))
        .sink("connected", discard("connected"))
        .add_sink("orphan", discard("orphan"))
        .build()
        .map(|_| ())
        .unwrap_err();
    assert!(invalid_graph(err).contains("no inbound stream"));

    // With the connect in place the same shape is valid.
    let job = Job::builder(RuntimeConfig::default())
        .source("src", passthrough("src"))
        .sink("connected", discard("connected"))
        .add_sink("fan_in", discard("fan_in"))
        .connect("src", "fan_in")
        .build()
        .expect("explicitly connected sink is valid");
    assert_eq!(job.query().sinks().len(), 2);
}

#[test]
fn builder_rejects_dead_end_operator_with_no_outbound_stream() {
    let err = Job::builder(RuntimeConfig::default())
        .source("src", passthrough("src"))
        .sink("sink", discard("sink"))
        .branch("src")
        .then_stateful("dangling", passthrough("dangling"))
        .build()
        .unwrap_err();
    assert!(invalid_graph(err).contains("no outbound stream"));
}

#[test]
fn builder_rejects_duplicate_operator_names() {
    let err = Job::builder(RuntimeConfig::default())
        .source("feed", passthrough("feed"))
        .then_stateful("count", passthrough("count"))
        .then_stateful("count", passthrough("count"))
        .sink("sink", discard("sink"))
        .build()
        .unwrap_err();
    assert!(invalid_graph(err).contains("duplicate operator name"));
}

#[test]
fn builder_rejects_unknown_branch_and_connect_targets() {
    let err = Job::builder(RuntimeConfig::default())
        .source("src", passthrough("src"))
        .branch("nope")
        .sink("sink", discard("sink"))
        .build()
        .unwrap_err();
    assert!(invalid_graph(err).contains("branch target"));

    let err = Job::builder(RuntimeConfig::default())
        .source("src", passthrough("src"))
        .sink("sink", discard("sink"))
        .connect("src", "typo")
        .build()
        .unwrap_err();
    assert!(invalid_graph(err).contains("connect target"));
}

#[test]
fn builder_rejects_chaining_without_a_source() {
    let err = Job::builder(RuntimeConfig::default())
        .then_stateful("count", passthrough("count"))
        .build()
        .unwrap_err();
    assert!(invalid_graph(err).contains("nothing to chain from"));
}

#[test]
fn deploying_twice_on_one_runtime_is_rejected() {
    let (config, query, factories) = word_count_job().into_parts();
    let mut runtime = Runtime::new(config);
    runtime.deploy(query.clone(), factories.clone()).unwrap();
    let err = runtime.deploy(query, factories).unwrap_err();
    assert_eq!(err, Error::AlreadyDeployed);
}

#[test]
fn low_level_deploy_rejects_factory_for_unknown_operator() {
    let (config, query, mut factories) = word_count_job().into_parts();
    factories.insert(
        LogicalOpId(4040),
        seep_runtime::api::passthrough("typo"), // keyed by an id the query lacks
    );
    let mut runtime = Runtime::new(config);
    let err = runtime.deploy(query, factories).unwrap_err();
    assert!(invalid_graph(err).contains("lop4040"));
}

/// The word-count query as a `Job` (builder path).
fn word_count_job() -> Job {
    Job::builder(RuntimeConfig::default())
        .source("data_feeder", passthrough("feeder"))
        .then_stateless("word_splitter", WordSplitter::new)
        .then_stateful("word_counter", || WindowedWordCount::new(30_000))
        .sink("sink", discard("collector"))
        .build()
        .expect("valid word-count job")
}

/// Drive a deployed word-count runtime through a fixed script and return the
/// per-word counts.
fn run_script(runtime: &mut Runtime, src: LogicalOpId, count: LogicalOpId) -> Vec<(String, u64)> {
    let sentences = [
        "alpha beta gamma",
        "beta gamma",
        "gamma gamma delta",
        "epsilon alpha",
    ];
    for (i, sentence) in sentences.iter().enumerate() {
        let payload = bincode::serialize(&sentence.to_string()).unwrap();
        runtime.inject(src, Key::from_str_key(sentence), payload);
        runtime.drain();
        // Cross checkpoint boundaries mid-script (the interval is 5 s) while
        // staying inside the 30 s window, so the counter state read below
        // still holds the accumulated counts.
        runtime.advance_to((i as u64 + 1) * 5_000);
    }

    let mut counts: Vec<(String, u64)> = Vec::new();
    for word in ["alpha", "beta", "gamma", "delta", "epsilon"] {
        let total: u64 = runtime
            .partitions(count)
            .iter()
            .filter_map(|id| {
                runtime.with_operator(*id, |op| {
                    op.get_processing_state()
                        .get_decoded::<seep_operators::word_count::WordEntry>(Key::from_str_key(
                            word,
                        ))
                        .ok()
                        .flatten()
                        .map(|e| e.count)
                })
            })
            .flatten()
            .sum();
        counts.push((word.to_string(), total));
    }

    // Close the 30 s window so the frequencies are delivered to the sink.
    runtime.advance_to(40_000);
    runtime.drain();
    counts
}

/// Round trip: the `Job`-built deployment must produce counts identical to
/// the hand-built `QueryGraph` + factory-map path on the same word-count
/// script — the new facade is sugar over the low-level layer, not a fork of
/// its semantics.
#[test]
fn job_built_deployment_matches_hand_built_path() {
    // Path A: hand-built QueryGraph + factory map + Runtime::deploy, exactly
    // the boilerplate the examples used to carry.
    let mut b = QueryGraph::builder();
    let src = b.source("data_feeder");
    let split = b.stateless("word_splitter");
    let count = b.stateful("word_counter");
    let snk = b.sink("sink");
    b.connect(src, split);
    b.connect(split, count);
    b.connect(count, snk);
    let query = b.build().unwrap();

    let results_a: Arc<parking_lot::Mutex<Vec<WordFrequency>>> =
        Arc::new(parking_lot::Mutex::new(Vec::new()));
    let results_for_sink = results_a.clone();
    let mut factories: HashMap<LogicalOpId, Arc<dyn OperatorFactory>> = HashMap::new();
    factories.insert(src, seep_runtime::api::passthrough("feeder"));
    factories.insert(split, Arc::new(WordSplitter::new));
    factories.insert(count, Arc::new(|| WindowedWordCount::new(30_000)));
    factories.insert(
        snk,
        Arc::new(move || {
            let results = results_for_sink.clone();
            StatelessFn::new(
                "collector",
                move |_, t: &Tuple, _out: &mut Vec<seep_core::OutputTuple>| {
                    if let Ok(freq) = t.decode::<WordFrequency>() {
                        results.lock().push(freq);
                    }
                },
            )
        }),
    );
    let mut runtime_a = Runtime::new(RuntimeConfig::default());
    runtime_a.deploy(query, factories).unwrap();
    let counts_a = run_script(&mut runtime_a, src, count);
    let sunk_a = results_a.lock().len();

    // Path B: the same query as a typed Job with a typed sink collector.
    let collected: SinkCollector<WordFrequency> = SinkCollector::new();
    let handle = Job::builder(RuntimeConfig::default())
        .source("data_feeder", passthrough("feeder"))
        .then_stateless("word_splitter", WordSplitter::new)
        .then_stateful("word_counter", || WindowedWordCount::new(30_000))
        .sink_collect("sink", &collected)
        .deploy()
        .expect("valid job");
    let src_b = handle.op("data_feeder");
    let count_b = handle.op("word_counter");
    let mut runtime_b = handle.into_runtime();
    let counts_b = run_script(&mut runtime_b, src_b, count_b);

    assert_eq!(counts_a, counts_b, "counts diverged between the two paths");
    assert!(counts_a.iter().any(|(_, n)| *n > 0));
    assert_eq!(
        sunk_a,
        collected.len(),
        "both sinks must see the same window results"
    );
    assert!(
        !collected.is_empty(),
        "window results reached the typed sink"
    );
}
