//! The attribution manifest: how logical operator names map onto the
//! compiled physical plan.
//!
//! Fusion rewrites the deployed graph, but the ops plane keeps speaking in
//! logical operator names — metrics, health and emit clocks are *attributed*
//! back from the fused units. The manifest is the lookup table that makes
//! that attribution possible: one [`MemberInfo`] per surviving logical
//! operator, recording which physical operator hosts it, its position in a
//! fused chain (if any), and the shared cumulative counters standing in for
//! the per-operator clocks the interior stages no longer have.

use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use seep_core::LogicalOpId;

/// Where a logical operator ended up inside the physical plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberRole {
    /// Deployed as its own physical operator (no fusion).
    Direct,
    /// First stage of a fused unit: its inputs are the unit's inputs.
    Head,
    /// A middle stage of a fused unit.
    Interior,
    /// Last stage of a fused unit: its outputs are the unit's outputs, so
    /// its emit clock *is* the unit's shared output clock.
    Tail,
}

/// One logical operator's place in the compiled plan.
#[derive(Debug, Clone)]
pub struct MemberInfo {
    /// The physical operator hosting this logical operator in the compiled
    /// graph — the unit all placement, checkpointing and reconfiguration
    /// addresses.
    pub unit: LogicalOpId,
    /// The operator's role within that unit.
    pub role: MemberRole,
    /// Stage index within the fused chain (`None` for [`MemberRole::Direct`]).
    pub stage: Option<usize>,
    /// Cumulative outputs of this stage across all partitions of the unit
    /// (fused members only). Stands in for the emit clock of a head or
    /// interior stage; exact under every plan kind that drains before
    /// checkpointing, and for the tail stage superseded by the unit's real
    /// shared clock.
    pub emitted: Option<Arc<AtomicU64>>,
    /// Cumulative outputs of the *previous* stage (fused non-head members
    /// only). In-stack execution means everything the previous stage emitted
    /// is exactly what this stage processed, so this is the stage's
    /// processed-count attribution.
    pub upstream_emitted: Option<Arc<AtomicU64>>,
}

/// One fused unit in the compiled plan.
#[derive(Debug, Clone)]
pub struct FusedUnit {
    /// The unit's physical operator id in the compiled graph.
    pub id: LogicalOpId,
    /// The unit's physical operator name (contains every member name, e.g.
    /// `"fused:a+b"`).
    pub label: String,
    /// Member operator names, in chain order.
    pub members: Vec<String>,
}

/// The full logical-to-physical attribution map of one compiled plan.
#[derive(Debug, Clone, Default)]
pub struct PlanManifest {
    /// Surviving logical operators by name.
    pub members: HashMap<String, MemberInfo>,
    /// Fused units, in deployment order.
    pub units: Vec<FusedUnit>,
    /// Names of operators removed by dead-branch elimination (no path to
    /// any sink).
    pub eliminated: Vec<String>,
}

impl PlanManifest {
    /// An identity manifest for a graph deployed 1:1 (no fusion, no
    /// elimination): every operator maps to itself as [`MemberRole::Direct`].
    pub fn identity(query: &seep_core::QueryGraph) -> Self {
        PlanManifest {
            members: query
                .operators()
                .map(|op| {
                    (
                        op.name.clone(),
                        MemberInfo {
                            unit: op.id,
                            role: MemberRole::Direct,
                            stage: None,
                            emitted: None,
                            upstream_emitted: None,
                        },
                    )
                })
                .collect(),
            units: Vec::new(),
            eliminated: Vec::new(),
        }
    }

    /// The physical operator hosting the named logical operator, if it
    /// survived compilation.
    pub fn unit_of(&self, name: &str) -> Option<LogicalOpId> {
        self.members.get(name).map(|m| m.unit)
    }

    /// Whether any chain was fused.
    pub fn has_fusion(&self) -> bool {
        !self.units.is_empty()
    }
}
