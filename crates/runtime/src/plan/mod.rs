//! The physical-plan compiler: lowering the logical [`QueryGraph`] into the
//! graph the runtime actually deploys.
//!
//! [`Job::deploy`](crate::api::Job::deploy) runs every job through
//! [`PhysicalPlan::compile`] before handing it to
//! [`Runtime::deploy`](crate::runtime::Runtime::deploy). The compiler
//! performs three rewrites:
//!
//! 1. **Dead-branch elimination** — operators from which no sink is
//!    reachable are removed with their edges. (The typed job builder
//!    already rejects such graphs; this matters for hand-built
//!    [`QueryGraph`]s compiled directly.)
//! 2. **Stateless operator fusion** — maximal chains of two or more
//!    single-input/single-output [`OperatorKind::Stateless`] operators are
//!    collapsed into one [`FusedFactory`] unit whose
//!    [`seep_core::FusedOperator`] runs the whole chain in-stack: zero
//!    channels, zero duplicate-filter probes and zero clock bumps between
//!    the fused stages.
//! 3. **Batch-size selection** — under the default [`FusionPolicy::Fuse`],
//!    edges leaving a fused unit that the user left at the per-tuple
//!    default get batch size [`FUSED_EDGE_BATCH`]: fusion concentrates the
//!    chain's whole output volume on that one hop, which is exactly where
//!    batching pays. Explicit batch configuration is never overridden.
//!
//! Fusion is invisible to the control plane: the fused unit is the unit of
//! placement, checkpointing and reconfiguration (all five plan kinds
//! address it like any other operator), while the [`PlanManifest`] lets
//! metrics, health and emit clocks keep reporting per *logical* operator.
//!
//! ```
//! use seep_core::{OutputTuple, StatelessFn, Tuple};
//! use seep_runtime::api::Job;
//! use seep_runtime::plan::FusionPolicy;
//! use seep_runtime::RuntimeConfig;
//!
//! let fwd = |_: seep_core::StreamId, t: &Tuple, out: &mut Vec<OutputTuple>| {
//!     out.push(OutputTuple::new(t.key, t.payload.clone()));
//! };
//! // src -> a -> b -> sink: the stateless chain a -> b fuses into one
//! // physical operator, so the deployed graph has 3 nodes, not 4.
//! let mut handle = Job::builder(RuntimeConfig::default())
//!     .source("src", move || StatelessFn::new("src", fwd))
//!     .then_stateless("a", move || StatelessFn::new("a", fwd))
//!     .then_stateless("b", move || StatelessFn::new("b", fwd))
//!     .sink("sink", || {
//!         StatelessFn::new("sink", |_, _t: &Tuple, _out: &mut Vec<OutputTuple>| {})
//!     })
//!     .fusion(FusionPolicy::Fuse) // the default, shown for the example
//!     .deploy()
//!     .expect("valid job");
//! assert_eq!(handle.execution_graph().query().len(), 3);
//! // Both logical names still resolve — to the same fused unit.
//! assert_eq!(handle.op("a"), handle.op("b"));
//! ```

mod manifest;

pub use manifest::{FusedUnit, MemberInfo, MemberRole, PlanManifest};

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use seep_core::operator::OperatorFactory;
use seep_core::{Error, FusedFactory, LogicalOpId, OperatorKind, QueryGraph, Result};

use crate::config::BatchConfig;

/// Batch size selected for edges leaving a fused unit when the user left
/// the data plane at the per-tuple default (see [`FusionPolicy::Fuse`]).
pub const FUSED_EDGE_BATCH: usize = 64;

/// How [`PhysicalPlan::compile`] may rewrite the logical graph.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FusionPolicy {
    /// Deploy the logical graph 1:1 — operator ids, factories and batch
    /// configuration exactly as the seed runtime would, bit for bit.
    Disabled,
    /// Fuse stateless chains and eliminate dead branches, but never touch
    /// the configured batch sizes. For measurements that pin the transport
    /// batch size per arm (the throughput bench uses this).
    FuseKeepBatches,
    /// Fuse stateless chains, eliminate dead branches, and select
    /// [`FUSED_EDGE_BATCH`] for fused-unit output edges left at the
    /// per-tuple default. The default policy.
    #[default]
    Fuse,
}

impl FusionPolicy {
    /// Whether this policy fuses stateless chains at all.
    pub fn fuses(self) -> bool {
        self != FusionPolicy::Disabled
    }

    /// Whether this policy may select batch sizes for default edges.
    pub fn tunes_batches(self) -> bool {
        self == FusionPolicy::Fuse
    }
}

/// A compiled physical plan: the graph the runtime deploys, the factory
/// map paired with it, the (possibly retuned) batch configuration, and the
/// manifest attributing logical operators to physical units.
///
/// ```
/// use std::collections::HashMap;
/// use std::sync::Arc;
/// use seep_core::operator::{IntoOperatorFactory, OperatorFactory};
/// use seep_core::{LogicalOpId, OutputTuple, QueryGraph, StatelessFn, Tuple};
/// use seep_runtime::plan::{FusionPolicy, PhysicalPlan};
/// use seep_runtime::BatchConfig;
///
/// // Hand-built graph: src -> a -> b -> sink, plus a dead branch src -> x.
/// let mut g = QueryGraph::builder();
/// let src = g.source("src");
/// let a = g.stateless("a");
/// let b = g.stateless("b");
/// let sink = g.sink("sink");
/// let x = g.stateless("x");
/// g.connect(src, a).connect(a, b).connect(b, sink).connect(src, x);
/// let query = g.build().unwrap();
///
/// let fwd = || {
///     StatelessFn::new("fwd", |_, t: &Tuple, out: &mut Vec<OutputTuple>| {
///         out.push(OutputTuple::new(t.key, t.payload.clone()));
///     })
/// };
/// let factories: HashMap<LogicalOpId, Arc<dyn OperatorFactory>> =
///     [src, a, b, sink, x].iter().map(|id| (*id, fwd.into_factory())).collect();
///
/// let plan =
///     PhysicalPlan::compile(&query, &factories, &BatchConfig::default(), FusionPolicy::Fuse)
///         .unwrap();
/// // `x` is eliminated (no path to a sink), `a + b` fuse: 4 nodes remain 3.
/// assert_eq!(plan.query().len(), 3);
/// assert_eq!(plan.manifest().eliminated, vec!["x".to_string()]);
/// assert_eq!(plan.manifest().units.len(), 1);
/// assert_eq!(plan.manifest().unit_of("a"), plan.manifest().unit_of("b"));
/// ```
pub struct PhysicalPlan {
    query: QueryGraph,
    factories: HashMap<LogicalOpId, Arc<dyn OperatorFactory>>,
    batch: BatchConfig,
    manifest: PlanManifest,
}

impl std::fmt::Debug for PhysicalPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhysicalPlan")
            .field("operators", &self.query.len())
            .field("fused_units", &self.manifest.units.len())
            .field("eliminated", &self.manifest.eliminated)
            .finish_non_exhaustive()
    }
}

impl PhysicalPlan {
    /// Lower a logical query into a physical plan under `policy`.
    ///
    /// `factories` must cover every operator of `query` (the same pairing
    /// [`Runtime::deploy`](crate::runtime::Runtime::deploy) validates);
    /// `batch` is the user's batch configuration, remapped onto the
    /// physical ids and — under [`FusionPolicy::Fuse`] — extended with the
    /// fused-edge selection heuristic.
    pub fn compile(
        query: &QueryGraph,
        factories: &HashMap<LogicalOpId, Arc<dyn OperatorFactory>>,
        batch: &BatchConfig,
        policy: FusionPolicy,
    ) -> Result<PhysicalPlan> {
        for op in query.operators() {
            if !factories.contains_key(&op.id) {
                return Err(Error::InvalidGraph(format!(
                    "no operator factory registered for {} ({})",
                    op.id, op.name
                )));
            }
        }
        if !policy.fuses() {
            return Ok(PhysicalPlan {
                query: query.clone(),
                factories: factories.clone(),
                batch: batch.clone(),
                manifest: PlanManifest::identity(query),
            });
        }

        // -- Dead-branch elimination: keep only operators that reach a sink.
        let live = reverse_reachable(query);
        let eliminated: Vec<String> = query
            .operators()
            .filter(|op| !live.contains(&op.id))
            .map(|op| op.name.clone())
            .collect();

        // -- Chain detection over the live subgraph.
        let chains = find_chains(query, &live);

        if chains.is_empty() && eliminated.is_empty() {
            // Nothing to rewrite: deploy 1:1, preserving the original ids,
            // so non-fusing jobs are untouched by the planner. (No fused
            // edges exist, so the batch selection heuristic has no
            // candidates either.)
            return Ok(PhysicalPlan {
                query: query.clone(),
                factories: factories.clone(),
                batch: batch.clone(),
                manifest: PlanManifest::identity(query),
            });
        }

        // -- Rebuild the graph: chains collapse to one node each; everything
        // else carries over. Iterating original ids in ascending order keeps
        // the renumbering deterministic and order-preserving.
        let mut chain_of: HashMap<LogicalOpId, usize> = HashMap::new();
        for (ci, chain) in chains.iter().enumerate() {
            for id in chain {
                chain_of.insert(*id, ci);
            }
        }

        let mut builder = QueryGraph::builder();
        let mut new_id: HashMap<LogicalOpId, LogicalOpId> = HashMap::new();
        let mut new_factories: HashMap<LogicalOpId, Arc<dyn OperatorFactory>> = HashMap::new();
        let mut manifest = PlanManifest {
            eliminated,
            ..PlanManifest::default()
        };

        for op in query.operators() {
            if !live.contains(&op.id) {
                continue;
            }
            if let Some(&ci) = chain_of.get(&op.id) {
                let chain = &chains[ci];
                if chain[0] != op.id {
                    continue; // The unit is created at its head's position.
                }
                let member_names: Vec<String> = chain
                    .iter()
                    .map(|id| query.operator(*id).expect("live member").name.clone())
                    .collect();
                let label = FusedFactory::label_for(
                    &member_names.iter().map(String::as_str).collect::<Vec<_>>(),
                );
                let unit = builder.add_operator(&label, OperatorKind::Stateless);
                let fused = Arc::new(FusedFactory::new(
                    &label,
                    chain
                        .iter()
                        .zip(&member_names)
                        .map(|(id, name)| (name.clone(), factories[id].clone()))
                        .collect(),
                ));
                for (stage, (id, name)) in chain.iter().zip(&member_names).enumerate() {
                    new_id.insert(*id, unit);
                    let role = if stage == 0 {
                        MemberRole::Head
                    } else if stage == chain.len() - 1 {
                        MemberRole::Tail
                    } else {
                        MemberRole::Interior
                    };
                    manifest.members.insert(
                        name.clone(),
                        MemberInfo {
                            unit,
                            role,
                            stage: Some(stage),
                            emitted: Some(fused.cumulative_emitted(stage)),
                            upstream_emitted: (stage > 0)
                                .then(|| fused.cumulative_emitted(stage - 1)),
                        },
                    );
                }
                manifest.units.push(FusedUnit {
                    id: unit,
                    label: label.clone(),
                    members: member_names,
                });
                new_factories.insert(unit, fused);
            } else {
                let id = builder.add_operator(&op.name, op.kind);
                new_id.insert(op.id, id);
                new_factories.insert(id, factories[&op.id].clone());
                manifest.members.insert(
                    op.name.clone(),
                    MemberInfo {
                        unit: id,
                        role: MemberRole::Direct,
                        stage: None,
                        emitted: None,
                        upstream_emitted: None,
                    },
                );
            }
        }

        for (from, to) in query.streams() {
            let (Some(&f), Some(&t)) = (new_id.get(&from), new_id.get(&to)) else {
                continue; // An endpoint was eliminated.
            };
            if f != t {
                builder.connect(f, t);
            }
        }
        let physical = builder.build()?;

        // -- Batch configuration: remap explicit overrides onto the new ids.
        // Overrides on interior edges of a fused chain are dropped — those
        // edges no longer exist (the chain runs in-stack); an override on
        // the chain's tail addresses the unit's output edge and carries
        // over.
        let mut per_producer = std::collections::BTreeMap::new();
        for (raw, size) in &batch.per_producer {
            let old = LogicalOpId(*raw);
            let Some(&mapped) = new_id.get(&old) else {
                continue; // Eliminated with its branch.
            };
            match chain_of.get(&old) {
                Some(&ci) if *chains[ci].last().expect("non-empty chain") != old => {}
                _ => {
                    per_producer.insert(mapped.0, *size);
                }
            }
        }
        // -- Fused-edge selection: a fused unit's output edge carries the
        // whole chain's output volume in one hop. When the user left that
        // edge at the per-tuple default, batch it.
        if policy.tunes_batches() && batch.default_size == 1 {
            for unit in &manifest.units {
                per_producer.entry(unit.id.0).or_insert(FUSED_EDGE_BATCH);
            }
        }
        let batch = BatchConfig {
            default_size: batch.default_size,
            per_producer,
        };

        Ok(PhysicalPlan {
            query: physical,
            factories: new_factories,
            batch,
            manifest,
        })
    }

    /// The physical query graph the runtime deploys.
    pub fn query(&self) -> &QueryGraph {
        &self.query
    }

    /// The factory map paired with [`query`](Self::query).
    pub fn factories(&self) -> &HashMap<LogicalOpId, Arc<dyn OperatorFactory>> {
        &self.factories
    }

    /// The batch configuration remapped onto the physical ids.
    pub fn batch(&self) -> &BatchConfig {
        &self.batch
    }

    /// The logical-to-physical attribution manifest.
    pub fn manifest(&self) -> &PlanManifest {
        &self.manifest
    }

    /// Decompose into deployment artifacts:
    /// `(query, factories, batch, manifest)`.
    pub fn into_parts(
        self,
    ) -> (
        QueryGraph,
        HashMap<LogicalOpId, Arc<dyn OperatorFactory>>,
        BatchConfig,
        PlanManifest,
    ) {
        (self.query, self.factories, self.batch, self.manifest)
    }
}

/// Operators from which some sink is reachable (sinks included).
fn reverse_reachable(query: &QueryGraph) -> HashSet<LogicalOpId> {
    let mut live: HashSet<LogicalOpId> = HashSet::new();
    let mut frontier: Vec<LogicalOpId> = query.sinks();
    while let Some(id) = frontier.pop() {
        if live.insert(id) {
            frontier.extend(query.upstream(id));
        }
    }
    live
}

/// Maximal runs of two or more consecutive single-input/single-output
/// stateless operators in the live subgraph, each returned in chain order.
fn find_chains(query: &QueryGraph, live: &HashSet<LogicalOpId>) -> Vec<Vec<LogicalOpId>> {
    let live_neighbors = |id: LogicalOpId, down: bool| -> Vec<LogicalOpId> {
        let n = if down {
            query.downstream(id)
        } else {
            query.upstream(id)
        };
        n.into_iter().filter(|o| live.contains(o)).collect()
    };
    let chainable = |id: LogicalOpId| -> bool {
        live.contains(&id)
            && query.operator(id).map(|o| o.kind) == Ok(OperatorKind::Stateless)
            && live_neighbors(id, false).len() == 1
            && live_neighbors(id, true).len() == 1
    };

    let mut chains = Vec::new();
    for op in query.operators() {
        if !chainable(op.id) {
            continue;
        }
        // A chain starts where the (single) producer is not itself
        // chainable; later members are collected by the walk below.
        let upstream = live_neighbors(op.id, false)[0];
        if chainable(upstream) {
            continue;
        }
        let mut chain = vec![op.id];
        let mut cursor = op.id;
        loop {
            let next = live_neighbors(cursor, true)[0];
            if !chainable(next) {
                break;
            }
            chain.push(next);
            cursor = next;
        }
        if chain.len() >= 2 {
            chains.push(chain);
        }
    }
    chains
}

#[cfg(test)]
mod tests {
    use super::*;
    use seep_core::operator::IntoOperatorFactory;
    use seep_core::{OutputTuple, StatelessFn, Tuple};

    fn fwd_factory() -> Arc<dyn OperatorFactory> {
        (|| {
            StatelessFn::new("fwd", |_, t: &Tuple, out: &mut Vec<OutputTuple>| {
                out.push(OutputTuple::new(t.key, t.payload.clone()));
            })
        })
        .into_factory()
    }

    fn factories_for(ids: &[LogicalOpId]) -> HashMap<LogicalOpId, Arc<dyn OperatorFactory>> {
        ids.iter().map(|id| (*id, fwd_factory())).collect()
    }

    /// src -> a -> b -> c -> counter(stateful) -> sink
    fn chain_query() -> (QueryGraph, Vec<LogicalOpId>) {
        let mut g = QueryGraph::builder();
        let src = g.source("src");
        let a = g.stateless("a");
        let b = g.stateless("b");
        let c = g.stateless("c");
        let counter = g.stateful("counter");
        let sink = g.sink("sink");
        g.connect(src, a)
            .connect(a, b)
            .connect(b, c)
            .connect(c, counter)
            .connect(counter, sink);
        (g.build().unwrap(), vec![src, a, b, c, counter, sink])
    }

    #[test]
    fn disabled_policy_is_the_identity() {
        let (q, ids) = chain_query();
        let f = factories_for(&ids);
        let batch = BatchConfig::default().with_producer(ids[1], 8);
        let plan = PhysicalPlan::compile(&q, &f, &batch, FusionPolicy::Disabled).unwrap();
        assert_eq!(plan.query(), &q);
        assert_eq!(plan.batch(), &batch);
        assert!(!plan.manifest().has_fusion());
        assert_eq!(plan.manifest().members["a"].unit, ids[1]);
        assert_eq!(plan.manifest().members["a"].role, MemberRole::Direct);
    }

    #[test]
    fn stateless_chain_fuses_into_one_unit() {
        let (q, ids) = chain_query();
        let f = factories_for(&ids);
        let plan =
            PhysicalPlan::compile(&q, &f, &BatchConfig::default(), FusionPolicy::Fuse).unwrap();
        // src, fused(a+b+c), counter, sink.
        assert_eq!(plan.query().len(), 4);
        let m = plan.manifest();
        assert_eq!(m.units.len(), 1);
        assert_eq!(m.units[0].members, vec!["a", "b", "c"]);
        assert_eq!(m.units[0].label, "fused:a+b+c");
        let unit = m.unit_of("a").unwrap();
        assert_eq!(m.unit_of("b"), Some(unit));
        assert_eq!(m.unit_of("c"), Some(unit));
        assert_eq!(m.members["a"].role, MemberRole::Head);
        assert_eq!(m.members["b"].role, MemberRole::Interior);
        assert_eq!(m.members["c"].role, MemberRole::Tail);
        assert!(m.members["b"].emitted.is_some());
        assert!(m.members["b"].upstream_emitted.is_some());
        // The fused node really is in the rebuilt graph, stateless, with
        // the chain's external edges reattached.
        let fused_op = plan.query().operator(unit).unwrap();
        assert_eq!(fused_op.kind, OperatorKind::Stateless);
        assert_eq!(plan.query().upstream(unit).len(), 1);
        assert_eq!(plan.query().downstream(unit).len(), 1);
        // The factory for the unit builds a fused operator with 3 stages.
        let built = plan.factories()[&unit].build();
        assert_eq!(built.fusion_stages().map(|s| s.len()), Some(3));
    }

    #[test]
    fn fused_output_edge_gets_the_batch_heuristic() {
        let (q, ids) = chain_query();
        let f = factories_for(&ids);
        let plan =
            PhysicalPlan::compile(&q, &f, &BatchConfig::default(), FusionPolicy::Fuse).unwrap();
        let unit = plan.manifest().unit_of("a").unwrap();
        assert_eq!(plan.batch().size_for(unit), FUSED_EDGE_BATCH);
        // Other edges stay at the user's default.
        let src = plan.manifest().unit_of("src").unwrap();
        assert_eq!(plan.batch().size_for(src), 1);

        // FuseKeepBatches fuses identically but leaves batches alone.
        let plan = PhysicalPlan::compile(
            &q,
            &f,
            &BatchConfig::default(),
            FusionPolicy::FuseKeepBatches,
        )
        .unwrap();
        assert!(plan.manifest().has_fusion());
        let unit = plan.manifest().unit_of("a").unwrap();
        assert_eq!(plan.batch().size_for(unit), 1);

        // An explicit non-default configuration is never second-guessed.
        let plan =
            PhysicalPlan::compile(&q, &f, &BatchConfig::uniform(8), FusionPolicy::Fuse).unwrap();
        let unit = plan.manifest().unit_of("a").unwrap();
        assert_eq!(plan.batch().size_for(unit), 8);
    }

    #[test]
    fn batch_overrides_remap_tail_and_drop_interior() {
        let (q, ids) = chain_query();
        let f = factories_for(&ids);
        // Overrides on the head (interior edge a->b: dropped), the tail
        // (edge c->counter: remapped to the unit) and the counter
        // (remapped to its new id).
        let batch = BatchConfig::default()
            .with_producer(ids[1], 7)
            .with_producer(ids[3], 16)
            .with_producer(ids[4], 32);
        let plan = PhysicalPlan::compile(&q, &f, &batch, FusionPolicy::Fuse).unwrap();
        let m = plan.manifest();
        let unit = m.unit_of("c").unwrap();
        let counter = m.unit_of("counter").unwrap();
        assert_eq!(
            plan.batch().size_for(unit),
            16,
            "tail override carries over"
        );
        assert_eq!(plan.batch().size_for(counter), 32);
        // The head's override died with the interior edge; nothing else
        // inherited the value 7.
        assert!(!plan.batch().per_producer.values().any(|s| *s == 7));
    }

    #[test]
    fn fan_out_and_stateful_operators_block_fusion() {
        // src -> a -> (b | c) -> sink : `a` has fan-out, nothing fuses.
        let mut g = QueryGraph::builder();
        let src = g.source("src");
        let a = g.stateless("a");
        let b = g.stateless("b");
        let c = g.stateless("c");
        let sink = g.sink("sink");
        g.connect(src, a)
            .connect(a, b)
            .connect(a, c)
            .connect(b, sink)
            .connect(c, sink);
        let q = g.build().unwrap();
        let f = factories_for(&[src, a, b, c, sink]);
        let plan =
            PhysicalPlan::compile(&q, &f, &BatchConfig::default(), FusionPolicy::Fuse).unwrap();
        assert!(!plan.manifest().has_fusion());
        // With no rewrite, the original ids are preserved exactly.
        assert_eq!(plan.query(), &q);
    }

    #[test]
    fn dead_branches_are_eliminated() {
        // src -> a -> b -> sink, plus src -> x -> y (no sink reachable).
        let mut g = QueryGraph::builder();
        let src = g.source("src");
        let a = g.stateless("a");
        let b = g.stateless("b");
        let sink = g.sink("sink");
        let x = g.stateless("x");
        let y = g.stateless("y");
        g.connect(src, a)
            .connect(a, b)
            .connect(b, sink)
            .connect(src, x)
            .connect(x, y);
        let q = g.build().unwrap();
        let f = factories_for(&[src, a, b, sink, x, y]);
        let plan =
            PhysicalPlan::compile(&q, &f, &BatchConfig::default(), FusionPolicy::Fuse).unwrap();
        assert_eq!(plan.manifest().eliminated, vec!["x", "y"]);
        // src, fused(a+b), sink.
        assert_eq!(plan.query().len(), 3);
        assert!(plan.manifest().unit_of("x").is_none());
    }

    #[test]
    fn missing_factory_is_rejected() {
        let (q, ids) = chain_query();
        let mut f = factories_for(&ids);
        f.remove(&ids[2]);
        let err = PhysicalPlan::compile(&q, &f, &BatchConfig::default(), FusionPolicy::Fuse);
        assert!(err.is_err());
    }
}
