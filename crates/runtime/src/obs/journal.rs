//! The structured reconfiguration event journal.
//!
//! Every [`crate::reconfig::ReconfigPlan`] the runtime executes — scale out,
//! scale in, rebalance, consolidate, recovery, whether triggered manually or
//! by the control loop — appends one [`JournalEvent`] carrying the plan
//! kind, the trigger, the per-phase [`ReconfigTiming`], the placement delta
//! and the VMs released/acquired. Events land in a bounded in-memory ring
//! ([`seep_core::EventRing`]) and, when a sink is attached, in a JSONL file
//! whose lines [`Journal::replay_file`] parses back so post-mortems can
//! reconstruct exactly what the control loop did ([`Journal::render`]).

use std::fs::File;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use seep_core::EventRing;

use crate::metrics::ReconfigTiming;

/// Default number of events the in-memory ring retains.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1_024;

/// Which plan shape an event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JournalKind {
    /// One instance replaced by π fresh partitions on new VMs.
    ScaleOut,
    /// Two sibling partitions merged; a VM slot vacated.
    ScaleIn,
    /// All π partitions re-split in place by the observed key distribution.
    Rebalance,
    /// Partitions bin-packed onto shared VM slots; emptied VMs released.
    Consolidate,
    /// A failed instance restored — the same plan as a scale out of the
    /// failed operator, recorded under its own kind.
    Recovery,
}

impl JournalKind {
    /// Lowercase label used by the replay printer and the exposition.
    pub fn label(self) -> &'static str {
        match self {
            JournalKind::ScaleOut => "scale_out",
            JournalKind::ScaleIn => "scale_in",
            JournalKind::Rebalance => "rebalance",
            JournalKind::Consolidate => "consolidate",
            JournalKind::Recovery => "recovery",
        }
    }
}

/// What initiated a plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanTrigger {
    /// An explicit API call (experiment script, operator action).
    #[default]
    Manual,
    /// The bottleneck detector's control loop.
    AutoScale,
}

impl PlanTrigger {
    /// Lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            PlanTrigger::Manual => "manual",
            PlanTrigger::AutoScale => "auto_scale",
        }
    }
}

/// One partition ↔ VM slot binding, as raw ids so the journal stays
/// serialisable without depending on the id newtypes' wire format. `vm` is
/// `None` for an instance that had no slot (a failed operator whose
/// placement was already released).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotBinding {
    /// Physical operator instance id.
    pub operator: u64,
    /// Hosting VM id, when placed.
    pub vm: Option<u64>,
}

/// One reconfiguration, as recorded by the journal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalEvent {
    /// Monotone sequence number over the journal's lifetime (assigned by
    /// [`Journal::append`]).
    pub seq: u64,
    /// Virtual time of the plan (ms).
    pub at_ms: u64,
    /// Plan shape.
    pub kind: JournalKind,
    /// What initiated the plan.
    pub trigger: PlanTrigger,
    /// Raw id of the logical operator the plan reconfigured.
    pub logical: u32,
    /// Name of the logical operator.
    pub operator: String,
    /// Parallelism after the plan (0 for a rejected plan).
    pub new_parallelism: usize,
    /// Tuples replayed from restored and upstream buffers.
    pub replayed_tuples: usize,
    /// Per-phase wall-clock cost of the plan.
    pub timing: ReconfigTiming,
    /// Placement delta: the slots the replaced instances vacated.
    pub vacated: Vec<SlotBinding>,
    /// Placement delta: the slots the new instances occupy.
    pub placed: Vec<SlotBinding>,
    /// VMs released back to the provider by the plan (billing stopped).
    pub released_vms: Vec<u64>,
    /// VMs newly drawn from the pool by the plan.
    pub acquired_vms: Vec<u64>,
    /// `"ok"`, or `"rejected: <error>"` for a plan the executor refused
    /// (fail-before-rewrite: the runtime is exactly as it was).
    pub outcome: String,
}

impl JournalEvent {
    /// Whether the plan committed.
    pub fn committed(&self) -> bool {
        self.outcome == "ok"
    }
}

struct JournalInner {
    ring: EventRing<JournalEvent>,
    sink: Option<File>,
    sink_path: Option<PathBuf>,
    sink_errors: u64,
}

/// Thread-safe reconfiguration journal: bounded in-memory ring plus an
/// optional JSONL file sink.
pub struct Journal {
    inner: Mutex<JournalInner>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Journal")
            .field("retained", &inner.ring.len())
            .field("total", &inner.ring.total())
            .field("sink", &inner.sink_path)
            .finish()
    }
}

impl Default for Journal {
    fn default() -> Self {
        Self::new(DEFAULT_JOURNAL_CAPACITY)
    }
}

impl Journal {
    /// An empty journal retaining at most `capacity` events in memory.
    pub fn new(capacity: usize) -> Self {
        Journal {
            inner: Mutex::new(JournalInner {
                ring: EventRing::new(capacity),
                sink: None,
                sink_path: None,
                sink_errors: 0,
            }),
        }
    }

    /// Append an event; its `seq` is overwritten with the journal's next
    /// sequence number, which is returned. When a file sink is attached the
    /// event is also written as one JSON line; write failures are counted
    /// ([`sink_errors`](Self::sink_errors)) but never fail the append — the
    /// journal must not take down the reconfiguration that feeds it.
    pub fn append(&self, mut event: JournalEvent) -> u64 {
        let mut inner = self.inner.lock();
        event.seq = inner.ring.total();
        if let Some(sink) = inner.sink.as_mut() {
            match write_jsonl(sink, &event) {
                Ok(()) => {}
                Err(_) => inner.sink_errors += 1,
            }
        }
        inner.ring.push(event)
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<JournalEvent> {
        self.inner.lock().ring.items()
    }

    /// Number of retained events (≤ capacity).
    pub fn len(&self) -> usize {
        self.inner.lock().ring.len()
    }

    /// Whether nothing was ever appended (the ring never shrinks, so an
    /// empty ring means an empty lifetime).
    pub fn is_empty(&self) -> bool {
        self.inner.lock().ring.is_empty()
    }

    /// Total events appended over the journal's lifetime.
    pub fn total(&self) -> u64 {
        self.inner.lock().ring.total()
    }

    /// JSONL lines that failed to reach the sink.
    pub fn sink_errors(&self) -> u64 {
        self.inner.lock().sink_errors
    }

    /// Attach (or replace) a JSONL file sink at `path`. The file is created
    /// fresh and the events already retained in memory are written first, so
    /// the file is complete from the journal's retained horizon onward.
    pub fn attach_sink(&self, path: impl AsRef<Path>) -> std::io::Result<PathBuf> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::create(&path)?;
        let mut inner = self.inner.lock();
        for event in inner.ring.items() {
            write_jsonl(&mut file, &event)?;
        }
        inner.sink = Some(file);
        inner.sink_path = Some(path.clone());
        Ok(path)
    }

    /// The attached sink path, if any.
    pub fn sink_path(&self) -> Option<PathBuf> {
        self.inner.lock().sink_path.clone()
    }

    /// Detach the file sink (the file is flushed and closed).
    pub fn detach_sink(&self) {
        let mut inner = self.inner.lock();
        if let Some(mut sink) = inner.sink.take() {
            let _ = sink.flush();
        }
        inner.sink_path = None;
    }

    /// Parse a JSONL journal file back into events (the `journal replay`
    /// entry point). A malformed line surfaces as `InvalidData` with the
    /// line number.
    pub fn replay_file(path: impl AsRef<Path>) -> std::io::Result<Vec<JournalEvent>> {
        let reader = BufReader::new(File::open(path)?);
        let mut events = Vec::new();
        for (lineno, line) in reader.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let event: JournalEvent = serde_json::from_str(&line).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("journal line {}: {e}", lineno + 1),
                )
            })?;
            events.push(event);
        }
        Ok(events)
    }

    /// Pretty-print events for a post-mortem: one block per event with the
    /// plan kind, trigger, per-phase timings and the placement delta.
    pub fn render(events: &[JournalEvent]) -> String {
        let mut out = String::new();
        for e in events {
            let t = &e.timing;
            out.push_str(&format!(
                "#{:<4} t={}ms  {:<11} {} (L{}) -> pi={}  trigger={}  outcome={}\n",
                e.seq,
                e.at_ms,
                e.kind.label(),
                e.operator,
                e.logical,
                e.new_parallelism,
                e.trigger.label(),
                e.outcome,
            ));
            out.push_str(&format!(
                "      phases µs: drain={} checkpoint={} rewrite={} transform={} \
                 restore={} commit={} replay={} total={}\n",
                t.drain_us,
                t.checkpoint_us,
                t.rewrite_us,
                t.transform_us,
                t.restore_us,
                t.commit_us,
                t.replay_us,
                t.total_us,
            ));
            let fmt_slots = |slots: &[SlotBinding]| -> String {
                slots
                    .iter()
                    .map(|s| match s.vm {
                        Some(vm) => format!("op{}@vm{}", s.operator, vm),
                        None => format!("op{}@-", s.operator),
                    })
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            out.push_str(&format!(
                "      placement: -[{}] +[{}]  released_vms={:?} acquired_vms={:?}\n",
                fmt_slots(&e.vacated),
                fmt_slots(&e.placed),
                e.released_vms,
                e.acquired_vms,
            ));
            out.push_str(&format!(
                "      replayed {} tuples; split={} (sampled imbalance {:.2})\n",
                e.replayed_tuples,
                t.split.label(),
                t.post_split_imbalance,
            ));
        }
        out
    }
}

fn write_jsonl(sink: &mut File, event: &JournalEvent) -> std::io::Result<()> {
    let line = serde_json::to_string(event)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    sink.write_all(line.as_bytes())?;
    sink.write_all(b"\n")?;
    sink.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::SplitKind;

    fn event(at_ms: u64, kind: JournalKind) -> JournalEvent {
        JournalEvent {
            seq: 0,
            at_ms,
            kind,
            trigger: PlanTrigger::Manual,
            logical: 2,
            operator: "word_counter".into(),
            new_parallelism: 2,
            replayed_tuples: 17,
            timing: ReconfigTiming {
                drain_us: 1,
                checkpoint_us: 2,
                rewrite_us: 3,
                transform_us: 4,
                restore_us: 5,
                commit_us: 6,
                replay_us: 7,
                total_us: 28,
                split: SplitKind::Even,
                post_split_imbalance: 1.0,
            },
            vacated: vec![SlotBinding {
                operator: 3,
                vm: Some(1),
            }],
            placed: vec![
                SlotBinding {
                    operator: 7,
                    vm: Some(1),
                },
                SlotBinding {
                    operator: 8,
                    vm: Some(4),
                },
            ],
            released_vms: vec![],
            acquired_vms: vec![4],
            outcome: "ok".into(),
        }
    }

    #[test]
    fn append_assigns_monotone_sequence_numbers() {
        let j = Journal::new(8);
        assert!(j.is_empty());
        assert_eq!(j.append(event(1_000, JournalKind::ScaleOut)), 0);
        assert_eq!(j.append(event(2_000, JournalKind::Rebalance)), 1);
        assert_eq!(j.total(), 2);
        let events = j.events();
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert!(events[0].committed());
    }

    #[test]
    fn ring_keeps_newest_events_only() {
        let j = Journal::new(2);
        for i in 0..5 {
            j.append(event(i * 1_000, JournalKind::ScaleOut));
        }
        assert_eq!(j.len(), 2);
        assert_eq!(j.total(), 5);
        assert_eq!(j.events()[0].seq, 3);
    }

    #[test]
    fn jsonl_sink_roundtrips_through_replay() {
        let dir = std::env::temp_dir().join("seep-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("j-{}.jsonl", std::process::id()));
        let j = Journal::new(16);
        // One event before the sink attaches: attach writes the backlog.
        j.append(event(1_000, JournalKind::ScaleOut));
        j.attach_sink(&path).unwrap();
        j.append(event(2_000, JournalKind::Rebalance));
        j.append(event(3_000, JournalKind::Consolidate));
        assert_eq!(j.sink_errors(), 0);
        assert_eq!(j.sink_path().as_deref(), Some(path.as_path()));
        j.detach_sink();

        let replayed = Journal::replay_file(&path).unwrap();
        assert_eq!(replayed.len(), 3);
        assert_eq!(replayed, j.events());
        assert_eq!(replayed[1].kind, JournalKind::Rebalance);
        assert_eq!(replayed[2].at_ms, 3_000);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_rejects_malformed_lines() {
        let dir = std::env::temp_dir().join("seep-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("bad-{}.jsonl", std::process::id()));
        std::fs::write(&path, "{not json\n").unwrap();
        let err = Journal::replay_file(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 1"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn render_lists_phases_and_placement_delta() {
        let events = vec![
            event(5_000, JournalKind::ScaleOut),
            event(9_000, JournalKind::Consolidate),
        ];
        let text = Journal::render(&events);
        assert!(text.contains("scale_out"), "{text}");
        assert!(text.contains("consolidate"), "{text}");
        assert!(text.contains("drain=1"), "{text}");
        assert!(text.contains("total=28"), "{text}");
        assert!(text.contains("-[op3@vm1]"), "{text}");
        assert!(text.contains("+[op7@vm1, op8@vm4]"), "{text}");
        assert!(text.contains("word_counter"), "{text}");
    }
}
