//! Minimal std-only HTTP scrape endpoint.
//!
//! One background thread, a non-blocking [`TcpListener`] and two routes:
//! `GET /metrics` (Prometheus text format) and `GET /health` (JSON). The
//! server never touches the runtime — it renders from the [`ObsShared`]
//! snapshot the runtime refreshes after every state change — so a scrape
//! can never block or race a reconfiguration. No HTTP library is involved;
//! the exposition format only needs status line + headers + body.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::obs::ObsShared;

/// How long the accept loop sleeps when no connection is pending.
const POLL_INTERVAL: Duration = Duration::from_millis(5);

/// The scrape endpoint: a one-thread HTTP server bound to a local address,
/// started via [`crate::JobHandle::serve_metrics`] and stopped on
/// [`stop`](ObsServer::stop) or drop.
#[derive(Debug)]
pub struct ObsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ObsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9184"`, or port 0 for an ephemeral
    /// port) and start serving `shared` in a background thread. Returns the
    /// bound address.
    pub fn start(addr: &str, shared: Arc<ObsShared>) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = shutdown.clone();
        let thread = std::thread::Builder::new()
            .name("seep-obs".into())
            .spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Serve inline: scrapes are small and rare, and a
                            // single thread keeps shutdown trivial.
                            let _ = serve_connection(stream, &shared);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL_INTERVAL);
                        }
                        Err(_) => std::thread::sleep(POLL_INTERVAL),
                    }
                }
            })?;
        Ok(ObsServer {
            addr: bound,
            shutdown,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal the server thread to exit and wait for it.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_connection(mut stream: TcpStream, shared: &ObsShared) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    // Read until the end of the request head; scrapers send no body.
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8 * 1024 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut request = head.lines().next().unwrap_or("").split_whitespace();
    let method = request.next().unwrap_or("");
    let path = request.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);

    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        match path.trim_end_matches('/') {
            "/metrics" | "" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                shared.render_prometheus(),
            ),
            "/health" => (
                "200 OK",
                "application/json; charset=utf-8",
                shared.render_health_json(),
            ),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found\n".to_string(),
            ),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::prometheus::{validate_exposition, ObsSnapshot};

    /// Blocking one-shot HTTP GET against the test server.
    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("header/body separator");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_health_and_404() {
        let shared = Arc::new(ObsShared::default());
        shared.update(ObsSnapshot {
            now_ms: 7_000,
            ..ObsSnapshot::default()
        });

        let mut server = ObsServer::start("127.0.0.1:0", shared.clone()).expect("bind");
        let addr = server.addr();

        let (head, body) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"), "{head}");
        let exp = validate_exposition(&body).expect("scrape output must parse");
        assert_eq!(
            exp.scalar("seep_virtual_time_milliseconds").unwrap(),
            7_000.0
        );

        let (head, body) = http_get(addr, "/health");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        assert!(body.contains("\"status\":\"ok\""), "{body}");

        let (head, _) = http_get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        // The server reflects snapshot refreshes without restarting.
        shared.update(ObsSnapshot {
            now_ms: 9_000,
            ..ObsSnapshot::default()
        });
        let (_, body) = http_get(addr, "/metrics");
        let exp = validate_exposition(&body).unwrap();
        assert_eq!(
            exp.scalar("seep_virtual_time_milliseconds").unwrap(),
            9_000.0
        );

        server.stop();
        // After stop the port no longer accepts (give the OS a moment).
        std::thread::sleep(Duration::from_millis(20));
        assert!(TcpStream::connect(addr).is_err(), "server must be down");
    }
}
