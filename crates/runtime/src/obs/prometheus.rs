//! Prometheus text-format exposition (version 0.0.4).
//!
//! [`render_prometheus`] turns an [`ObsSnapshot`] — a point-in-time copy of
//! everything the runtime knows about itself — into the plain-text format a
//! Prometheus server scrapes: `# HELP`/`# TYPE` headers, escaped label
//! values, cumulative histogram buckets with a `+Inf` bound and matching
//! `_sum`/`_count` series. Rendering is a pure function of the snapshot, so
//! the exposition-correctness tests exercise it without any HTTP in the
//! loop; [`parse_exposition`] / [`validate_exposition`] implement the small
//! scrape-side parser those tests (and the CI smoke check) round-trip
//! through.

use std::collections::BTreeMap;

use seep_core::{HistogramSnapshot, LatencyHistogram};

use seep_cloud::PoolStats;

use crate::metrics::{Metrics, MetricsSnapshot, StoreIoRecord};
use crate::obs::health::{HealthReport, OperatorHealth};

/// Per-phase reconfiguration cost summed over all executed plans of one
/// kind, feeding the `seep_reconfig_phase_seconds_total` family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReconfigPhaseTotals {
    /// Plan kind label (`scale_out`, `scale_in`, `rebalance`, `consolidate`).
    pub kind: &'static str,
    /// Number of plans of this kind.
    pub count: u64,
    /// Summed drain phase cost (µs).
    pub drain_us: u64,
    /// Summed state-capture phase cost (µs).
    pub checkpoint_us: u64,
    /// Summed graph-rewrite phase cost (µs).
    pub rewrite_us: u64,
    /// Summed checkpoint split/merge phase cost (µs).
    pub transform_us: u64,
    /// Summed worker-creation and state-restore phase cost (µs).
    pub restore_us: u64,
    /// Summed commit phase cost (µs).
    pub commit_us: u64,
    /// Summed routing-update and replay phase cost (µs).
    pub replay_us: u64,
    /// Summed end-to-end plan cost (µs).
    pub total_us: u64,
}

/// A point-in-time copy of everything the ops plane exports: metrics,
/// latency histogram, per-operator health, placement occupancy and the
/// VM/billing counters. Refreshed by the runtime after every state change
/// and read by the scrape endpoint, so rendering never touches the runtime.
#[derive(Debug, Clone)]
pub struct ObsSnapshot {
    /// Virtual time (ms).
    pub now_ms: u64,
    /// Aggregate metrics registry snapshot.
    pub metrics: MetricsSnapshot,
    /// Fixed log-scale latency histogram.
    pub latency: HistogramSnapshot,
    /// Per-backend checkpoint-store I/O counters, sorted by backend label.
    pub store_io: Vec<(String, StoreIoRecord)>,
    /// Per-kind summed reconfiguration phase costs.
    pub reconfig_phases: Vec<ReconfigPhaseTotals>,
    /// Per-instance health.
    pub health: Vec<OperatorHealth>,
    /// `(vm id, resident operators)` for every occupied VM.
    pub occupancy: Vec<(u64, usize)>,
    /// Operator slots per VM.
    pub slots_per_vm: usize,
    /// Running VMs at the provider.
    pub vms_running: usize,
    /// VMs still provisioning.
    pub vms_provisioning: usize,
    /// Accumulated VM time (seconds) across all VMs ever billed.
    pub vm_seconds: f64,
    /// Accumulated VM cost (dollars).
    pub vm_cost: f64,
    /// VM pool acquisition statistics.
    pub pool: PoolStats,
    /// Ready VMs in the pool.
    pub pool_ready: usize,
    /// VMs provisioning for the pool.
    pub pool_pending: usize,
    /// Pool target size.
    pub pool_target: usize,
    /// Reconfiguration events journalled over the runtime's lifetime.
    pub journal_events: u64,
    /// Per-connection transport traffic counters (empty for the pure
    /// in-process plane).
    pub transport: Vec<TransportConn>,
    /// `(worker name, heartbeat lag ms)` per connected worker process, as
    /// observed by the coordinator at snapshot time.
    pub heartbeat_lag: Vec<(String, f64)>,
}

/// Traffic counters for one transport connection, as exported to the
/// scrape endpoint.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TransportConn {
    /// Peer address (`host:port`).
    pub peer: String,
    /// `"out"` for dialled connections, `"in"` for accepted ones.
    pub direction: String,
    /// Envelope payload bytes shipped (framing overhead excluded).
    pub bytes: u64,
    /// Complete frames shipped or reassembled.
    pub frames: u64,
    /// Data tuples carried.
    pub tuples: u64,
    /// Times the connection was re-dialled after a failure.
    pub reconnects: u64,
}

impl Default for ObsSnapshot {
    fn default() -> Self {
        ObsSnapshot {
            now_ms: 0,
            metrics: Metrics::new().snapshot(),
            latency: LatencyHistogram::new().snapshot(),
            store_io: Vec::new(),
            reconfig_phases: Vec::new(),
            health: Vec::new(),
            occupancy: Vec::new(),
            slots_per_vm: 1,
            vms_running: 0,
            vms_provisioning: 0,
            vm_seconds: 0.0,
            vm_cost: 0.0,
            pool: PoolStats::default(),
            pool_ready: 0,
            pool_pending: 0,
            pool_target: 0,
            journal_events: 0,
            transport: Vec::new(),
            heartbeat_lag: Vec::new(),
        }
    }
}

/// Escape a label value per the exposition format: backslash, double quote
/// and newline.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape a HELP text: backslash and newline (quotes stay literal).
fn escape_help(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        format!("{v}")
    }
}

struct Exporter {
    out: String,
}

impl Exporter {
    fn new() -> Self {
        Exporter {
            out: String::with_capacity(8 * 1024),
        }
    }

    fn family(&mut self, name: &str, kind: &str, help: &str) {
        self.out
            .push_str(&format!("# HELP {name} {}\n", escape_help(help)));
        self.out.push_str(&format!("# TYPE {name} {kind}\n"));
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(&format!("{k}=\"{}\"", escape_label(v)));
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(&fmt_value(value));
        self.out.push('\n');
    }
}

/// Render a snapshot as Prometheus text exposition format 0.0.4. Every
/// family carries `# HELP`/`# TYPE`; the latency histogram is exported in
/// seconds with cumulative buckets, a `+Inf` bound and `_sum`/`_count`.
pub fn render_prometheus(s: &ObsSnapshot) -> String {
    let mut w = Exporter::new();
    let m = &s.metrics;

    w.family(
        "seep_virtual_time_milliseconds",
        "gauge",
        "Virtual time of the runtime (ms since deployment).",
    );
    w.sample("seep_virtual_time_milliseconds", &[], s.now_ms as f64);

    w.family(
        "seep_sink_tuples_total",
        "counter",
        "Tuples that reached a sink.",
    );
    w.sample("seep_sink_tuples_total", &[], m.sink_tuples as f64);
    w.family(
        "seep_processed_tuples_total",
        "counter",
        "Tuples processed across all operators.",
    );
    w.sample("seep_processed_tuples_total", &[], m.total_processed as f64);
    w.family(
        "seep_dropped_sends_total",
        "counter",
        "Sends dropped because the destination was disconnected.",
    );
    w.sample("seep_dropped_sends_total", &[], m.dropped_sends as f64);

    // End-to-end latency: fixed log-scale histogram, exported in seconds.
    w.family(
        "seep_latency_seconds",
        "histogram",
        "End-to-end tuple latency observed at sinks.",
    );
    let cumulative = s.latency.cumulative();
    for (i, le_us) in s.latency.bounds_us.iter().enumerate() {
        let le = fmt_value(*le_us as f64 / 1e6);
        w.sample(
            "seep_latency_seconds_bucket",
            &[("le", le.as_str())],
            cumulative.get(i).copied().unwrap_or(0) as f64,
        );
    }
    w.sample(
        "seep_latency_seconds_bucket",
        &[("le", "+Inf")],
        s.latency.count as f64,
    );
    w.sample(
        "seep_latency_seconds_sum",
        &[],
        s.latency.sum_us as f64 / 1e6,
    );
    w.sample("seep_latency_seconds_count", &[], s.latency.count as f64);

    w.family(
        "seep_latency_quantile_milliseconds",
        "gauge",
        "Exact nearest-rank latency percentiles (ms).",
    );
    for (q, v) in [
        ("0.5", m.latency_p50_ms),
        ("0.95", m.latency_p95_ms),
        ("0.99", m.latency_p99_ms),
    ] {
        w.sample("seep_latency_quantile_milliseconds", &[("quantile", q)], v);
    }

    for (name, help, value) in [
        (
            "seep_checkpoints_total",
            "Checkpoints taken.",
            m.checkpoints,
        ),
        (
            "seep_recoveries_total",
            "Failure recoveries performed.",
            m.recoveries,
        ),
        (
            "seep_scale_outs_total",
            "Scale-out actions performed (includes recovery re-deploys).",
            m.scale_outs,
        ),
        (
            "seep_scale_ins_total",
            "Scale-in (merge) actions performed.",
            m.scale_ins,
        ),
        (
            "seep_rebalances_total",
            "Rebalance (repartition-in-place) actions performed.",
            m.rebalances,
        ),
        (
            "seep_consolidates_total",
            "Consolidation (partition bin-packing) actions performed.",
            m.consolidates,
        ),
    ] {
        w.family(name, "counter", help);
        w.sample(name, &[], value as f64);
    }

    w.family(
        "seep_reconfig_plans_total",
        "counter",
        "Reconfiguration plans executed, by plan kind.",
    );
    for p in &s.reconfig_phases {
        w.sample(
            "seep_reconfig_plans_total",
            &[("kind", p.kind)],
            p.count as f64,
        );
    }
    w.family(
        "seep_reconfig_phase_seconds_total",
        "counter",
        "Wall-clock time spent in each reconfiguration phase, by plan kind.",
    );
    for p in &s.reconfig_phases {
        for (phase, us) in [
            ("drain", p.drain_us),
            ("checkpoint", p.checkpoint_us),
            ("rewrite", p.rewrite_us),
            ("transform", p.transform_us),
            ("restore", p.restore_us),
            ("commit", p.commit_us),
            ("replay", p.replay_us),
            ("total", p.total_us),
        ] {
            w.sample(
                "seep_reconfig_phase_seconds_total",
                &[("kind", p.kind), ("phase", phase)],
                us as f64 / 1e6,
            );
        }
    }

    w.family(
        "seep_store_writes_total",
        "counter",
        "Checkpoint writes per store backend (kind: full or incremental).",
    );
    for (backend, io) in &s.store_io {
        w.sample(
            "seep_store_writes_total",
            &[("backend", backend), ("kind", "full")],
            io.writes as f64,
        );
        w.sample(
            "seep_store_writes_total",
            &[("backend", backend), ("kind", "incremental")],
            io.incremental_writes as f64,
        );
    }
    for (name, help, pick) in [
        (
            "seep_store_write_bytes_total",
            "Bytes written to the checkpoint store.",
            0,
        ),
        (
            "seep_store_write_seconds_total",
            "Cumulative checkpoint write latency.",
            1,
        ),
        (
            "seep_store_restores_total",
            "Checkpoints read back from the store.",
            2,
        ),
        (
            "seep_store_restore_bytes_total",
            "Bytes read back from the checkpoint store.",
            3,
        ),
        (
            "seep_store_restore_seconds_total",
            "Cumulative checkpoint restore latency.",
            4,
        ),
    ] {
        w.family(name, "counter", help);
        for (backend, io) in &s.store_io {
            let v = match pick {
                0 => io.write_bytes as f64,
                1 => io.write_us as f64 / 1e6,
                2 => io.restores as f64,
                3 => io.restore_bytes as f64,
                _ => io.restore_us as f64 / 1e6,
            };
            w.sample(name, &[("backend", backend)], v);
        }
    }

    w.family(
        "seep_operator_health",
        "gauge",
        "Per-operator health; the state label carries the derived state.",
    );
    for h in &s.health {
        let op = h.operator.raw().to_string();
        w.sample(
            "seep_operator_health",
            &[
                ("operator", op.as_str()),
                ("name", h.name.as_str()),
                ("state", h.state.label()),
            ],
            1.0,
        );
    }
    for (name, kind, help) in [
        (
            "seep_operator_queued_tuples",
            "gauge",
            "Inbound queue depth per operator instance.",
        ),
        (
            "seep_operator_utilization_ratio",
            "gauge",
            "Latest reported CPU utilisation per operator instance.",
        ),
        (
            "seep_operator_processed_tuples_total",
            "counter",
            "Tuples processed per operator instance.",
        ),
    ] {
        w.family(name, kind, help);
        for h in &s.health {
            let op = h.operator.raw().to_string();
            let labels = [("operator", op.as_str()), ("name", h.name.as_str())];
            let v = match name {
                "seep_operator_queued_tuples" => h.queued as f64,
                "seep_operator_utilization_ratio" => h.utilization,
                _ => h.processed as f64,
            };
            w.sample(name, &labels, v);
        }
    }

    w.family(
        "seep_placement_vm_occupancy",
        "gauge",
        "Operators resident on each occupied VM.",
    );
    for (vm, residents) in &s.occupancy {
        let vm = vm.to_string();
        w.sample(
            "seep_placement_vm_occupancy",
            &[("vm", vm.as_str())],
            *residents as f64,
        );
    }
    w.family(
        "seep_placement_slots_per_vm",
        "gauge",
        "Operator slots per VM.",
    );
    w.sample("seep_placement_slots_per_vm", &[], s.slots_per_vm as f64);

    w.family("seep_vms_running", "gauge", "Running VMs at the provider.");
    w.sample("seep_vms_running", &[], s.vms_running as f64);
    w.family("seep_vms_provisioning", "gauge", "VMs still provisioning.");
    w.sample("seep_vms_provisioning", &[], s.vms_provisioning as f64);
    w.family(
        "seep_vm_seconds_total",
        "counter",
        "Accumulated VM time across all VMs ever billed.",
    );
    w.sample("seep_vm_seconds_total", &[], s.vm_seconds);
    w.family(
        "seep_vm_cost_dollars_total",
        "counter",
        "Accumulated VM cost.",
    );
    w.sample("seep_vm_cost_dollars_total", &[], s.vm_cost);

    w.family(
        "seep_pool_hits_total",
        "counter",
        "VM acquisitions served instantly from the pool.",
    );
    w.sample("seep_pool_hits_total", &[], s.pool.hits as f64);
    w.family(
        "seep_pool_misses_total",
        "counter",
        "VM acquisitions that found the pool exhausted.",
    );
    w.sample("seep_pool_misses_total", &[], s.pool.misses as f64);
    for (name, help, v) in [
        (
            "seep_pool_ready_vms",
            "Ready VMs in the pool.",
            s.pool_ready,
        ),
        (
            "seep_pool_pending_vms",
            "VMs provisioning for the pool.",
            s.pool_pending,
        ),
        ("seep_pool_target_vms", "Pool target size.", s.pool_target),
    ] {
        w.family(name, "gauge", help);
        w.sample(name, &[], v as f64);
    }

    w.family(
        "seep_journal_events_total",
        "counter",
        "Reconfiguration events journalled.",
    );
    w.sample("seep_journal_events_total", &[], s.journal_events as f64);

    if !s.transport.is_empty() {
        w.family(
            "seep_transport_bytes_total",
            "counter",
            "Envelope payload bytes shipped per transport connection.",
        );
        for c in &s.transport {
            w.sample(
                "seep_transport_bytes_total",
                &[("peer", &c.peer), ("dir", &c.direction)],
                c.bytes as f64,
            );
        }
        w.family(
            "seep_transport_frames_total",
            "counter",
            "Frames shipped or reassembled per transport connection.",
        );
        for c in &s.transport {
            w.sample(
                "seep_transport_frames_total",
                &[("peer", &c.peer), ("dir", &c.direction)],
                c.frames as f64,
            );
        }
        w.family(
            "seep_transport_tuples_total",
            "counter",
            "Data tuples carried per transport connection.",
        );
        for c in &s.transport {
            w.sample(
                "seep_transport_tuples_total",
                &[("peer", &c.peer), ("dir", &c.direction)],
                c.tuples as f64,
            );
        }
        w.family(
            "seep_transport_reconnects_total",
            "counter",
            "Connection re-dials after transport failures.",
        );
        for c in &s.transport {
            w.sample(
                "seep_transport_reconnects_total",
                &[("peer", &c.peer), ("dir", &c.direction)],
                c.reconnects as f64,
            );
        }
    }

    if !s.heartbeat_lag.is_empty() {
        w.family(
            "seep_heartbeat_lag_ms",
            "gauge",
            "Milliseconds since each worker's last heartbeat.",
        );
        for (worker, lag) in &s.heartbeat_lag {
            w.sample("seep_heartbeat_lag_ms", &[("worker", worker)], *lag);
        }
    }

    w.out
}

/// Render the `/health` endpoint document as JSON.
pub fn render_health_json(s: &ObsSnapshot) -> String {
    let report = HealthReport::new(s.now_ms, s.health.clone());
    serde_json::to_string(&report)
        .unwrap_or_else(|_| "{\"status\":\"error\",\"operators\":[]}".to_string())
}

// ---------------------------------------------------------------------------
// Scrape-side mini parser, used by the exposition-correctness tests and the
// CI smoke check.
// ---------------------------------------------------------------------------

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSample {
    /// Metric name (family name plus any `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs in source order, unescaped.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl ParsedSample {
    /// The label value for `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The labels minus `except`, serialised to a canonical grouping key.
    fn group_key(&self, except: &str) -> String {
        let mut pairs: Vec<String> = self
            .labels
            .iter()
            .filter(|(k, _)| k != except)
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        pairs.sort();
        pairs.join("\u{1}")
    }
}

/// A parsed exposition: declared family types plus all samples.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    /// Family name → declared type (`counter`, `gauge`, `histogram`, ...).
    pub types: BTreeMap<String, String>,
    /// All samples in source order.
    pub samples: Vec<ParsedSample>,
}

impl Exposition {
    /// All samples of one metric name.
    pub fn of(&self, name: &str) -> Vec<&ParsedSample> {
        self.samples.iter().filter(|s| s.name == name).collect()
    }

    /// The single sample of `name` with no labels; error text otherwise.
    pub fn scalar(&self, name: &str) -> Result<f64, String> {
        let matches = self.of(name);
        match matches.as_slice() {
            [one] => Ok(one.value),
            other => Err(format!("{name}: expected 1 sample, found {}", other.len())),
        }
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" | "Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => other
            .parse::<f64>()
            .map_err(|_| format!("bad sample value {other:?}")),
    }
}

/// Parse one `name{labels} value` line.
fn parse_sample_line(line: &str) -> Result<ParsedSample, String> {
    let (name_and_labels, value_str) = match line.find('{') {
        Some(brace) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| format!("unclosed label block: {line:?}"))?;
            (
                (&line[..brace], Some(&line[brace + 1..close])),
                line[close + 1..].trim(),
            )
        }
        None => {
            let mut parts = line.splitn(2, ' ');
            let name = parts.next().unwrap_or("");
            let rest = parts.next().unwrap_or("").trim();
            ((name, None), rest)
        }
    };
    let (name, label_block) = name_and_labels;
    let name = name.trim();
    if !valid_metric_name(name) {
        return Err(format!("invalid metric name {name:?}"));
    }
    let mut labels = Vec::new();
    if let Some(block) = label_block {
        let mut chars = block.chars().peekable();
        loop {
            while matches!(chars.peek(), Some(',') | Some(' ')) {
                chars.next();
            }
            if chars.peek().is_none() {
                break;
            }
            let mut label_name = String::new();
            for c in chars.by_ref() {
                if c == '=' {
                    break;
                }
                label_name.push(c);
            }
            if !valid_label_name(label_name.trim()) {
                return Err(format!("invalid label name {label_name:?} in {line:?}"));
            }
            if chars.next() != Some('"') {
                return Err(format!("label value not quoted in {line:?}"));
            }
            let mut value = String::new();
            let mut closed = false;
            while let Some(c) = chars.next() {
                match c {
                    '\\' => match chars.next() {
                        Some('\\') => value.push('\\'),
                        Some('"') => value.push('"'),
                        Some('n') => value.push('\n'),
                        other => return Err(format!("bad escape {other:?} in {line:?}")),
                    },
                    '"' => {
                        closed = true;
                        break;
                    }
                    c => value.push(c),
                }
            }
            if !closed {
                return Err(format!("unterminated label value in {line:?}"));
            }
            labels.push((label_name.trim().to_string(), value));
        }
    }
    // The exposition format allows an optional timestamp after the value; we
    // never emit one, so reject anything beyond a single token.
    let mut value_parts = value_str.split_whitespace();
    let value = parse_value(
        value_parts
            .next()
            .ok_or_else(|| format!("missing value in {line:?}"))?,
    )?;
    if value_parts.next().is_some() {
        return Err(format!("unexpected trailing token in {line:?}"));
    }
    Ok(ParsedSample {
        name: name.to_string(),
        labels,
        value,
    })
}

/// Resolve the family a sample belongs to: the name itself, or — for a
/// declared histogram — the name with its `_bucket`/`_sum`/`_count` suffix
/// stripped.
fn family_of<'a>(name: &'a str, types: &BTreeMap<String, String>) -> Option<&'a str> {
    if types.contains_key(name) {
        return Some(name);
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return Some(base);
            }
        }
    }
    None
}

/// Parse an exposition document: syntax of every line, metric/label name
/// validity, and that every sample belongs to a `# TYPE`-declared family.
pub fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut exp = Exposition::default();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| format!("line {}: {msg}", lineno + 1);
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.splitn(2, ' ');
            let name = parts.next().unwrap_or("").to_string();
            let kind = parts.next().unwrap_or("").trim().to_string();
            if !valid_metric_name(&name) {
                return Err(err(format!("invalid family name {name:?}")));
            }
            if !matches!(
                kind.as_str(),
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(err(format!("invalid family type {kind:?}")));
            }
            if exp.types.insert(name.clone(), kind).is_some() {
                return Err(err(format!("duplicate # TYPE for {name}")));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or("");
            if !valid_metric_name(name) {
                return Err(err(format!("invalid family name {name:?}")));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // plain comment
        }
        let sample = parse_sample_line(line).map_err(err)?;
        if family_of(&sample.name, &exp.types).is_none() {
            return Err(format!(
                "line {}: sample {} has no # TYPE declaration",
                lineno + 1,
                sample.name
            ));
        }
        exp.samples.push(sample);
    }
    Ok(exp)
}

/// Parse and semantically validate an exposition: counters must be finite
/// and non-negative, and every histogram must have monotone cumulative
/// buckets ending in `+Inf`, with `_count` equal to the `+Inf` bucket and a
/// `_sum` series present for every label group.
pub fn validate_exposition(text: &str) -> Result<Exposition, String> {
    let exp = parse_exposition(text)?;
    for s in &exp.samples {
        let family = family_of(&s.name, &exp.types).expect("checked during parse");
        let kind = exp.types[family].as_str();
        if kind == "counter" && !(s.value.is_finite() && s.value >= 0.0) {
            return Err(format!("counter {} has value {}", s.name, s.value));
        }
    }
    for (family, kind) in &exp.types {
        if kind != "histogram" {
            continue;
        }
        // Group buckets by their labels minus `le`.
        let mut groups: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
        for s in exp.of(&format!("{family}_bucket")) {
            let le = s
                .label("le")
                .ok_or_else(|| format!("{family}_bucket sample without le label"))?;
            let bound = parse_value(le).map_err(|e| format!("{family}: {e}"))?;
            groups
                .entry(s.group_key("le"))
                .or_default()
                .push((bound, s.value));
        }
        if groups.is_empty() {
            return Err(format!("histogram {family} has no buckets"));
        }
        for (key, mut buckets) in groups {
            buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("le bounds are ordered"));
            let mut prev = -1.0;
            for (_, count) in &buckets {
                if *count < prev {
                    return Err(format!("histogram {family}{{{key}}} buckets not monotone"));
                }
                prev = *count;
            }
            let (last_bound, last_count) = *buckets.last().expect("non-empty");
            if last_bound != f64::INFINITY {
                return Err(format!("histogram {family}{{{key}}} missing +Inf bucket"));
            }
            let count_series: Vec<&ParsedSample> = exp
                .of(&format!("{family}_count"))
                .into_iter()
                .filter(|s| s.group_key("le") == key)
                .collect();
            match count_series.as_slice() {
                [one] if one.value == last_count => {}
                [one] => {
                    return Err(format!(
                        "histogram {family}: _count {} != +Inf bucket {}",
                        one.value, last_count
                    ));
                }
                _ => return Err(format!("histogram {family}: missing _count series")),
            }
            let sums = exp
                .of(&format!("{family}_sum"))
                .into_iter()
                .filter(|s| s.group_key("le") == key)
                .count();
            if sums != 1 {
                return Err(format!("histogram {family}: missing _sum series"));
            }
        }
    }
    Ok(exp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seep_core::{HealthState, LogicalOpId, OperatorId};

    fn snapshot_with_everything() -> ObsSnapshot {
        let metrics = Metrics::new();
        for i in 1..=50u64 {
            metrics.record_latency_us(i * 500);
        }
        metrics.record_store_write("tiered", 4_096, 120, false);
        metrics.record_store_write("tiered", 512, 15, true);
        metrics.record_store_restore("tiered", 4_608, 200);
        let mut s = ObsSnapshot {
            now_ms: 42_000,
            latency: {
                let mut h = LatencyHistogram::new();
                for i in 1..=50u64 {
                    h.record_us(i * 500);
                }
                h.snapshot()
            },
            metrics: metrics.snapshot(),
            store_io: metrics.store_io_all(),
            ..ObsSnapshot::default()
        };
        s.reconfig_phases = vec![ReconfigPhaseTotals {
            kind: "scale_out",
            count: 2,
            drain_us: 10,
            checkpoint_us: 20,
            rewrite_us: 30,
            transform_us: 40,
            restore_us: 50,
            commit_us: 60,
            replay_us: 70,
            total_us: 280,
        }];
        s.health = vec![
            OperatorHealth {
                operator: OperatorId::new(7),
                logical: LogicalOpId(2),
                // Deliberately hostile name: quote, backslash and newline
                // must all round-trip through the label escaping.
                name: "count\"er\\one\nline".into(),
                state: HealthState::Backpressured,
                queued: 123,
                utilization: 0.83,
                processed: 4_567,
                vm: Some(3),
            },
            OperatorHealth {
                operator: OperatorId::new(8),
                logical: LogicalOpId(2),
                name: "counter[1]".into(),
                state: HealthState::Ok,
                queued: 0,
                utilization: 0.10,
                processed: 999,
                vm: Some(4),
            },
        ];
        s.occupancy = vec![(3, 2), (4, 1)];
        s.slots_per_vm = 2;
        s.vms_running = 5;
        s.vms_provisioning = 1;
        s.vm_seconds = 1_234.5;
        s.vm_cost = 0.42;
        s.pool = PoolStats { hits: 9, misses: 1 };
        s.pool_ready = 2;
        s.pool_pending = 1;
        s.pool_target = 3;
        s.journal_events = 6;
        s.transport = vec![
            TransportConn {
                peer: "127.0.0.1:7101".into(),
                direction: "out".into(),
                bytes: 10_240,
                frames: 64,
                tuples: 600,
                reconnects: 1,
            },
            TransportConn {
                peer: "127.0.0.1:52210".into(),
                direction: "in".into(),
                bytes: 8_192,
                frames: 50,
                tuples: 480,
                reconnects: 0,
            },
        ];
        s.heartbeat_lag = vec![("w1".into(), 120.0), ("w2".into(), 35.5)];
        s
    }

    #[test]
    fn exposition_parses_and_validates() {
        let s = snapshot_with_everything();
        let text = render_prometheus(&s);
        let exp = validate_exposition(&text).expect("exposition must be valid");
        assert!(exp.samples.len() > 40, "expected a rich exposition");
        // Every declared family name is well-formed.
        for name in exp.types.keys() {
            assert!(valid_metric_name(name), "bad family name {name}");
        }
    }

    /// Per-connection transport counters and heartbeat lag render as
    /// labelled families and survive the validator.
    #[test]
    fn transport_families_expose_per_connection_counters() {
        let s = snapshot_with_everything();
        let text = render_prometheus(&s);
        let exp = validate_exposition(&text).expect("exposition must stay valid");
        let bytes = exp.of("seep_transport_bytes_total");
        assert_eq!(bytes.len(), 2);
        let out = bytes
            .iter()
            .find(|p| p.label("dir") == Some("out"))
            .expect("outbound connection exported");
        assert_eq!(out.label("peer"), Some("127.0.0.1:7101"));
        assert_eq!(out.value, 10_240.0);
        assert_eq!(exp.of("seep_transport_frames_total").len(), 2);
        assert_eq!(exp.of("seep_transport_tuples_total").len(), 2);
        let reconnects = exp.of("seep_transport_reconnects_total");
        assert_eq!(reconnects.iter().map(|p| p.value).sum::<f64>(), 1.0);
        let lag = exp.of("seep_heartbeat_lag_ms");
        assert_eq!(lag.len(), 2);
        let w2 = lag
            .iter()
            .find(|p| p.label("worker") == Some("w2"))
            .expect("w2 exported");
        assert_eq!(w2.value, 35.5);
    }

    /// A snapshot with no transport traffic (the in-process plane) renders
    /// no transport families at all.
    #[test]
    fn transport_families_absent_without_connections() {
        let text = render_prometheus(&ObsSnapshot::default());
        assert!(!text.contains("seep_transport_"));
        assert!(!text.contains("seep_heartbeat_lag_ms"));
        validate_exposition(&text).expect("default exposition stays valid");
    }

    #[test]
    fn hostile_label_values_roundtrip() {
        let s = snapshot_with_everything();
        let text = render_prometheus(&s);
        let exp = validate_exposition(&text).unwrap();
        let health = exp.of("seep_operator_health");
        assert_eq!(health.len(), 2);
        let hostile = health
            .iter()
            .find(|p| p.label("operator") == Some("7"))
            .expect("operator 7 exported");
        assert_eq!(hostile.label("name"), Some("count\"er\\one\nline"));
        assert_eq!(hostile.label("state"), Some("backpressured"));
        assert_eq!(hostile.value, 1.0);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_consistent() {
        let s = snapshot_with_everything();
        let text = render_prometheus(&s);
        let exp = validate_exposition(&text).unwrap();
        let buckets = exp.of("seep_latency_seconds_bucket");
        assert_eq!(buckets.len(), seep_core::LATENCY_BUCKET_BOUNDS_US.len() + 1);
        assert_eq!(exp.scalar("seep_latency_seconds_count").unwrap(), 50.0);
        let sum = exp.scalar("seep_latency_seconds_sum").unwrap();
        let expect = (1..=50u64).map(|i| i * 500).sum::<u64>() as f64 / 1e6;
        assert!((sum - expect).abs() < 1e-9, "{sum} vs {expect}");
    }

    #[test]
    fn counters_and_gauges_expose_expected_values() {
        let s = snapshot_with_everything();
        let text = render_prometheus(&s);
        let exp = validate_exposition(&text).unwrap();
        assert_eq!(
            exp.scalar("seep_virtual_time_milliseconds").unwrap(),
            42_000.0
        );
        assert_eq!(exp.scalar("seep_pool_hits_total").unwrap(), 9.0);
        assert_eq!(exp.scalar("seep_journal_events_total").unwrap(), 6.0);
        assert_eq!(exp.scalar("seep_placement_slots_per_vm").unwrap(), 2.0);
        let writes = exp.of("seep_store_writes_total");
        assert_eq!(writes.len(), 2, "full + incremental for one backend");
        let occ = exp.of("seep_placement_vm_occupancy");
        assert_eq!(occ.len(), 2);
        let phases = exp.of("seep_reconfig_phase_seconds_total");
        assert_eq!(phases.len(), 8, "eight phases for one kind");
        assert!(phases.iter().all(|p| p.label("kind") == Some("scale_out")));
    }

    #[test]
    fn default_snapshot_renders_validly() {
        // Pre-deployment scrape: no operators, no stores, empty histogram.
        let text = render_prometheus(&ObsSnapshot::default());
        let exp = validate_exposition(&text).expect("empty exposition still valid");
        assert_eq!(exp.scalar("seep_latency_seconds_count").unwrap(), 0.0);
        assert!(exp.of("seep_operator_health").is_empty());
    }

    #[test]
    fn parser_rejects_malformed_expositions() {
        // Sample without a TYPE declaration.
        assert!(parse_exposition("seep_x_total 1\n").is_err());
        // Invalid metric name.
        assert!(parse_exposition("# TYPE 9bad counter\n").is_err());
        // Unquoted label value.
        let bad = "# TYPE seep_x gauge\nseep_x{a=1} 1\n";
        assert!(parse_exposition(bad).is_err());
        // Histogram without +Inf.
        let no_inf = "# TYPE seep_h histogram\n\
                      seep_h_bucket{le=\"1\"} 1\nseep_h_sum 1\nseep_h_count 1\n";
        assert!(validate_exposition(no_inf).is_err());
        // Non-monotone buckets.
        let shrink = "# TYPE seep_h histogram\n\
                      seep_h_bucket{le=\"1\"} 5\nseep_h_bucket{le=\"+Inf\"} 3\n\
                      seep_h_sum 1\nseep_h_count 3\n";
        assert!(validate_exposition(shrink).is_err());
        // _count disagreeing with the +Inf bucket.
        let skew = "# TYPE seep_h histogram\n\
                    seep_h_bucket{le=\"+Inf\"} 3\nseep_h_sum 1\nseep_h_count 4\n";
        assert!(validate_exposition(skew).is_err());
        // Negative counter.
        let neg = "# TYPE seep_c counter\nseep_c -1\n";
        assert!(validate_exposition(neg).is_err());
    }

    #[test]
    fn health_json_reports_degraded_on_failure() {
        let mut s = snapshot_with_everything();
        let json = render_health_json(&s);
        assert!(json.contains("\"status\":\"ok\""), "{json}");
        s.health[1].state = HealthState::Failed;
        let json = render_health_json(&s);
        assert!(json.contains("\"status\":\"degraded\""), "{json}");
        assert!(json.contains("\"operators\""), "{json}");
    }
}
