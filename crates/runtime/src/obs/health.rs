//! Per-operator health derivation.
//!
//! The runtime does not store a health state anywhere — health is *derived*
//! on demand from facts it already tracks: worker failure flags, inbound
//! queue depth against the [`crate::ScalingPolicy::backpressure_queue`]
//! watermark, the latest CPU utilisation report, and whether a
//! reconfiguration plan committed at the current virtual instant. That keeps
//! the state machine impossible to desynchronise from reality.
//!
//! Precedence, highest first: `Failed` (the worker's failure flag is set),
//! `Recovering` (a recovery plan committed at the current instant),
//! `Reconfiguring` (any other plan committed at the current instant),
//! `Backpressured` (inbound queue at or above the watermark), `Ok`.

use serde::{Deserialize, Serialize};

use seep_core::{HealthState, LogicalOpId, OperatorId};

/// Why a logical operator is marked busy by the health derivation: set when
/// a plan commits at the current virtual instant, cleared as soon as time
/// advances past it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanActivity {
    /// A scale-out / scale-in / rebalance / consolidate plan just committed.
    Reconfiguring,
    /// A recovery plan just committed.
    Recovering,
}

impl PlanActivity {
    /// The health state this activity maps to.
    pub fn state(self) -> HealthState {
        match self {
            PlanActivity::Reconfiguring => HealthState::Reconfiguring,
            PlanActivity::Recovering => HealthState::Recovering,
        }
    }
}

/// Health of one operator instance, as reported by
/// [`crate::JobHandle::health`] and the `/health` endpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorHealth {
    /// Physical instance id.
    pub operator: OperatorId,
    /// Logical operator the instance partitions.
    pub logical: LogicalOpId,
    /// Logical operator name.
    pub name: String,
    /// Derived health state.
    pub state: HealthState,
    /// Inbound queue depth (tuples) at derivation time.
    pub queued: usize,
    /// Latest reported CPU utilisation in `[0, 1]` (0 when no report yet).
    pub utilization: f64,
    /// Tuples processed by the instance so far.
    pub processed: u64,
    /// Hosting VM, when placed.
    pub vm: Option<u64>,
}

/// The `/health` endpoint document: overall status plus the per-operator
/// breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// `"ok"` when no operator is `Failed`, `"degraded"` otherwise.
    pub status: String,
    /// Virtual time of the snapshot (ms).
    pub now_ms: u64,
    /// Per-instance health.
    pub operators: Vec<OperatorHealth>,
}

impl HealthReport {
    /// Build a report; status is `"degraded"` iff any instance is `Failed`.
    pub fn new(now_ms: u64, operators: Vec<OperatorHealth>) -> Self {
        let degraded = operators.iter().any(|o| o.state == HealthState::Failed);
        HealthReport {
            status: if degraded { "degraded" } else { "ok" }.to_string(),
            now_ms,
            operators,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(id: u64, state: HealthState) -> OperatorHealth {
        OperatorHealth {
            operator: OperatorId::new(id),
            logical: LogicalOpId(1),
            name: "counter".into(),
            state,
            queued: 0,
            utilization: 0.0,
            processed: 0,
            vm: Some(id),
        }
    }

    #[test]
    fn activity_maps_to_states() {
        assert_eq!(
            PlanActivity::Reconfiguring.state(),
            HealthState::Reconfiguring
        );
        assert_eq!(PlanActivity::Recovering.state(), HealthState::Recovering);
    }

    #[test]
    fn report_degrades_only_on_failed_instances() {
        let ok = HealthReport::new(5, vec![op(1, HealthState::Ok)]);
        assert_eq!(ok.status, "ok");
        let busy = HealthReport::new(
            5,
            vec![op(1, HealthState::Backpressured), op(2, HealthState::Ok)],
        );
        assert_eq!(busy.status, "ok", "backpressure is not an outage");
        let bad = HealthReport::new(5, vec![op(1, HealthState::Failed)]);
        assert_eq!(bad.status, "degraded");
        assert_eq!(bad.now_ms, 5);
    }
}
