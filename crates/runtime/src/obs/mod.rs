//! The ops plane: Prometheus exposition, the reconfiguration event journal,
//! and per-operator health.
//!
//! Three pieces, deliberately decoupled from the data path:
//!
//! * [`prometheus`] renders an [`ObsSnapshot`] as Prometheus text format and
//!   ships the scrape-side parser the correctness tests round-trip through.
//! * [`journal`] records every executed reconfiguration plan — kind,
//!   trigger, per-phase timings, placement delta, VM churn — in a bounded
//!   ring with an optional JSONL sink and a replay pretty-printer.
//! * [`health`] derives per-operator health states from worker queue depth,
//!   utilisation reports and in-flight plans.
//!
//! The runtime refreshes one shared snapshot ([`ObsShared`]) after every
//! state change; the [`ObsServer`] scrape endpoint renders from that
//! snapshot on demand, so observation never blocks reconfiguration.

pub mod health;
pub mod journal;
pub mod prometheus;
pub mod server;

pub use health::{HealthReport, OperatorHealth, PlanActivity};
pub use journal::{Journal, JournalEvent, JournalKind, PlanTrigger, SlotBinding};
pub use prometheus::{
    parse_exposition, render_health_json, render_prometheus, validate_exposition, Exposition,
    ObsSnapshot, ParsedSample, ReconfigPhaseTotals, TransportConn,
};
pub use server::ObsServer;

use parking_lot::Mutex;

/// The snapshot cell shared between the runtime (writer) and the scrape
/// endpoint (reader).
#[derive(Debug, Default)]
pub struct ObsShared {
    snapshot: Mutex<ObsSnapshot>,
}

impl ObsShared {
    /// Replace the published snapshot.
    pub fn update(&self, snapshot: ObsSnapshot) {
        *self.snapshot.lock() = snapshot;
    }

    /// A copy of the current snapshot.
    pub fn snapshot(&self) -> ObsSnapshot {
        self.snapshot.lock().clone()
    }

    /// Render the current snapshot as Prometheus text format.
    pub fn render_prometheus(&self) -> String {
        render_prometheus(&self.snapshot.lock())
    }

    /// Render the current snapshot as the `/health` JSON document.
    pub fn render_health_json(&self) -> String {
        render_health_json(&self.snapshot.lock())
    }
}
