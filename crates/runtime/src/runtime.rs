//! The SPS runtime: deployment, checkpointing, failure handling and the
//! integrated fault-tolerant reconfiguration engine (Algorithm 3 as a
//! [`crate::reconfig::ReconfigPlan`]).
//!
//! [`Runtime::scale_out`], [`Runtime::scale_in`], [`Runtime::recover`],
//! [`Runtime::rebalance_operator`] and [`Runtime::consolidate`] are thin
//! plan builders over the shared executor in [`crate::reconfig`]; the
//! drain/pause/checkpoint/rewrite/restore/replay choreography lives there,
//! once, and resolves VM slots through the [`crate::placement`] layer.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Instant;

use seep_cloud::{CloudProvider, CpuMonitor, UtilizationReport, VmPool};
use seep_core::operator::OperatorFactory;
use seep_core::{
    Checkpoint, Error, ExecutionGraph, IncrementalCheckpoint, Key, LogicalOpId, OperatorId,
    OperatorKind, QueryGraph, Result, StreamId, TimestampVec,
};
use seep_net::Network;
use seep_store::{BackupCoordinator, StoreStats};

use crate::bottleneck::BottleneckDetector;
use crate::config::RuntimeConfig;
use crate::metrics::{
    CheckpointRecord, ConsolidateRecord, Metrics, RebalanceRecord, ReconfigTiming, RecoveryRecord,
    ScaleInRecord, ScaleOutRecord,
};
use crate::obs::{
    Journal, JournalEvent, JournalKind, ObsShared, ObsSnapshot, OperatorHealth, PlanActivity,
    PlanTrigger, ReconfigPhaseTotals, SlotBinding,
};
use crate::placement::Placement;
use crate::reconfig::ReconfigPlan;
use crate::recovery::RecoveryStrategy;
use crate::worker::{SharedClock, WorkerCore};

/// Result of a scale-out (or recovery) action.
#[derive(Debug, Clone)]
pub struct ScaleOutOutcome {
    /// The new partitioned operator instances replacing the old one.
    pub new_operators: Vec<OperatorId>,
    /// Tuples replayed from upstream buffers to bring the new partitions up
    /// to date.
    pub replayed_tuples: usize,
}

/// Result of a scale-in (operator merge) action.
#[derive(Debug, Clone)]
pub struct ScaleInOutcome {
    /// The merged operator replacing the two partitions. It is hosted on the
    /// VM that carried `target`, so no fresh VM is consumed.
    pub merged_operator: OperatorId,
    /// The VM freed by the merge, already released back to the provider.
    /// `None` when the victim shared its VM with other partitions (multi-slot
    /// placements), in which case only the slot was vacated and billing
    /// continues for the co-residents.
    pub released_vm: Option<seep_cloud::VmId>,
    /// Tuples replayed from the merged checkpoint's buffers and from upstream
    /// output buffers to bring the merged operator up to date.
    pub replayed_tuples: usize,
}

/// Result of a rebalance (repartition-in-place) action.
#[derive(Debug, Clone)]
pub struct RebalanceOutcome {
    /// The new partitions, in key order, hosted on the same VMs the replaced
    /// partitions occupied.
    pub new_operators: Vec<OperatorId>,
    /// Tuples replayed from restored and upstream buffers.
    pub replayed_tuples: usize,
    /// How the key range was re-split and the imbalance the sampled keys
    /// predict for the new boundaries.
    pub timing: ReconfigTiming,
}

/// Result of a consolidation (partition bin-packing) action.
#[derive(Debug, Clone)]
pub struct ConsolidateOutcome {
    /// The moved partitions, in key order. Parallelism is unchanged; only
    /// the VM placement differs.
    pub new_operators: Vec<OperatorId>,
    /// VMs emptied by the packing, already released back to the provider
    /// (billing stops).
    pub released_vms: Vec<seep_cloud::VmId>,
    /// Tuples replayed from restored and upstream buffers.
    pub replayed_tuples: usize,
    /// Per-phase wall-clock cost of the plan.
    pub timing: ReconfigTiming,
}

/// The stream processing system.
pub struct Runtime {
    pub(crate) config: RuntimeConfig,
    pub(crate) network: Network,
    graph: Option<ExecutionGraph>,
    factories: HashMap<LogicalOpId, Arc<dyn OperatorFactory>>,
    pub(crate) workers: BTreeMap<OperatorId, WorkerCore>,
    pub(crate) backup: BackupCoordinator,
    provider: Arc<CloudProvider>,
    pub(crate) pool: VmPool,
    pub(crate) monitor: CpuMonitor,
    detector: BottleneckDetector,
    pub(crate) metrics: Arc<Metrics>,
    pub(crate) clocks: HashMap<LogicalOpId, SharedClock>,
    /// Partition → VM-slot mapping (with per-VM capacity): the placement
    /// layer every reconfiguration plan resolves VMs through.
    pub(crate) placement: Placement,
    pub(crate) now_ms: u64,
    pub(crate) epoch: Instant,
    pub(crate) last_checkpoint_ms: HashMap<OperatorId, u64>,
    pub(crate) checkpoint_seq: HashMap<OperatorId, u64>,
    /// Last checkpoint successfully backed up per operator; the base against
    /// which incremental backups are diffed.
    pub(crate) last_backed_up: HashMap<OperatorId, Checkpoint>,
    last_tick_ms: u64,
    last_report_ms: u64,
    auto_scale: bool,
    /// Logical operators the control loop has already rebalanced since their
    /// last topology change. One rebalance per shape mirrors the simulator's
    /// one-shot `balanced` flag: if re-drawing the boundary did not relieve
    /// the hot partition (e.g. a single mega-hot key), the next trigger must
    /// scale out instead of paying the same disruption every report
    /// interval. A scale out or scale in of the operator re-arms it.
    rebalanced: std::collections::HashSet<LogicalOpId>,
    /// The reconfiguration event journal: every executed plan appends one
    /// event here (ops plane).
    journal: Arc<Journal>,
    /// Snapshot cell shared with the scrape endpoint; refreshed after every
    /// state change while a server holds the other reference.
    obs: Arc<ObsShared>,
    /// Logical operators with a plan committed at the stamped virtual
    /// instant — the health derivation reports them `Reconfiguring` /
    /// `Recovering` until time advances past the stamp.
    activity: HashMap<LogicalOpId, (PlanActivity, u64)>,
    /// What initiates the plans currently being built (`AutoScale` inside
    /// the control loop, `Manual` otherwise).
    plan_trigger: PlanTrigger,
}

impl Runtime {
    /// Create a runtime with the given configuration. The query is deployed
    /// separately with [`deploy`](Self::deploy).
    pub fn new(config: RuntimeConfig) -> Self {
        let provider = Arc::new(CloudProvider::new(config.provider.clone()));
        let pool = VmPool::new(provider.clone(), config.pool.clone(), 0);
        let detector = BottleneckDetector::new(config.scaling_policy);
        Runtime {
            network: Network::new(config.channel_capacity),
            graph: None,
            factories: HashMap::new(),
            workers: BTreeMap::new(),
            backup: BackupCoordinator::new(),
            provider,
            pool,
            monitor: CpuMonitor::new(32),
            detector,
            metrics: Arc::new(Metrics::new()),
            clocks: HashMap::new(),
            placement: Placement::new(config.pool.slots_per_vm),
            now_ms: 0,
            epoch: Instant::now(),
            last_checkpoint_ms: HashMap::new(),
            checkpoint_seq: HashMap::new(),
            last_backed_up: HashMap::new(),
            last_tick_ms: 0,
            last_report_ms: 0,
            auto_scale: false,
            rebalanced: std::collections::HashSet::new(),
            journal: Arc::new(Journal::default()),
            obs: Arc::new(ObsShared::default()),
            activity: HashMap::new(),
            plan_trigger: PlanTrigger::Manual,
            config,
        }
    }

    /// Enable or disable automatic scale out driven by the bottleneck
    /// detector (§5.1). Disabled by default so experiments can trigger scale
    /// out explicitly.
    pub fn set_auto_scale(&mut self, enabled: bool) {
        self.auto_scale = enabled;
    }

    /// Deploy a query: one VM and one worker per logical operator
    /// (parallelisation level 1, Fig. 3a). `factories` provides a fresh
    /// operator instance per logical operator, used both at deployment and
    /// whenever new partitions are created during scale out or recovery.
    ///
    /// This is the low-level layer: the query graph and the factory map are
    /// paired here, and a missing or mismatched pairing is rejected. The
    /// typed [`crate::api::Job`] builder constructs both together, making
    /// those mismatches unrepresentable.
    ///
    /// A runtime hosts at most one query: a second `deploy` returns
    /// [`Error::AlreadyDeployed`] instead of silently clobbering the running
    /// workers, clocks and execution graph.
    pub fn deploy(
        &mut self,
        query: QueryGraph,
        factories: HashMap<LogicalOpId, Arc<dyn OperatorFactory>>,
    ) -> Result<()> {
        if self.graph.is_some() {
            return Err(Error::AlreadyDeployed);
        }
        for op in query.operators() {
            if !factories.contains_key(&op.id) {
                return Err(Error::InvalidGraph(format!(
                    "no operator factory registered for {} ({})",
                    op.id, op.name
                )));
            }
        }
        // The reverse mismatch fails just as loudly: a factory keyed by an id
        // that is not in the query is a typo waiting to deploy the wrong
        // operator silently.
        for id in factories.keys() {
            if query.operator(*id).is_err() {
                return Err(Error::InvalidGraph(format!(
                    "operator factory registered for {id}, which is not in the query graph"
                )));
            }
        }
        let graph = ExecutionGraph::deploy(query)?;
        self.factories = factories;
        for logical in graph.query().operators().map(|o| o.id).collect::<Vec<_>>() {
            self.clocks.insert(logical, SharedClock::new());
        }
        let instances: Vec<_> = graph.instances().cloned().collect();
        self.graph = Some(graph);
        for instance in instances {
            self.create_worker(&instance)?;
        }
        Ok(())
    }

    pub(crate) fn graph(&self) -> &ExecutionGraph {
        self.graph.as_ref().expect("query deployed")
    }

    pub(crate) fn graph_mut(&mut self) -> &mut ExecutionGraph {
        self.graph.as_mut().expect("query deployed")
    }

    /// The execution graph (for inspection by experiments).
    pub fn execution_graph(&self) -> &ExecutionGraph {
        self.graph()
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The cloud provider backing the deployment.
    pub fn provider(&self) -> &CloudProvider {
        &self.provider
    }

    /// Number of VMs currently running.
    pub fn vm_count(&self) -> usize {
        self.provider.running_count()
    }

    /// Current virtual time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Current parallelisation level of a logical operator.
    pub fn parallelism(&self, logical: LogicalOpId) -> usize {
        self.graph().parallelism(logical)
    }

    /// The physical instances of a logical operator.
    pub fn partitions(&self, logical: LogicalOpId) -> Vec<OperatorId> {
        self.graph().partitions(logical).to_vec()
    }

    /// Run a closure against the operator hosted by `instance` (for result
    /// collection and assertions). Returns `None` if the worker is gone.
    pub fn with_operator<R>(
        &self,
        instance: OperatorId,
        f: impl FnOnce(&dyn seep_core::StatefulOperator) -> R,
    ) -> Option<R> {
        self.workers.get(&instance).map(|w| f(w.operator()))
    }

    /// Total tuples queued on worker inbound channels (0 when fully drained).
    pub fn queued_tuples(&self) -> usize {
        self.workers.values().map(WorkerCore::queued).sum()
    }

    /// Flush every worker's partially filled output batches downstream. A
    /// no-op at batch size 1; the reconfiguration executor calls this before
    /// any plan drains, pauses or captures state so batch boundaries cannot
    /// leak into the fail-before-rewrite protocol. Returns tuples flushed.
    pub fn flush_all_pending(&mut self) -> usize {
        let network = self.network.clone();
        let metrics = self.metrics.clone();
        let mut flushed = 0;
        for worker in self.workers.values_mut() {
            flushed += worker.flush_pending(&network, &metrics);
        }
        flushed
    }

    /// The last timestamp issued by the shared output clock of `logical`
    /// (0 if the operator is unknown). Exposed so equivalence tests can
    /// assert batched and per-tuple runs issue identical clock sequences.
    pub fn emit_clock(&self, logical: LogicalOpId) -> u64 {
        self.clocks.get(&logical).map(|c| c.last()).unwrap_or(0)
    }

    pub(crate) fn create_worker(
        &mut self,
        instance: &seep_core::graph::OperatorInstance,
    ) -> Result<()> {
        // Under the Pack placement preference, fill a partially occupied VM
        // slot before drawing a fresh machine. The retiring partitions of an
        // in-flight plan still occupy their slots at this point, so only
        // genuinely free capacity is packed.
        if self.config.placement == crate::config::PlacementPreference::Pack {
            let packed = self
                .placement
                .occupied_vms()
                .into_iter()
                .find(|vm| self.placement.free_slots(*vm, &[]) > 0);
            if let Some(vm) = packed {
                return self.create_worker_on(instance, vm, &[]);
            }
        }
        let vm = self
            .pool
            .acquire(self.now_ms)
            .ok_or_else(|| Error::Invariant("VM pool exhausted".into()))?;
        self.create_worker_on(instance, vm, &[])
    }

    /// Create a worker for `instance` hosted on an already-running VM — used
    /// by scale in, rebalancing and consolidation, where the new operators
    /// take over slots on the replaced partitions' VMs instead of drawing
    /// fresh ones from the pool. `outgoing` names the instances the same
    /// plan is retiring, whose slots the placement may treat as free.
    pub(crate) fn create_worker_on(
        &mut self,
        instance: &seep_core::graph::OperatorInstance,
        vm: seep_cloud::VmId,
        outgoing: &[OperatorId],
    ) -> Result<()> {
        let receiver = self.network.register(instance.id);
        let factory = self
            .factories
            .get(&instance.logical)
            .ok_or(Error::UnknownLogicalOperator(instance.logical.0))?;
        let operator = factory.build();

        let graph = self.graph();
        let query = graph.query();
        let kind = query.operator(instance.logical)?.kind;
        let downstream = query.downstream(instance.logical);
        let is_sink = downstream.is_empty();
        let keep_buffers =
            self.config.strategy.intermediate_buffers() || kind == OperatorKind::Source;
        let mut routing = BTreeMap::new();
        for ld in downstream {
            routing.insert(ld, graph.routing(ld)?.clone());
        }
        let clock = self
            .clocks
            .get(&instance.logical)
            .cloned()
            .unwrap_or_default();
        let mut worker = WorkerCore::new(
            instance.id,
            instance.logical,
            operator,
            receiver,
            routing,
            clock,
            is_sink,
            keep_buffers,
        );
        if self.config.latency_probe_at_stateful && worker.stateful {
            worker.latency_probe = true;
        }
        worker.out_batch = self.config.batch.size_for(instance.logical);
        worker.latency_sample_every = u64::from(self.config.latency_sample_every.max(1));
        // Every VM hosts one checkpoint store of the configured backend for
        // the downstream operators that back up to it.
        let store = self
            .config
            .store
            .build(&format!("op-{}", instance.id.raw()))?;
        self.backup.register_store(instance.id, store);
        self.workers.insert(instance.id, worker);
        self.placement.assign(instance.id, vm, outgoing)?;
        self.checkpoint_seq.insert(instance.id, 0);
        self.last_checkpoint_ms.insert(instance.id, self.now_ms);
        Ok(())
    }

    /// Inject a source tuple into the (first partition of the) given source
    /// operator, as the data feeder would.
    pub fn inject(&mut self, source: LogicalOpId, key: Key, payload: impl Into<bytes::Bytes>) {
        let Some(&instance) = self.graph().partitions(source).first() else {
            return;
        };
        let network = self.network.clone();
        let metrics = self.metrics.clone();
        let epoch = self.epoch;
        if let Some(worker) = self.workers.get_mut(&instance) {
            worker.emit_source(key, payload, &network, &metrics, epoch);
        }
    }

    /// Process pending tuples until every worker's inbound channel is empty.
    /// Returns the total number of tuples processed.
    ///
    /// With `worker_threads > 1` the drain runs on the parallel executor
    /// (workers sharded across threads by placement VM); otherwise it is the
    /// seed's cooperative single-threaded pass over the topological order.
    /// Either way the plane is quiescent when this returns, which is the
    /// barrier every checkpoint, tick and reconfiguration plan relies on.
    pub fn drain(&mut self) -> u64 {
        let network = self.network.clone();
        let metrics = self.metrics.clone();
        let epoch = self.epoch;
        let batch = self.config.worker_batch;
        let threads = self
            .config
            .worker_threads
            .max(1)
            .min(self.workers.len().max(1));
        let total = if threads > 1 {
            crate::parallel::drain_parallel(
                &mut self.workers,
                &self.placement,
                &network,
                &metrics,
                epoch,
                batch,
                threads,
            )
        } else {
            let order: Vec<OperatorId> = self.topological_instances();
            let mut total = 0u64;
            loop {
                let mut progressed = 0usize;
                for id in &order {
                    if let Some(worker) = self.workers.get_mut(id) {
                        progressed += worker.step(&network, &metrics, epoch, batch);
                    }
                }
                total += progressed as u64;
                if progressed == 0 {
                    break;
                }
            }
            total
        };
        self.refresh_obs();
        total
    }

    fn topological_instances(&self) -> Vec<OperatorId> {
        let graph = self.graph();
        let mut out = Vec::with_capacity(self.workers.len());
        if let Ok(order) = graph.query().topological_order() {
            for logical in order {
                out.extend_from_slice(graph.partitions(logical));
            }
        } else {
            out.extend(self.workers.keys().copied());
        }
        out
    }

    /// Advance virtual time. Triggers, in order: VM-pool refill, operator
    /// window ticks, periodic checkpoints, CPU-utilisation reports and (when
    /// auto-scale is on) the scaling policy.
    ///
    /// # Panics
    /// Panics when the runtime's placement invariant is broken (a live worker
    /// without a VM slot) — see [`try_advance_to`](Self::try_advance_to) for
    /// the fallible form.
    pub fn advance_to(&mut self, now_ms: u64) {
        self.try_advance_to(now_ms)
            .expect("runtime invariant violated while advancing time");
    }

    /// Fallible [`advance_to`](Self::advance_to): a utilisation report for an
    /// operator the placement does not know surfaces as
    /// [`Error::Invariant`] instead of being silently attributed to VM 0.
    pub fn try_advance_to(&mut self, now_ms: u64) -> Result<()> {
        if now_ms < self.now_ms {
            return Ok(());
        }
        self.now_ms = now_ms;
        self.pool.tick(now_ms);
        // Plans committed before this instant are no longer "in flight":
        // the health derivation stops reporting Reconfiguring/Recovering.
        self.activity.retain(|_, (_, at)| *at >= now_ms);

        // Window ticks.
        if now_ms.saturating_sub(self.last_tick_ms) >= self.config.tick_interval_ms {
            self.last_tick_ms = now_ms;
            let network = self.network.clone();
            let metrics = self.metrics.clone();
            let epoch = self.epoch;
            for worker in self.workers.values_mut() {
                worker.tick(now_ms, &network, &metrics, epoch);
            }
        }

        // Periodic checkpoints (R+SM only). Stateless operators checkpoint
        // too: their processing state is empty, but backing up the output
        // buffer lets Algorithm 1 trim the *upstream* buffers feeding them.
        // Without that, a stateless→stateless edge would retain the full
        // stream history and a later reconfiguration would replay it
        // wholesale into the paused receivers. Sources have no upstream
        // buffer to trim, so they only stamp the schedule.
        if self.config.strategy.checkpoints() {
            let due: Vec<OperatorId> = self
                .workers
                .iter()
                .filter(|(id, w)| {
                    !w.is_failed()
                        && now_ms
                            .saturating_sub(self.last_checkpoint_ms.get(id).copied().unwrap_or(0))
                            >= self.config.checkpoint_interval_ms
                })
                .map(|(id, _)| *id)
                .collect();
            for op in due {
                let has_upstream = self
                    .graph()
                    .upstream_instances(op)
                    .is_ok_and(|ups| !ups.is_empty());
                if has_upstream {
                    let _ = self.checkpoint_operator(op);
                } else {
                    self.last_checkpoint_ms.insert(op, now_ms);
                }
            }
        }

        // Utilisation reports and the scaling policy.
        let report_interval = self.config.scaling_policy.report_interval_ms;
        if now_ms.saturating_sub(self.last_report_ms) >= report_interval {
            self.last_report_ms = now_ms;
            let mut reports = Vec::new();
            for (id, worker) in self.workers.iter_mut() {
                if worker.is_failed() {
                    continue;
                }
                let utilization = worker.utilization(report_interval);
                reports.push((*id, utilization));
            }
            for (id, utilization) in reports {
                // A live worker the placement does not know is a broken
                // invariant: surface it instead of billing the report to an
                // arbitrary VM.
                let vm = self.placement.vm_of_required(id)?;
                self.monitor.record(UtilizationReport {
                    operator: id,
                    vm,
                    at_ms: now_ms,
                    utilization,
                });
            }
            if self.auto_scale {
                // Plans built below are control-loop decisions: journal them
                // with the AutoScale trigger.
                self.plan_trigger = PlanTrigger::AutoScale;
                let candidates: Vec<OperatorId> = {
                    let graph = self.graph();
                    graph
                        .instances()
                        .filter(|i| {
                            graph
                                .query()
                                .operator(i.logical)
                                .map(|o| o.kind.scalable())
                                .unwrap_or(false)
                        })
                        .map(|i| i.id)
                        .collect()
                };
                let bottlenecks = self.detector.bottlenecks(&self.monitor, &candidates);
                let pi = self.config.scaling_policy.partitions_per_action;
                for op in bottlenecks {
                    // A hot partition whose siblings are cold enough that the
                    // operator's aggregate CPU is fine does not need a fresh
                    // VM — it needs the key boundaries re-drawn. Rebalance
                    // all partitions in place instead of scaling out, at
                    // most once per topology shape: if the re-drawn
                    // boundaries did not relieve the partition, the next
                    // trigger escalates to a scale out.
                    if self.config.scaling_policy.rebalance {
                        if let Some(logical) = self.rebalance_worthwhile(op) {
                            if !self.rebalanced.contains(&logical)
                                && self.rebalance_operator(logical).is_ok()
                            {
                                self.rebalanced.insert(logical);
                                continue;
                            }
                        }
                    }
                    let _ = self.scale_out(op, pi);
                }
                // Scale in: consolidate the partitions of logical operators
                // whose partitions have been under the low watermark (pack
                // them onto shared VM slots, keeping parallelism), then merge
                // adjacent sibling pairs. The candidate list is re-derived
                // because the scale outs above may have replaced instances.
                if self.config.scaling_policy.scale_in {
                    let survivors: Vec<OperatorId> = self
                        .graph()
                        .instances()
                        .map(|i| i.id)
                        .filter(|id| candidates.contains(id))
                        .collect();
                    let under = self.detector.underutilized(&self.monitor, &survivors);
                    if self.config.scaling_policy.consolidate {
                        for logical in self.consolidatable(&under) {
                            let _ = self.consolidate(logical);
                        }
                    }
                    // Consolidated operators got fresh instance ids, so the
                    // stale ids in `under` no longer pair up for a merge —
                    // the two shrink paths never fight over one operator in
                    // the same report interval.
                    for (target, victim) in self.mergeable_pairs(&under) {
                        let _ = self.scale_in(target, victim);
                    }
                }
                self.plan_trigger = PlanTrigger::Manual;
            }
        }
        self.refresh_obs();
        Ok(())
    }

    /// Logical operators with at least two under-utilised partitions whose
    /// placement spreads over more VMs than their slot capacity needs — the
    /// operators a consolidation would actually shrink.
    fn consolidatable(&self, under: &[OperatorId]) -> Vec<LogicalOpId> {
        let slots = self.placement.slots_per_vm();
        if slots < 2 {
            return Vec::new();
        }
        let graph = self.graph();
        let mut out = Vec::new();
        for op in graph.query().operators() {
            let partitions = graph.partitions(op.id);
            if partitions.len() < 2 {
                continue;
            }
            let under_count = partitions.iter().filter(|id| under.contains(id)).count();
            if under_count < 2 {
                continue;
            }
            let mut vms: Vec<seep_cloud::VmId> = partitions
                .iter()
                .filter_map(|id| self.placement.vm_of(*id))
                .collect();
            vms.sort_unstable();
            vms.dedup();
            if vms.len() > partitions.len().div_ceil(slots) {
                out.push(op.id);
            }
        }
        out
    }

    /// At most one adjacent pair of under-utilised sibling partitions per
    /// logical operator, ordered so the partition owning the lower key range
    /// survives the merge.
    fn mergeable_pairs(&self, under: &[OperatorId]) -> Vec<(OperatorId, OperatorId)> {
        let graph = self.graph();
        let mut pairs = Vec::new();
        for op in graph.query().operators() {
            let partitions = graph.partitions(op.id);
            if partitions.len() < 2 {
                continue;
            }
            let mut by_range: Vec<&seep_core::graph::OperatorInstance> = partitions
                .iter()
                .filter_map(|id| graph.instance(*id).ok())
                .collect();
            by_range.sort_by_key(|i| i.key_range.lo);
            for pair in by_range.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                if a.key_range.hi != u64::MAX
                    && a.key_range.hi + 1 == b.key_range.lo
                    && under.contains(&a.id)
                    && under.contains(&b.id)
                {
                    pairs.push((a.id, b.id));
                    break;
                }
            }
        }
        pairs
    }

    /// Whether a hot partition's logical operator is worth rebalancing
    /// instead of scaling out: the operator must have siblings and their mean
    /// utilisation (every partition reporting) must sit below the scale-out
    /// threshold — the skew is in the key split, not in aggregate demand, so
    /// splitting onto a new VM would waste one while re-drawing all the
    /// boundaries by the observed key distribution relieves the hot
    /// partition. Returns the logical operator to rebalance, or `None`.
    fn rebalance_worthwhile(&self, hot: OperatorId) -> Option<LogicalOpId> {
        let graph = self.graph();
        let inst = graph.instance(hot).ok()?;
        let partitions = graph.partitions(inst.logical);
        if partitions.len() < 2 {
            return None;
        }
        let mut sum = 0.0;
        for id in partitions {
            sum += self.monitor.latest(*id)?.utilization;
        }
        let mean = sum / partitions.len() as f64;
        (mean < self.config.scaling_policy.threshold).then_some(inst.logical)
    }

    /// Take a checkpoint of `operator`, back it up to an upstream VM and trim
    /// the upstream output buffers (§3.2, Algorithm 1).
    pub fn checkpoint_operator(&mut self, operator: OperatorId) -> Result<CheckpointRecord> {
        let started = Instant::now();
        let seq = {
            let seq = self.checkpoint_seq.entry(operator).or_insert(0);
            *seq += 1;
            *seq
        };
        let checkpoint = {
            let worker = self
                .workers
                .get(&operator)
                .ok_or(Error::UnknownOperator(operator))?;
            if worker.is_failed() {
                return Err(Error::Invariant(format!(
                    "cannot checkpoint failed operator {operator}"
                )));
            }
            worker.take_checkpoint(seq)
        };
        let size_bytes = checkpoint.size_bytes();
        let upstreams = self.graph().upstream_instances(operator)?;
        let mut stored_bytes = 0usize;
        let mut incremental = false;
        if !upstreams.is_empty() {
            // Incremental backup when enabled and a base is already stored at
            // a stable backup operator; full backup otherwise (first
            // checkpoint, placement change, or any store-side refusal).
            let outcome = if self.config.store.incremental {
                let delta = self.last_backed_up.get(&operator).and_then(|prev| {
                    let inc = IncrementalCheckpoint::diff(prev, &checkpoint);
                    self.backup
                        .backup_increment(operator, &upstreams, &inc)
                        .ok()
                });
                let outcome = match delta {
                    Some(outcome) => outcome,
                    None => self
                        .backup
                        .backup_state(operator, &upstreams, checkpoint.clone())?,
                };
                self.last_backed_up.insert(operator, checkpoint);
                outcome
            } else {
                self.backup.backup_state(operator, &upstreams, checkpoint)?
            };
            stored_bytes = outcome.put.bytes_written;
            incremental = outcome.incremental;
            self.metrics.record_store_write(
                self.config.store.label(),
                outcome.put.bytes_written,
                outcome.put.write_us,
                outcome.incremental,
            );
            // Trim upstream output buffers up to the reflected timestamps
            // (Algorithm 1, line 4).
            for up in upstreams {
                let up_logical = self.graph().instance(up)?.logical;
                if let Some(ts) = outcome.trim_to.get(StreamId(up_logical.0)) {
                    if let Some(worker) = self.workers.get_mut(&up) {
                        worker.buffer_mut().trim(operator, ts);
                    }
                }
            }
        }
        self.last_checkpoint_ms.insert(operator, self.now_ms);
        let record = CheckpointRecord {
            operator,
            at_ms: self.now_ms,
            duration_us: started.elapsed().as_micros() as u64,
            size_bytes,
            stored_bytes,
            incremental,
        };
        self.metrics.record_checkpoint(record);
        Ok(record)
    }

    /// Crash-stop the VM hosting `operator`: every worker placed on that VM
    /// stops, their in-memory state and any backups they stored for other
    /// operators are lost, and their network endpoints disappear. With the
    /// default one-slot placement this fails exactly one operator; on a
    /// multi-slot VM (after a consolidation) the co-resident partitions go
    /// down with it — a VM crash is a VM crash.
    pub fn fail_operator(&mut self, operator: OperatorId) {
        let residents: Vec<OperatorId> = match self.placement.vm_of(operator) {
            Some(vm) => {
                self.provider.fail_vm(vm, self.now_ms);
                self.placement.residents(vm).to_vec()
            }
            None => vec![operator],
        };
        for op in residents {
            if let Some(worker) = self.workers.get_mut(&op) {
                worker.mark_failed();
            }
            self.network.disconnect(op);
            self.backup.unregister_store(op);
            self.monitor.forget(op);
            self.last_backed_up.remove(&op);
            self.placement.release(op);
        }
        self.refresh_obs();
    }

    /// Aggregate I/O counters of every checkpoint store in the deployment
    /// (all stores share the configured backend).
    pub fn store_stats(&self) -> StoreStats {
        self.backup.aggregate_stats()
    }

    /// Label of the configured checkpoint-store backend.
    pub fn store_backend(&self) -> &'static str {
        self.config.store.label()
    }

    /// Scale out (or recover) `target` into `pi` new partitioned operators —
    /// Algorithm 3, expressed as a [`ReconfigPlan`] and handed to the shared
    /// executor in [`crate::reconfig`]. The key split follows the
    /// configured [`crate::reconfig::SplitPolicy`]: even by default, or
    /// distribution-guided from a sampled checkpoint when skew-aware.
    /// Returns the new operator ids and the number of tuples replayed from
    /// upstream buffers.
    pub fn scale_out(&mut self, target: OperatorId, pi: usize) -> Result<ScaleOutOutcome> {
        let (outcome, _) = self.scale_out_with_timing(target, pi)?;
        Ok(outcome)
    }

    /// `scale_out` returning the plan timing as well, so `recover` can embed
    /// it in the recovery record without re-reading the metrics registry.
    fn scale_out_with_timing(
        &mut self,
        target: OperatorId,
        pi: usize,
    ) -> Result<(ScaleOutOutcome, ReconfigTiming)> {
        self.scale_out_inner(target, pi, JournalKind::ScaleOut)
    }

    /// The shared scale-out body, journalled as `kind` — `ScaleOut` for a
    /// plain scale out, `Recovery` when [`recover`](Self::recover) re-deploys
    /// a failed operator through the same plan.
    fn scale_out_inner(
        &mut self,
        target: OperatorId,
        pi: usize,
        kind: JournalKind,
    ) -> Result<(ScaleOutOutcome, ReconfigTiming)> {
        let logical = self.graph().instance(target)?.logical;
        let vacated = self.slot_bindings(&[target]);
        let plan = ReconfigPlan::scale_out(target, pi, self.config.split);
        let outcome = match self.execute_plan(&plan) {
            Ok(outcome) => outcome,
            Err(e) => {
                self.journal_rejected(kind, logical, vacated, &e);
                return Err(e);
            }
        };
        // The topology changed: the control loop may rebalance again.
        self.rebalanced.remove(&outcome.logical);
        self.metrics.record_scale_out(ScaleOutRecord {
            logical: outcome.logical,
            new_parallelism: outcome.new_parallelism,
            at_ms: self.now_ms,
            duration_us: outcome.timing.total_us,
            timing: outcome.timing,
        });
        self.journal_committed(kind, vacated, &outcome);
        Ok((
            ScaleOutOutcome {
                new_operators: outcome.new_operators,
                replayed_tuples: outcome.replayed_tuples,
            },
            outcome.timing,
        ))
    }

    /// Scale in: merge two adjacent partitions of one logical operator and
    /// release a VM (§3.3, the merge primitive). `target` survives — the
    /// merged operator is restored on its VM — while `victim`'s slot is
    /// vacated; the victim's VM is released back to the provider (billing
    /// stops) when the merge empties it.
    ///
    /// The plan is scale out run backwards: the executor drains and pauses
    /// the pair, backs up their latest state, merges the backed-up
    /// checkpoints at the backup VM (`seep-store`'s `merge_for_scale_in`),
    /// rewrites the execution graph and upstream routing so the merged key
    /// range maps to one operator, restores the merged state, and replays
    /// both partitions' unreflected tuples — downstream duplicate filters
    /// discard anything delivered twice. A failure before the graph rewrite
    /// (full disk, unreachable backup store) unpauses the partitions and
    /// rejects the request with the runtime exactly as it was.
    pub fn scale_in(&mut self, target: OperatorId, victim: OperatorId) -> Result<ScaleInOutcome> {
        let logical = self.graph().instance(target)?.logical;
        let vacated = self.slot_bindings(&[target, victim]);
        let plan = ReconfigPlan::scale_in(target, victim);
        let outcome = match self.execute_plan(&plan) {
            Ok(outcome) => outcome,
            Err(e) => {
                self.journal_rejected(JournalKind::ScaleIn, logical, vacated, &e);
                return Err(e);
            }
        };
        // The topology changed: the control loop may rebalance again.
        self.rebalanced.remove(&outcome.logical);
        self.journal_committed(JournalKind::ScaleIn, vacated, &outcome);
        self.metrics.record_scale_in(ScaleInRecord {
            logical: outcome.logical,
            new_parallelism: outcome.new_parallelism,
            at_ms: self.now_ms,
            duration_us: outcome.timing.total_us,
            replayed_tuples: outcome.replayed_tuples,
            timing: outcome.timing,
        });
        Ok(ScaleInOutcome {
            merged_operator: outcome.new_operators[0],
            released_vm: outcome.released_vms.first().copied(),
            replayed_tuples: outcome.replayed_tuples,
        })
    }

    /// Rebalance **all π partitions** of a logical operator in one plan:
    /// every partition is checkpointed, the pooled key sample of the merged
    /// checkpoint (weighted by observed per-key traffic when available, by
    /// state footprint otherwise) chooses π new weighted-quantile boundaries,
    /// and each new partition is restored **onto the VM that owned that
    /// slice of the key space** — a pure repartition that neither grows nor
    /// shrinks the deployment. Triggered by the control loop when one
    /// partition is hot while the operator's aggregate CPU is fine
    /// ([`crate::ScalingPolicy::rebalance`]), or invoked directly by
    /// experiments. The predicted post-split imbalance is reported in the
    /// plan's [`ReconfigTiming`].
    pub fn rebalance_operator(&mut self, logical: LogicalOpId) -> Result<RebalanceOutcome> {
        let vacated = self.slot_bindings(&self.partitions_or_empty(logical));
        let plan = ReconfigPlan::rebalance(logical);
        let outcome = match self.execute_plan(&plan) {
            Ok(outcome) => outcome,
            Err(e) => {
                self.journal_rejected(JournalKind::Rebalance, logical, vacated, &e);
                return Err(e);
            }
        };
        self.journal_committed(JournalKind::Rebalance, vacated, &outcome);
        self.metrics.record_rebalance(RebalanceRecord {
            logical: outcome.logical,
            parallelism: outcome.new_parallelism,
            at_ms: self.now_ms,
            duration_us: outcome.timing.total_us,
            replayed_tuples: outcome.replayed_tuples,
            timing: outcome.timing,
        });
        Ok(RebalanceOutcome {
            new_operators: outcome.new_operators,
            replayed_tuples: outcome.replayed_tuples,
            timing: outcome.timing,
        })
    }

    /// Rebalance the logical operator that `target` and `victim` partition —
    /// the pairwise entry point kept for callers that address partitions
    /// directly. Since the plan engine re-splits **all** partitions of the
    /// operator at once, the pair only names it: both must be live sibling
    /// partitions, and the whole operator is rebalanced.
    pub fn rebalance(
        &mut self,
        target: OperatorId,
        victim: OperatorId,
    ) -> Result<RebalanceOutcome> {
        if target == victim {
            return Err(Error::Invariant(
                "rebalancing a pair needs two distinct partitions".into(),
            ));
        }
        let logical_t = self.graph().instance(target)?.logical;
        let logical_v = self.graph().instance(victim)?.logical;
        if logical_t != logical_v {
            return Err(Error::Invariant(format!(
                "cannot rebalance partitions of different logical operators \
                 ({target} is {logical_t}, {victim} is {logical_v})"
            )));
        }
        self.rebalance_operator(logical_t)
    }

    /// Consolidate the partitions of a logical operator onto fewer VMs: the
    /// key ranges stay as they are, but each partition is checkpoint-moved
    /// onto a VM slot chosen by first-fit-decreasing bin packing (heaviest
    /// state first) over the operator's current VMs, and every VM left empty
    /// is released to the provider — scale-in that keeps parallelism and
    /// does not require adjacent siblings. Needs a multi-slot placement
    /// ([`seep_cloud::VmPoolConfig::slots_per_vm`] ≥ 2).
    pub fn consolidate(&mut self, logical: LogicalOpId) -> Result<ConsolidateOutcome> {
        if self.placement.slots_per_vm() < 2 {
            return Err(Error::Invariant(
                "consolidation needs multi-slot VMs (pool.slots_per_vm >= 2)".into(),
            ));
        }
        let vms_before = self.vm_count();
        let vacated = self.slot_bindings(&self.partitions_or_empty(logical));
        let plan = ReconfigPlan::consolidate(logical);
        let outcome = match self.execute_plan(&plan) {
            Ok(outcome) => outcome,
            Err(e) => {
                self.journal_rejected(JournalKind::Consolidate, logical, vacated, &e);
                return Err(e);
            }
        };
        // The instance ids changed: the control loop may rebalance again.
        self.rebalanced.remove(&logical);
        self.journal_committed(JournalKind::Consolidate, vacated, &outcome);
        self.metrics.record_consolidate(ConsolidateRecord {
            logical: outcome.logical,
            parallelism: outcome.new_parallelism,
            vms_released: outcome.released_vms.len(),
            at_ms: self.now_ms,
            duration_us: outcome.timing.total_us,
            replayed_tuples: outcome.replayed_tuples,
            timing: outcome.timing,
        });
        debug_assert_eq!(
            self.vm_count() + outcome.released_vms.len(),
            vms_before,
            "every released VM must have stopped running"
        );
        Ok(ConsolidateOutcome {
            new_operators: outcome.new_operators,
            released_vms: outcome.released_vms,
            replayed_tuples: outcome.replayed_tuples,
            timing: outcome.timing,
        })
    }

    /// Recover a failed operator by scaling it out to `pi` partitions
    /// (`pi = 1` is serial recovery, `pi >= 2` is parallel recovery, §4.2).
    ///
    /// Returns the recovery record, whose duration covers the full recovery:
    /// restoring state on new VMs, replaying buffered tuples and re-processing
    /// them until the system is caught up.
    pub fn recover(&mut self, failed: OperatorId, pi: usize) -> Result<RecoveryRecord> {
        let started = Instant::now();
        let strategy = self.config.strategy;
        let logical = self.graph().instance(failed)?.logical;
        // Recovery *is* a scale out of the failed operator — the same plan,
        // the same executor (the paper's integrated mechanism). Journalled
        // under its own kind so a replay distinguishes growth from repair.
        let (outcome, timing) = self.scale_out_inner(failed, pi, JournalKind::Recovery)?;
        let mut replayed = outcome.replayed_tuples;

        if strategy == RecoveryStrategy::SourceReplay {
            replayed += self.source_replay(logical);
        }

        // Catch up: process everything that was replayed.
        self.drain();

        let record = RecoveryRecord {
            operator: failed,
            parallelism: pi,
            duration_ms: started.elapsed().as_secs_f64() * 1_000.0,
            replayed_tuples: replayed,
            strategy: strategy.label().to_string(),
            timing,
        };
        self.metrics.record_recovery(record.clone());
        Ok(record)
    }

    /// Source-replay recovery (§6.2 baseline): reset the duplicate filters of
    /// the operators between the sources and the recovered operator, then
    /// replay every tuple buffered at the sources through the pipeline.
    fn source_replay(&mut self, recovered: LogicalOpId) -> usize {
        let graph = self.graph();
        let query = graph.query();
        // Logical ancestors of the recovered operator (excluding sources).
        let mut ancestors = Vec::new();
        let mut frontier = query.upstream(recovered);
        while let Some(l) = frontier.pop() {
            if query.operator(l).map(|o| o.kind) == Ok(OperatorKind::Source) {
                continue;
            }
            if !ancestors.contains(&l) {
                ancestors.push(l);
                frontier.extend(query.upstream(l));
            }
        }
        let ancestor_instances: Vec<OperatorId> = ancestors
            .iter()
            .flat_map(|l| graph.partitions(*l).to_vec())
            .collect();
        let source_instances: Vec<OperatorId> = query
            .sources()
            .into_iter()
            .flat_map(|s| graph.partitions(s).to_vec())
            .collect();

        for id in ancestor_instances {
            if let Some(worker) = self.workers.get_mut(&id) {
                worker.reset_dedup();
            }
        }
        let network = self.network.clone();
        let metrics = self.metrics.clone();
        let mut replayed = 0;
        for id in source_instances {
            if let Some(worker) = self.workers.get(&id) {
                for d in worker.buffer().downstreams() {
                    replayed += worker.replay_to(d, &TimestampVec::new(), &network, &metrics);
                }
            }
        }
        replayed
    }
}

impl Runtime {
    /// VM pool hit/miss statistics (see §5.2).
    pub fn pool_stats(&self) -> seep_cloud::PoolStats {
        self.pool.stats()
    }

    /// The placement layer: which VM slot hosts which partition.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The reconfiguration event journal.
    pub fn journal(&self) -> Arc<Journal> {
        self.journal.clone()
    }

    /// The snapshot cell the scrape endpoint reads from.
    pub(crate) fn obs_shared(&self) -> Arc<ObsShared> {
        self.obs.clone()
    }

    /// Re-publish the observability snapshot. Skipped while nothing holds
    /// the other end (no scrape server running), so the hot path does not
    /// pay for snapshots nobody reads.
    pub(crate) fn refresh_obs(&self) {
        if Arc::strong_count(&self.obs) > 1 {
            self.obs.update(self.obs_snapshot());
        }
    }

    /// Derive per-operator health from worker flags, queue depth against
    /// [`crate::ScalingPolicy::backpressure_queue`], the latest utilisation
    /// report and any plan committed at the current virtual instant.
    /// Precedence: `Failed` > `Recovering`/`Reconfiguring` > `Backpressured`
    /// > `Ok`.
    ///
    /// Fusion stays invisible here: an instance hosting a fused chain
    /// reports one row **per member stage** (same instance id, queue,
    /// utilisation, VM and state — those are physical properties of the
    /// shared instance), with `name` and `processed` attributed to the
    /// individual logical operators from the chain's per-stage counters.
    pub fn health(&self) -> Vec<OperatorHealth> {
        let watermark = self.config.scaling_policy.backpressure_queue;
        let mut rows = Vec::with_capacity(self.workers.len());
        for (id, w) in &self.workers {
            let active = self
                .activity
                .get(&w.logical)
                .filter(|(_, at)| *at >= self.now_ms)
                .map(|(a, _)| a.state());
            let state = if w.is_failed() {
                seep_core::HealthState::Failed
            } else if let Some(busy) = active {
                busy
            } else if w.queued() >= watermark {
                seep_core::HealthState::Backpressured
            } else {
                seep_core::HealthState::Ok
            };
            let base = OperatorHealth {
                operator: *id,
                logical: w.logical,
                name: w.name().to_string(),
                state,
                queued: w.queued(),
                utilization: self
                    .monitor
                    .latest(*id)
                    .map(|r| r.utilization)
                    .unwrap_or(0.0),
                processed: w.processed(),
                vm: self.placement.vm_of(*id).map(|vm| vm.0),
            };
            match w.operator().fusion_stages() {
                Some(stages) => rows.extend(stages.into_iter().map(|s| OperatorHealth {
                    name: s.name,
                    processed: s.processed,
                    ..base.clone()
                })),
                None => rows.push(base),
            }
        }
        rows
    }

    /// Build a fresh observability snapshot from the runtime's current
    /// state: metrics, latency histogram, health, placement occupancy and
    /// the VM/billing counters.
    pub fn obs_snapshot(&self) -> ObsSnapshot {
        let mut reconfig_phases = Vec::new();
        let mut add = |kind: &'static str, timings: Vec<ReconfigTiming>| {
            if timings.is_empty() {
                return;
            }
            let mut totals = ReconfigPhaseTotals {
                kind,
                count: timings.len() as u64,
                ..ReconfigPhaseTotals::default()
            };
            for t in timings {
                totals.drain_us += t.drain_us;
                totals.checkpoint_us += t.checkpoint_us;
                totals.rewrite_us += t.rewrite_us;
                totals.transform_us += t.transform_us;
                totals.restore_us += t.restore_us;
                totals.commit_us += t.commit_us;
                totals.replay_us += t.replay_us;
                totals.total_us += t.total_us;
            }
            reconfig_phases.push(totals);
        };
        add(
            "scale_out",
            self.metrics
                .scale_outs()
                .into_iter()
                .map(|r| r.timing)
                .collect(),
        );
        add(
            "scale_in",
            self.metrics
                .scale_ins()
                .into_iter()
                .map(|r| r.timing)
                .collect(),
        );
        add(
            "rebalance",
            self.metrics
                .rebalances()
                .into_iter()
                .map(|r| r.timing)
                .collect(),
        );
        add(
            "consolidate",
            self.metrics
                .consolidates()
                .into_iter()
                .map(|r| r.timing)
                .collect(),
        );
        let occupancy = self
            .placement
            .occupied_vms()
            .into_iter()
            .map(|vm| (vm.0, self.placement.occupancy(vm)))
            .collect();
        ObsSnapshot {
            now_ms: self.now_ms,
            metrics: self.metrics.snapshot(),
            latency: self.metrics.latency_histogram(),
            store_io: self.metrics.store_io_all(),
            reconfig_phases,
            health: self.health(),
            occupancy,
            slots_per_vm: self.placement.slots_per_vm(),
            vms_running: self.provider.running_count(),
            vms_provisioning: self.provider.provisioning_count(),
            vm_seconds: self.provider.total_vm_hours(self.now_ms) * 3_600.0,
            vm_cost: self.provider.total_cost(self.now_ms),
            pool: self.pool.stats(),
            pool_ready: self.pool.ready_count(),
            pool_pending: self.pool.pending_count(),
            pool_target: self.pool.target_size(),
            journal_events: self.journal.total(),
            transport: self
                .network
                .transport()
                .map(|t| {
                    t.connections()
                        .into_iter()
                        .map(|c| crate::obs::TransportConn {
                            peer: c.peer,
                            direction: c.direction.to_string(),
                            bytes: c.bytes,
                            frames: c.frames,
                            tuples: c.tuples,
                            reconnects: c.reconnects,
                        })
                        .collect()
                })
                .unwrap_or_default(),
            heartbeat_lag: Vec::new(),
        }
    }

    /// The current slot bindings of `ops` (VM `None` for unplaced
    /// instances, e.g. a failed operator whose slot was already released).
    fn slot_bindings(&self, ops: &[OperatorId]) -> Vec<SlotBinding> {
        ops.iter()
            .map(|op| SlotBinding {
                operator: op.raw(),
                vm: self.placement.vm_of(*op).map(|vm| vm.0),
            })
            .collect()
    }

    /// Partitions of `logical`, or empty when the graph does not know it
    /// (the plan executor will reject the plan with a proper error).
    fn partitions_or_empty(&self, logical: LogicalOpId) -> Vec<OperatorId> {
        self.graph
            .as_ref()
            .map(|g| g.partitions(logical).to_vec())
            .unwrap_or_default()
    }

    /// Name of a logical operator, for journal events.
    fn logical_name(&self, logical: LogicalOpId) -> String {
        self.graph
            .as_ref()
            .and_then(|g| g.query().operator(logical).ok())
            .map(|o| o.name.clone())
            .unwrap_or_else(|| format!("{logical}"))
    }

    /// Journal a committed plan: placement delta from the pre-plan slot
    /// bindings to the new operators' slots, VM churn, per-phase timing —
    /// and mark the logical operator busy for the health derivation.
    fn journal_committed(
        &mut self,
        kind: JournalKind,
        vacated: Vec<SlotBinding>,
        outcome: &crate::reconfig::ReconfigOutcome,
    ) {
        let placed = self.slot_bindings(&outcome.new_operators);
        let vacated_vms: std::collections::HashSet<u64> =
            vacated.iter().filter_map(|s| s.vm).collect();
        let mut acquired_vms: Vec<u64> = placed
            .iter()
            .filter_map(|s| s.vm)
            .filter(|vm| !vacated_vms.contains(vm))
            .collect();
        acquired_vms.sort_unstable();
        acquired_vms.dedup();
        let activity = match kind {
            JournalKind::Recovery => PlanActivity::Recovering,
            _ => PlanActivity::Reconfiguring,
        };
        self.activity
            .insert(outcome.logical, (activity, self.now_ms));
        self.journal.append(JournalEvent {
            seq: 0,
            at_ms: self.now_ms,
            kind,
            trigger: self.plan_trigger,
            logical: outcome.logical.0,
            operator: self.logical_name(outcome.logical),
            new_parallelism: outcome.new_parallelism,
            replayed_tuples: outcome.replayed_tuples,
            timing: outcome.timing,
            vacated,
            placed,
            released_vms: outcome.released_vms.iter().map(|vm| vm.0).collect(),
            acquired_vms,
            outcome: "ok".into(),
        });
        self.refresh_obs();
    }

    /// Journal a plan the executor rejected (fail-before-rewrite: the
    /// runtime is exactly as it was, so the event carries no delta).
    fn journal_rejected(
        &mut self,
        kind: JournalKind,
        logical: LogicalOpId,
        vacated: Vec<SlotBinding>,
        err: &Error,
    ) {
        self.journal.append(JournalEvent {
            seq: 0,
            at_ms: self.now_ms,
            kind,
            trigger: self.plan_trigger,
            logical: logical.0,
            operator: self.logical_name(logical),
            new_parallelism: 0,
            replayed_tuples: 0,
            timing: ReconfigTiming::default(),
            vacated,
            placed: Vec::new(),
            released_vms: Vec::new(),
            acquired_vms: Vec::new(),
            outcome: format!("rejected: {err}"),
        });
        self.refresh_obs();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use seep_core::{OutputTuple, StatefulOperator, StatelessFn, Tuple};
    use seep_operators::word_count::WordFrequency;
    use seep_operators::{WindowedWordCount, WordSplitter};

    struct Harness {
        runtime: Runtime,
        src: LogicalOpId,
        split: LogicalOpId,
        count: LogicalOpId,
        results: Arc<Mutex<Vec<WordFrequency>>>,
    }

    /// Build the windowed word-frequency query used throughout §6.2/§6.3.
    fn word_count_harness(config: RuntimeConfig) -> Harness {
        let mut b = QueryGraph::builder();
        let src = b.source("data_feeder");
        let split = b.stateless("word_splitter");
        let count = b.stateful("word_counter");
        let snk = b.sink("sink");
        b.connect(src, split);
        b.connect(split, count);
        b.connect(count, snk);
        let query = b.build().unwrap();

        let results: Arc<Mutex<Vec<WordFrequency>>> = Arc::new(Mutex::new(Vec::new()));
        let results_for_sink = results.clone();

        let mut factories: HashMap<LogicalOpId, Arc<dyn OperatorFactory>> = HashMap::new();
        factories.insert(
            src,
            Arc::new(|| -> Box<dyn StatefulOperator> {
                Box::new(StatelessFn::new(
                    "feeder",
                    |_, t: &Tuple, out: &mut Vec<OutputTuple>| {
                        out.push(OutputTuple::new(t.key, t.payload.clone()));
                    },
                )) as Box<dyn StatefulOperator>
            }) as Arc<dyn OperatorFactory>,
        );
        factories.insert(
            split,
            Arc::new(|| -> Box<dyn StatefulOperator> { Box::new(WordSplitter::new()) })
                as Arc<dyn OperatorFactory>,
        );
        factories.insert(
            count,
            Arc::new(|| -> Box<dyn StatefulOperator> { Box::new(WindowedWordCount::new(30_000)) })
                as Arc<dyn OperatorFactory>,
        );
        factories.insert(
            snk,
            Arc::new(move || -> Box<dyn StatefulOperator> {
                let results = results_for_sink.clone();
                Box::new(StatelessFn::new(
                    "collector",
                    move |_, t: &Tuple, _out: &mut Vec<OutputTuple>| {
                        if let Ok(freq) = t.decode::<WordFrequency>() {
                            results.lock().push(freq);
                        }
                    },
                )) as Box<dyn StatefulOperator>
            }) as Arc<dyn OperatorFactory>,
        );

        let mut runtime = Runtime::new(config);
        runtime.deploy(query, factories).unwrap();
        Harness {
            runtime,
            src,
            split,
            count,
            results,
        }
    }

    fn inject_sentence(h: &mut Harness, sentence: &str) {
        let payload = bincode::serialize(&sentence.to_string()).unwrap();
        h.runtime
            .inject(h.src, Key::from_str_key(sentence), payload);
    }

    fn counter_instance(h: &Harness) -> OperatorId {
        h.runtime.partitions(h.count)[0]
    }

    fn count_of(h: &Harness, word: &str) -> u64 {
        h.runtime
            .partitions(h.count)
            .iter()
            .filter_map(|id| {
                h.runtime.with_operator(*id, |op| {
                    // Downcast through the state representation: re-use the
                    // operator's own processing state.
                    let state = op.get_processing_state();
                    state
                        .get_decoded::<seep_operators::word_count::WordEntry>(Key::from_str_key(
                            word,
                        ))
                        .ok()
                        .flatten()
                        .map(|e| e.count)
                })
            })
            .flatten()
            .sum()
    }

    #[test]
    fn deploy_creates_one_vm_per_operator() {
        let h = word_count_harness(RuntimeConfig::default());
        // One VM per operator instance plus the pre-allocated pool VMs.
        assert!(h.runtime.vm_count() >= 4);
        let stats = h.runtime.pool_stats();
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.misses, 0);
        assert_eq!(h.runtime.parallelism(h.count), 1);
        assert_eq!(h.runtime.execution_graph().total_instances(), 4);
    }

    #[test]
    fn second_deploy_is_rejected_and_leaves_the_first_intact() {
        let mut h = word_count_harness(RuntimeConfig::default());
        inject_sentence(&mut h, "before redeploy");
        h.runtime.drain();
        let instances_before = h.runtime.execution_graph().total_instances();

        let mut b = QueryGraph::builder();
        let src = b.source("src2");
        let snk = b.sink("snk2");
        b.connect(src, snk);
        let query = b.build().unwrap();
        let mut factories: HashMap<LogicalOpId, Arc<dyn OperatorFactory>> = HashMap::new();
        let feeder = || StatelessFn::new("noop", |_, _t: &Tuple, _out: &mut Vec<OutputTuple>| {});
        factories.insert(src, Arc::new(feeder));
        factories.insert(snk, Arc::new(feeder));

        let err = h.runtime.deploy(query, factories).unwrap_err();
        assert_eq!(err, Error::AlreadyDeployed);
        // The original deployment keeps running untouched.
        assert_eq!(
            h.runtime.execution_graph().total_instances(),
            instances_before
        );
        assert_eq!(count_of(&h, "redeploy"), 1);
    }

    #[test]
    fn deploy_rejects_factory_for_unknown_operator() {
        let mut b = QueryGraph::builder();
        let src = b.source("src");
        let snk = b.sink("snk");
        b.connect(src, snk);
        let query = b.build().unwrap();
        let noop = || StatelessFn::new("noop", |_, _t: &Tuple, _out: &mut Vec<OutputTuple>| {});
        let mut factories: HashMap<LogicalOpId, Arc<dyn OperatorFactory>> = HashMap::new();
        factories.insert(src, Arc::new(noop));
        factories.insert(snk, Arc::new(noop));
        // A typo'd id that is not part of the query graph.
        factories.insert(LogicalOpId(99), Arc::new(noop));

        let mut runtime = Runtime::new(RuntimeConfig::default());
        let err = runtime.deploy(query, factories).unwrap_err();
        assert!(
            matches!(err, Error::InvalidGraph(ref msg) if msg.contains("lop99")),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn end_to_end_word_count() {
        let mut h = word_count_harness(RuntimeConfig::default());
        inject_sentence(&mut h, "first set");
        inject_sentence(&mut h, "second set");
        inject_sentence(&mut h, "third set");
        let processed = h.runtime.drain();
        assert!(
            processed >= 9,
            "source, splitter and counter work: {processed}"
        );
        assert_eq!(count_of(&h, "set"), 3);
        assert_eq!(count_of(&h, "first"), 1);
        // Closing the window delivers results to the sink.
        h.runtime.advance_to(30_000);
        h.runtime.drain();
        let results = h.results.lock();
        assert!(results.iter().any(|f| f.word == "set" && f.count == 3));
    }

    #[test]
    fn checkpoints_happen_on_schedule_and_trim_buffers() {
        let mut h = word_count_harness(RuntimeConfig::default());
        inject_sentence(&mut h, "alpha beta gamma");
        h.runtime.drain();
        let splitter_instance = h.runtime.partitions(h.split)[0];
        let buffered_before = h
            .runtime
            .workers
            .get(&splitter_instance)
            .unwrap()
            .buffer()
            .len();
        assert!(buffered_before >= 3);
        h.runtime.advance_to(5_000); // checkpoint interval
        let checkpoints = h.runtime.metrics().checkpoints();
        assert!(!checkpoints.is_empty());
        let buffered_after = h
            .runtime
            .workers
            .get(&splitter_instance)
            .unwrap()
            .buffer()
            .len();
        assert!(
            buffered_after < buffered_before,
            "checkpointing must trim the upstream buffer ({buffered_before} -> {buffered_after})"
        );
    }

    #[test]
    fn recovery_restores_state_and_replays_missing_tuples() {
        let mut h = word_count_harness(RuntimeConfig::default());
        // Phase 1: processed and checkpointed.
        inject_sentence(&mut h, "apple banana apple");
        h.runtime.drain();
        h.runtime.advance_to(5_000);
        // Phase 2: processed but NOT yet checkpointed (still buffered upstream).
        inject_sentence(&mut h, "banana cherry");
        h.runtime.drain();
        assert_eq!(count_of(&h, "apple"), 2);
        assert_eq!(count_of(&h, "banana"), 2);

        // Fail the word counter's VM and recover it.
        let failed = counter_instance(&h);
        h.runtime.fail_operator(failed);
        let record = h.runtime.recover(failed, 1).unwrap();
        assert_eq!(record.strategy, "R+SM");
        assert!(record.duration_ms >= 0.0);
        assert!(
            record.replayed_tuples >= 2,
            "phase-2 words must be replayed"
        );

        // The restored counter has the full, correct counts.
        assert_eq!(count_of(&h, "apple"), 2);
        assert_eq!(count_of(&h, "banana"), 2);
        assert_eq!(count_of(&h, "cherry"), 1);
        // The old instance is gone, a new one exists.
        assert_eq!(h.runtime.parallelism(h.count), 1);
        assert_ne!(counter_instance(&h), failed);
    }

    #[test]
    fn upstream_backup_recovery_rebuilds_state_from_buffers() {
        let config = RuntimeConfig::default().with_strategy(RecoveryStrategy::UpstreamBackup);
        let mut h = word_count_harness(config);
        inject_sentence(&mut h, "x y x z");
        h.runtime.drain();
        h.runtime.advance_to(5_000); // no checkpoints under UB
        assert!(h.runtime.metrics().checkpoints().is_empty());
        let failed = counter_instance(&h);
        h.runtime.fail_operator(failed);
        let record = h.runtime.recover(failed, 1).unwrap();
        assert_eq!(record.strategy, "UB");
        assert!(record.replayed_tuples >= 4, "UB replays the whole buffer");
        assert_eq!(count_of(&h, "x"), 2);
        assert_eq!(count_of(&h, "z"), 1);
    }

    #[test]
    fn source_replay_recovery_reprocesses_from_the_source() {
        let config = RuntimeConfig::default().with_strategy(RecoveryStrategy::SourceReplay);
        let mut h = word_count_harness(config);
        inject_sentence(&mut h, "m n m");
        h.runtime.drain();
        let splitter_instance = h.runtime.partitions(h.split)[0];
        assert_eq!(
            h.runtime
                .workers
                .get(&splitter_instance)
                .unwrap()
                .buffer()
                .len(),
            0,
            "intermediate operators do not buffer under SR"
        );
        let failed = counter_instance(&h);
        h.runtime.fail_operator(failed);
        let record = h.runtime.recover(failed, 1).unwrap();
        assert_eq!(record.strategy, "SR");
        assert!(record.replayed_tuples >= 1, "source buffer is replayed");
        assert_eq!(count_of(&h, "m"), 2);
        assert_eq!(count_of(&h, "n"), 1);
    }

    #[test]
    fn scale_out_splits_state_and_preserves_counts() {
        let mut h = word_count_harness(RuntimeConfig::default());
        for sentence in ["red green blue", "red yellow", "green red"] {
            inject_sentence(&mut h, sentence);
        }
        h.runtime.drain();
        h.runtime.advance_to(5_000); // checkpoint so the backup is fresh
        inject_sentence(&mut h, "blue violet"); // not yet checkpointed
        h.runtime.drain();

        let target = counter_instance(&h);
        let outcome = h.runtime.scale_out(target, 2).unwrap();
        assert_eq!(outcome.new_operators.len(), 2);
        assert_eq!(h.runtime.parallelism(h.count), 2);
        h.runtime.drain();

        // Counts across the two partitions equal the expected totals.
        assert_eq!(count_of(&h, "red"), 3);
        assert_eq!(count_of(&h, "green"), 2);
        assert_eq!(count_of(&h, "blue"), 2);
        assert_eq!(count_of(&h, "violet"), 1);

        // New tuples are routed to the correct partition and processed.
        inject_sentence(&mut h, "red blue");
        h.runtime.drain();
        assert_eq!(count_of(&h, "red"), 4);
        assert_eq!(count_of(&h, "blue"), 3);
    }

    #[test]
    fn parallel_recovery_uses_multiple_partitions() {
        let mut h = word_count_harness(RuntimeConfig::default());
        for i in 0..50 {
            inject_sentence(&mut h, &format!("word{i} common"));
        }
        h.runtime.drain();
        h.runtime.advance_to(5_000);
        inject_sentence(&mut h, "common tail");
        h.runtime.drain();

        let failed = counter_instance(&h);
        h.runtime.fail_operator(failed);
        let record = h.runtime.recover(failed, 2).unwrap();
        assert_eq!(record.parallelism, 2);
        assert_eq!(h.runtime.parallelism(h.count), 2);
        assert_eq!(count_of(&h, "common"), 51);
        assert_eq!(count_of(&h, "tail"), 1);
    }

    #[test]
    fn scale_in_merges_partitions_and_releases_vm() {
        let mut h = word_count_harness(RuntimeConfig::default());
        for sentence in ["one two three", "two three", "three"] {
            inject_sentence(&mut h, sentence);
        }
        h.runtime.drain();
        h.runtime.advance_to(5_000); // checkpoint
        let target = counter_instance(&h);
        h.runtime.scale_out(target, 2).unwrap();
        h.runtime.drain();
        inject_sentence(&mut h, "four three"); // processed after the split
        h.runtime.drain();
        assert_eq!(h.runtime.parallelism(h.count), 2);

        let vms_before = h.runtime.vm_count();
        let parts = h.runtime.partitions(h.count);
        let outcome = h.runtime.scale_in(parts[0], parts[1]).unwrap();
        h.runtime.drain();

        assert_eq!(h.runtime.parallelism(h.count), 1);
        assert_eq!(h.runtime.vm_count(), vms_before - 1, "one VM released");
        let released_vm = outcome
            .released_vm
            .expect("single-slot merge empties the VM");
        let released = h.runtime.provider().vm(released_vm).unwrap();
        assert!(!released.is_running(), "victim VM given back to the cloud");
        assert_eq!(h.runtime.metrics().scale_ins().len(), 1);
        assert_eq!(h.runtime.metrics().snapshot().scale_ins, 1);

        // Merged state carries the full counts, including post-split tuples.
        assert_eq!(count_of(&h, "one"), 1);
        assert_eq!(count_of(&h, "two"), 2);
        assert_eq!(count_of(&h, "three"), 4);
        assert_eq!(count_of(&h, "four"), 1);

        // New tuples route to the merged operator and are processed.
        inject_sentence(&mut h, "five three");
        h.runtime.drain();
        assert_eq!(count_of(&h, "three"), 5);
        assert_eq!(count_of(&h, "five"), 1);
    }

    #[test]
    fn scale_in_migrates_third_party_backups_to_the_surviving_store() {
        let mut h = word_count_harness(RuntimeConfig::default());
        inject_sentence(&mut h, "alpha beta");
        h.runtime.drain();
        h.runtime.advance_to(5_000);
        let target = counter_instance(&h);
        h.runtime.scale_out(target, 2).unwrap();
        h.runtime.drain();
        let parts = h.runtime.partitions(h.count);

        // A downstream operator's checkpoint hosted on the surviving
        // partition's store (as the sink's would be if it checkpointed).
        let owner = OperatorId::new(4242);
        h.runtime
            .backup
            .store_of(parts[0])
            .unwrap()
            .put(owner, Checkpoint::empty(owner))
            .unwrap();
        h.runtime.backup.set_backup_of(owner, parts[0]);

        let outcome = h.runtime.scale_in(parts[0], parts[1]).unwrap();
        // The surviving VM keeps hosting that backup under the merged
        // operator's store; it stays retrievable.
        assert_eq!(
            h.runtime.backup.backup_of(owner),
            Some(outcome.merged_operator)
        );
        let restored = h.runtime.backup.retrieve(owner).unwrap();
        assert_eq!(restored.meta.operator, owner);
    }

    #[test]
    fn scale_in_under_upstream_backup_rebuilds_state_from_buffers() {
        let config = RuntimeConfig::default().with_strategy(RecoveryStrategy::UpstreamBackup);
        let mut h = word_count_harness(config);
        for sentence in ["ub one two", "ub two"] {
            inject_sentence(&mut h, sentence);
        }
        h.runtime.drain();
        let target = counter_instance(&h);
        h.runtime.scale_out(target, 2).unwrap();
        h.runtime.drain();
        inject_sentence(&mut h, "ub one");
        h.runtime.drain();

        let parts = h.runtime.partitions(h.count);
        h.runtime.scale_in(parts[0], parts[1]).unwrap();
        h.runtime.drain();
        // No checkpoints exist under UB: the merge starts empty and the
        // untrimmed upstream buffers replay the full history.
        assert_eq!(h.runtime.parallelism(h.count), 1);
        assert_eq!(count_of(&h, "ub"), 3);
        assert_eq!(count_of(&h, "one"), 2);
        assert_eq!(count_of(&h, "two"), 2);
    }

    #[test]
    fn scale_in_rejects_invalid_pairs() {
        let mut h = word_count_harness(RuntimeConfig::default());
        inject_sentence(&mut h, "seed words");
        h.runtime.drain();
        let counter = counter_instance(&h);
        // Merging an operator with itself, or with a different logical
        // operator's partition, is rejected.
        assert!(h.runtime.scale_in(counter, counter).is_err());
        let splitter = h.runtime.partitions(h.split)[0];
        assert!(h.runtime.scale_in(counter, splitter).is_err());

        // Three partitions: the outer two are not adjacent.
        h.runtime.scale_out(counter, 2).unwrap();
        let parts = h.runtime.partitions(h.count);
        h.runtime.scale_out(parts[0], 2).unwrap();
        let parts = h.runtime.partitions(h.count);
        assert_eq!(parts.len(), 3);
        let mut by_lo: Vec<OperatorId> = parts.clone();
        by_lo.sort_by_key(|id| {
            h.runtime
                .execution_graph()
                .instance(*id)
                .unwrap()
                .key_range
                .lo
        });
        assert!(h.runtime.scale_in(by_lo[0], by_lo[2]).is_err());
        // A failed partition cannot be merged.
        h.runtime.fail_operator(by_lo[1]);
        assert!(h.runtime.scale_in(by_lo[0], by_lo[1]).is_err());
        assert_eq!(h.runtime.metrics().scale_ins().len(), 0);
    }

    #[test]
    fn auto_scale_in_merges_idle_partitions() {
        let mut policy = crate::ScalingPolicy::default().with_scale_in(0.2);
        policy.scale_in_reports = 2;
        let config = RuntimeConfig {
            scaling_policy: policy,
            ..RuntimeConfig::default()
        };
        let mut h = word_count_harness(config);
        h.runtime.set_auto_scale(true);
        inject_sentence(&mut h, "warm up words");
        h.runtime.drain();
        let target = counter_instance(&h);
        h.runtime.scale_out(target, 2).unwrap();
        h.runtime.drain();
        assert_eq!(h.runtime.parallelism(h.count), 2);
        let vms_before = h.runtime.vm_count();

        // No load: every report is far below the low watermark; after the
        // required streak the control loop merges the two counter partitions.
        for step in 1..=4u64 {
            h.runtime.advance_to(step * 5_000);
        }
        assert_eq!(h.runtime.parallelism(h.count), 1, "idle partitions merged");
        assert!(h.runtime.vm_count() < vms_before);
        assert_eq!(h.runtime.metrics().scale_ins().len(), 1);
        let record = &h.runtime.metrics().scale_ins()[0];
        assert_eq!(record.logical, h.count);
        assert_eq!(record.new_parallelism, 1);
    }

    #[test]
    fn consolidate_packs_partitions_and_releases_vms() {
        let config = RuntimeConfig {
            pool: seep_cloud::VmPoolConfig::default().with_slots_per_vm(2),
            ..RuntimeConfig::default()
        };
        let mut h = word_count_harness(config);
        for sentence in ["pack one two", "pack two", "pack three four"] {
            inject_sentence(&mut h, sentence);
        }
        h.runtime.drain();
        h.runtime.advance_to(5_000); // checkpoint
        let target = counter_instance(&h);
        h.runtime.scale_out(target, 4).unwrap();
        h.runtime.drain();
        inject_sentence(&mut h, "pack five"); // post-split, pre-consolidate
        h.runtime.drain();
        assert_eq!(h.runtime.parallelism(h.count), 4);

        let vms_before = h.runtime.vm_count();
        let outcome = h.runtime.consolidate(h.count).unwrap();
        h.runtime.drain();

        // Parallelism unchanged, partitions packed 2-per-VM, 2 VMs released.
        assert_eq!(h.runtime.parallelism(h.count), 4);
        assert_eq!(outcome.new_operators.len(), 4);
        assert_eq!(outcome.released_vms.len(), 2);
        assert_eq!(h.runtime.vm_count(), vms_before - 2);
        for vm in &outcome.released_vms {
            assert!(!h.runtime.provider().vm(*vm).unwrap().is_running());
        }
        let mut vms: Vec<seep_cloud::VmId> = h
            .runtime
            .partitions(h.count)
            .iter()
            .map(|id| h.runtime.placement().vm_of(*id).unwrap())
            .collect();
        vms.sort_unstable();
        vms.dedup();
        assert_eq!(vms.len(), 2, "four partitions share two VMs");

        // Counts survive the move and new traffic keeps routing correctly.
        assert_eq!(count_of(&h, "pack"), 4);
        assert_eq!(count_of(&h, "two"), 2);
        assert_eq!(count_of(&h, "five"), 1);
        inject_sentence(&mut h, "pack six");
        h.runtime.drain();
        assert_eq!(count_of(&h, "pack"), 5);
        assert_eq!(count_of(&h, "six"), 1);
        assert_eq!(h.runtime.metrics().consolidates().len(), 1);
        let record = &h.runtime.metrics().consolidates()[0];
        assert_eq!(record.parallelism, 4);
        assert_eq!(record.vms_released, 2);
        assert_eq!(h.runtime.metrics().snapshot().consolidates, 1);
    }

    #[test]
    fn consolidate_requires_multislot_vms_and_siblings() {
        let mut h = word_count_harness(RuntimeConfig::default());
        inject_sentence(&mut h, "just words");
        h.runtime.drain();
        // Default placement has one slot per VM: nothing to pack onto.
        let err = h.runtime.consolidate(h.count).unwrap_err();
        assert!(matches!(err, Error::Invariant(_)));

        let config = RuntimeConfig {
            pool: seep_cloud::VmPoolConfig::default().with_slots_per_vm(2),
            ..RuntimeConfig::default()
        };
        let mut h = word_count_harness(config);
        inject_sentence(&mut h, "just words");
        h.runtime.drain();
        // A single partition has nothing to consolidate with.
        assert!(h.runtime.consolidate(h.count).is_err());
        assert!(h.runtime.metrics().consolidates().is_empty());
    }

    #[test]
    fn failing_one_partition_fails_its_vm_co_residents() {
        let config = RuntimeConfig {
            pool: seep_cloud::VmPoolConfig::default().with_slots_per_vm(2),
            ..RuntimeConfig::default()
        };
        let mut h = word_count_harness(config);
        inject_sentence(&mut h, "shared fate");
        h.runtime.drain();
        h.runtime.advance_to(5_000);
        let target = counter_instance(&h);
        h.runtime.scale_out(target, 2).unwrap();
        h.runtime.drain();
        h.runtime.consolidate(h.count).unwrap();
        let parts = h.runtime.partitions(h.count);
        assert_eq!(
            h.runtime.placement().vm_of(parts[0]),
            h.runtime.placement().vm_of(parts[1]),
            "both partitions share one VM after consolidation"
        );

        // A VM crash is a VM crash: both co-residents go down.
        h.runtime.fail_operator(parts[0]);
        assert!(h.runtime.workers.get(&parts[0]).unwrap().is_failed());
        assert!(h.runtime.workers.get(&parts[1]).unwrap().is_failed());
    }

    #[test]
    fn rebalance_operator_resplits_all_partitions_in_one_plan() {
        let mut h = word_count_harness(RuntimeConfig::default());
        for i in 0..40 {
            inject_sentence(&mut h, &format!("skew{i} filler"));
        }
        h.runtime.drain();
        h.runtime.advance_to(5_000); // checkpoint
        let target = counter_instance(&h);
        h.runtime.scale_out(target, 4).unwrap();
        h.runtime.drain();
        assert_eq!(h.runtime.parallelism(h.count), 4);
        let vms_before = h.runtime.vm_count();

        let outcome = h.runtime.rebalance_operator(h.count).unwrap();
        h.runtime.drain();
        // One plan re-split all four partitions; the deployment is unchanged.
        assert_eq!(outcome.new_operators.len(), 4);
        assert_eq!(h.runtime.parallelism(h.count), 4);
        assert_eq!(h.runtime.vm_count(), vms_before);
        assert_eq!(h.runtime.metrics().rebalances().len(), 1);
        let record = &h.runtime.metrics().rebalances()[0];
        assert_eq!(record.parallelism, 4);
        assert!(
            record.timing.post_split_imbalance > 0.0,
            "the pooled sample must predict the post-split imbalance"
        );
        // No word lost or duplicated by the four-way move.
        assert_eq!(count_of(&h, "filler"), 40);
        assert_eq!(count_of(&h, "skew7"), 1);
    }

    #[test]
    fn try_advance_to_surfaces_missing_placement_as_invariant() {
        let mut h = word_count_harness(RuntimeConfig::default());
        inject_sentence(&mut h, "report me");
        h.runtime.drain();
        // Break the invariant behind the runtime's back: the counter worker
        // stays alive but loses its placement entry.
        let counter = counter_instance(&h);
        h.runtime.placement.release(counter);
        let err = h.runtime.try_advance_to(5_000).unwrap_err();
        assert!(
            matches!(err, Error::Invariant(ref msg) if msg.contains("placement")),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn auto_consolidate_packs_idle_partitions() {
        let mut policy = crate::ScalingPolicy::default()
            .with_scale_in(0.2)
            .with_consolidate();
        policy.scale_in_reports = 2;
        let config = RuntimeConfig {
            scaling_policy: policy,
            pool: seep_cloud::VmPoolConfig::default().with_slots_per_vm(2),
            ..RuntimeConfig::default()
        };
        let mut h = word_count_harness(config);
        h.runtime.set_auto_scale(true);
        inject_sentence(&mut h, "warm up words");
        h.runtime.drain();
        let target = counter_instance(&h);
        h.runtime.scale_out(target, 4).unwrap();
        h.runtime.drain();
        let vms_before = h.runtime.vm_count();

        // No load: the control loop packs the idle partitions onto shared
        // slots before any sibling pair is merged away.
        for step in 1..=4u64 {
            h.runtime.advance_to(step * 5_000);
        }
        assert!(
            !h.runtime.metrics().consolidates().is_empty(),
            "idle partitions must be consolidated"
        );
        assert!(h.runtime.vm_count() < vms_before, "VMs handed back");
    }

    #[test]
    fn scale_out_of_missing_operator_fails() {
        let mut h = word_count_harness(RuntimeConfig::default());
        let err = h.runtime.scale_out(OperatorId::new(999), 2);
        assert!(err.is_err());
        let err = h.runtime.scale_out(counter_instance(&h), 0);
        assert!(err.is_err());
    }

    #[test]
    fn failed_operator_cannot_be_checkpointed() {
        let mut h = word_count_harness(RuntimeConfig::default());
        let counter = counter_instance(&h);
        h.runtime.fail_operator(counter);
        assert!(h.runtime.checkpoint_operator(counter).is_err());
    }

    #[test]
    fn sink_latency_is_recorded_after_window_close() {
        let mut h = word_count_harness(RuntimeConfig::default());
        inject_sentence(&mut h, "latency probe words");
        h.runtime.drain();
        h.runtime.advance_to(30_000);
        h.runtime.drain();
        assert!(h.runtime.metrics().latency_samples() > 0);
        let snapshot = h.runtime.metrics().snapshot();
        assert!(snapshot.latency_p95_ms >= 0.0);
    }

    fn health_of(h: &Harness, instance: OperatorId) -> seep_core::HealthState {
        h.runtime
            .health()
            .into_iter()
            .find(|o| o.operator == instance)
            .map(|o| o.state)
            .expect("instance reported")
    }

    #[test]
    fn health_reports_failed_recovering_then_ok() {
        let mut h = word_count_harness(RuntimeConfig::default());
        inject_sentence(&mut h, "health check words");
        h.runtime.drain();
        h.runtime.advance_to(5_000);
        for o in h.runtime.health() {
            assert_eq!(o.state, seep_core::HealthState::Ok, "{} healthy", o.name);
        }

        let failed = counter_instance(&h);
        h.runtime.fail_operator(failed);
        assert_eq!(health_of(&h, failed), seep_core::HealthState::Failed);

        h.runtime.recover(failed, 1).unwrap();
        let recovered = counter_instance(&h);
        assert_ne!(recovered, failed);
        assert_eq!(
            health_of(&h, recovered),
            seep_core::HealthState::Recovering,
            "recovery plan committed at the current instant"
        );
        // Time moves on: the plan is history, the operator is healthy again.
        h.runtime.advance_to(6_000);
        assert_eq!(health_of(&h, recovered), seep_core::HealthState::Ok);
    }

    #[test]
    fn health_reports_reconfiguring_during_a_plan_instant() {
        let mut h = word_count_harness(RuntimeConfig::default());
        inject_sentence(&mut h, "reconfig health words");
        h.runtime.drain();
        h.runtime.advance_to(5_000);
        let target = counter_instance(&h);
        h.runtime.scale_out(target, 2).unwrap();
        for id in h.runtime.partitions(h.count) {
            assert_eq!(health_of(&h, id), seep_core::HealthState::Reconfiguring);
        }
        // Sibling logical operators are unaffected.
        let splitter = h.runtime.partitions(h.split)[0];
        assert_eq!(health_of(&h, splitter), seep_core::HealthState::Ok);
        h.runtime.advance_to(10_000);
        for id in h.runtime.partitions(h.count) {
            assert_eq!(health_of(&h, id), seep_core::HealthState::Ok);
        }
    }

    #[test]
    fn health_reports_backpressure_from_queue_depth() {
        let config = RuntimeConfig {
            scaling_policy: crate::ScalingPolicy::default().with_backpressure_queue(1),
            ..RuntimeConfig::default()
        };
        let mut h = word_count_harness(config);
        // Inject without draining: the splitter's inbound queue holds the
        // tuple, at or above the (tiny) watermark.
        inject_sentence(&mut h, "queued");
        let splitter = h.runtime.partitions(h.split)[0];
        assert_eq!(
            health_of(&h, splitter),
            seep_core::HealthState::Backpressured
        );
        h.runtime.drain();
        assert_eq!(health_of(&h, splitter), seep_core::HealthState::Ok);
    }

    #[test]
    fn journal_records_scale_out_rebalance_and_consolidate() {
        let config = RuntimeConfig {
            pool: seep_cloud::VmPoolConfig::default().with_slots_per_vm(2),
            ..RuntimeConfig::default()
        };
        let mut h = word_count_harness(config);
        let journal = h.runtime.journal();
        for sentence in ["journal alpha beta", "journal beta", "journal gamma delta"] {
            inject_sentence(&mut h, sentence);
        }
        h.runtime.drain();
        h.runtime.advance_to(5_000);

        let target = counter_instance(&h);
        h.runtime.scale_out(target, 4).unwrap();
        h.runtime.drain();
        h.runtime.advance_to(10_000);
        h.runtime.rebalance_operator(h.count).unwrap();
        h.runtime.drain();
        h.runtime.advance_to(15_000);
        h.runtime.consolidate(h.count).unwrap();
        h.runtime.drain();

        let events = journal.events();
        assert_eq!(events.len(), 3);
        let kinds: Vec<JournalKind> = events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                JournalKind::ScaleOut,
                JournalKind::Rebalance,
                JournalKind::Consolidate
            ]
        );
        for e in &events {
            assert!(e.committed(), "{}: {}", e.kind.label(), e.outcome);
            assert_eq!(e.trigger, PlanTrigger::Manual);
            assert_eq!(e.operator, "word_counter");
            assert_eq!(e.logical, h.count.0);
            assert!(!e.vacated.is_empty());
            assert!(!e.placed.is_empty());
            assert!(e.timing.total_us > 0, "phases timed");
        }
        let scale_out = &events[0];
        assert_eq!(scale_out.at_ms, 5_000);
        assert_eq!(scale_out.new_parallelism, 4);
        assert!(
            !scale_out.acquired_vms.is_empty(),
            "scale out draws fresh VMs"
        );
        let rebalance = &events[1];
        assert_eq!(rebalance.new_parallelism, 4);
        assert!(
            rebalance.released_vms.is_empty() && rebalance.acquired_vms.is_empty(),
            "a rebalance reuses every VM"
        );
        let consolidate = &events[2];
        assert!(
            !consolidate.released_vms.is_empty(),
            "consolidation empties VMs"
        );
        assert_eq!(journal.total(), 3);

        let text = Journal::render(&events);
        for needle in ["scale_out", "rebalance", "consolidate", "word_counter"] {
            assert!(text.contains(needle), "replay lists {needle}: {text}");
        }
    }

    #[test]
    fn journal_records_recovery_and_rejected_plans() {
        let mut h = word_count_harness(RuntimeConfig::default());
        inject_sentence(&mut h, "crash and learn");
        h.runtime.drain();
        h.runtime.advance_to(5_000);
        let failed = counter_instance(&h);
        h.runtime.fail_operator(failed);
        h.runtime.recover(failed, 2).unwrap();

        // A doomed plan: partitions of different logical operators cannot
        // merge. The executor rejects it and the journal says so.
        let counter = counter_instance(&h);
        let splitter = h.runtime.partitions(h.split)[0];
        assert!(h.runtime.scale_in(counter, splitter).is_err());

        let events = h.runtime.journal().events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, JournalKind::Recovery);
        assert!(events[0].committed());
        assert_eq!(events[0].new_parallelism, 2);
        assert!(
            events[0].vacated[0].vm.is_none(),
            "the failed instance had already lost its slot"
        );
        assert_eq!(events[1].kind, JournalKind::ScaleIn);
        assert!(!events[1].committed());
        assert!(
            events[1].outcome.starts_with("rejected:"),
            "{}",
            events[1].outcome
        );
    }

    #[test]
    fn auto_scale_plans_are_journalled_with_the_autoscale_trigger() {
        let mut policy = crate::ScalingPolicy::default().with_scale_in(0.2);
        policy.scale_in_reports = 2;
        let config = RuntimeConfig {
            scaling_policy: policy,
            ..RuntimeConfig::default()
        };
        let mut h = word_count_harness(config);
        h.runtime.set_auto_scale(true);
        inject_sentence(&mut h, "idle after this");
        h.runtime.drain();
        let target = counter_instance(&h);
        h.runtime.scale_out(target, 2).unwrap();
        h.runtime.drain();
        // Idle reports trip the scale-in path of the control loop.
        for step in 1..=4u64 {
            h.runtime.advance_to(step * 5_000);
        }
        assert_eq!(h.runtime.parallelism(h.count), 1);
        let events = h.runtime.journal().events();
        let merge = events
            .iter()
            .find(|e| e.kind == JournalKind::ScaleIn)
            .expect("control-loop merge journalled");
        assert_eq!(merge.trigger, PlanTrigger::AutoScale);
        // The manual scale out that preceded it stays Manual.
        assert_eq!(events[0].kind, JournalKind::ScaleOut);
        assert_eq!(events[0].trigger, PlanTrigger::Manual);
    }

    #[test]
    fn obs_snapshot_reflects_runtime_state() {
        let mut h = word_count_harness(RuntimeConfig::default());
        inject_sentence(&mut h, "snapshot words here");
        h.runtime.drain();
        h.runtime.advance_to(30_000);
        h.runtime.drain();
        let target = counter_instance(&h);
        h.runtime.scale_out(target, 2).unwrap();

        let snap = h.runtime.obs_snapshot();
        assert_eq!(snap.now_ms, 30_000);
        assert_eq!(snap.health.len(), h.runtime.workers.len());
        assert!(snap.latency.count > 0, "sink latencies flowed in");
        assert!(!snap.occupancy.is_empty());
        assert_eq!(snap.vms_running, h.runtime.vm_count());
        assert_eq!(snap.journal_events, 1);
        assert_eq!(
            snap.reconfig_phases.len(),
            1,
            "only scale_out timings so far"
        );
        assert_eq!(snap.reconfig_phases[0].kind, "scale_out");
        assert_eq!(snap.reconfig_phases[0].count, 1);
        // The exposition of a live snapshot passes the scrape-side parser.
        let text = crate::obs::render_prometheus(&snap);
        crate::obs::validate_exposition(&text).expect("live exposition valid");
    }
}
