//! # seep-runtime
//!
//! The stream processing system (SPS) itself: it deploys a query graph onto
//! simulated cloud VMs, hosts the operators, checkpoints and backs up their
//! state, detects bottlenecks and failures, and performs the paper's
//! integrated scale out / recovery (Algorithm 3) using the state-management
//! primitives of `seep-core`.
//!
//! Queries are described and deployed through the typed job facade in
//! [`api`]: [`api::Job::builder`] fuses the dataflow topology with the
//! operator factories (each node takes its factory at declaration) and
//! [`api::Job::deploy`] returns an [`api::JobHandle`] that drives the
//! deployment by operator name. The handle wraps the low-level layer —
//! [`runtime::Runtime::deploy`] over a hand-built
//! [`seep_core::QueryGraph`] plus factory map — which remains public.
//!
//! The runtime is **controller-driven**: the experiment harness (or an
//! example binary) owns a [`runtime::Runtime`], injects source tuples,
//! advances virtual time with [`runtime::Runtime::advance_to`] (which triggers
//! checkpoints, window ticks, utilisation reports and the scaling policy) and
//! drains the data plane with [`runtime::Runtime::drain`]. Tuples really flow
//! through serialising [`seep_net`] channels and operators really execute, so
//! wall-clock measurements of checkpoint cost, processing latency and
//! recovery time are meaningful; virtual time only controls *when* periodic
//! actions happen, which lets experiments with 30-second windows and
//! multi-minute failure schedules run in seconds.
//!
//! Three recovery strategies are provided for the comparison in Fig. 11:
//! the paper's checkpoint-based recovery (R+SM), upstream backup (UB) and
//! source replay (SR).

#![warn(missing_docs)]

pub mod api;
pub mod bottleneck;
pub mod config;
pub mod metrics;
pub mod obs;
mod parallel;
pub mod placement;
pub mod plan;
pub mod reconfig;
pub mod recovery;
pub mod runtime;
pub mod worker;

pub use api::{Job, JobBuilder, JobHandle, SinkCollector};
pub use bottleneck::{BottleneckDetector, ScalingPolicy};
pub use config::{BatchConfig, PlacementPreference, RuntimeConfig};
pub use metrics::{
    ConsolidateRecord, Metrics, MetricsSnapshot, RebalanceRecord, ReconfigTiming, ScaleInRecord,
    ScaleOutRecord, SplitKind, StoreIoRecord,
};
pub use obs::{
    HealthReport, Journal, JournalEvent, JournalKind, ObsServer, ObsSnapshot, OperatorHealth,
    PlanTrigger,
};
pub use placement::Placement;
pub use plan::{FusionPolicy, PhysicalPlan, PlanManifest};
pub use reconfig::{ReconfigKind, ReconfigPlan, SplitPolicy};
pub use recovery::RecoveryStrategy;
pub use runtime::{ConsolidateOutcome, RebalanceOutcome, Runtime, ScaleInOutcome, ScaleOutOutcome};
pub use worker::WorkerCore;

// Re-exported so experiment drivers can configure the checkpoint-store
// subsystem without depending on `seep-store` directly.
pub use seep_store::{StoreBackendKind, StoreConfig, StoreStats};
// Re-exported so ops-plane consumers read health states and pool statistics
// without depending on the lower crates directly.
pub use seep_cloud::PoolStats;
pub use seep_core::HealthState;
