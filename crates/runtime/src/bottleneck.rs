//! Bottleneck detection and the scaling policy (§5.1).
//!
//! Every `r` seconds the VMs hosting operators submit CPU utilisation
//! reports; when `k` consecutive reports of an operator exceed the threshold
//! δ, the operator is declared a bottleneck and the scale-out coordinator is
//! asked to parallelise it. The paper determines empirically that `r = 5 s`,
//! `k = 2` and `δ = 70 %` give appropriate scaling behaviour.

use serde::{Deserialize, Serialize};

use seep_cloud::CpuMonitor;
use seep_core::OperatorId;

/// The scaling policy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingPolicy {
    /// CPU utilisation threshold δ in `[0, 1]`.
    pub threshold: f64,
    /// Number of consecutive reports above the threshold required (k).
    pub consecutive_reports: usize,
    /// Report interval r in milliseconds.
    pub report_interval_ms: u64,
    /// Additional partitions created per scale-out action (the paper scales
    /// one bottleneck operator at a time, splitting it in two).
    pub partitions_per_action: usize,
}

impl Default for ScalingPolicy {
    fn default() -> Self {
        ScalingPolicy {
            threshold: 0.70,
            consecutive_reports: 2,
            report_interval_ms: 5_000,
            partitions_per_action: 2,
        }
    }
}

impl ScalingPolicy {
    /// A policy with a different utilisation threshold (used by the δ sweep
    /// of Fig. 9).
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }
}

/// Detects bottleneck operators from CPU utilisation reports.
#[derive(Debug)]
pub struct BottleneckDetector {
    policy: ScalingPolicy,
}

impl BottleneckDetector {
    /// Create a detector with the given policy.
    pub fn new(policy: ScalingPolicy) -> Self {
        BottleneckDetector { policy }
    }

    /// The policy in use.
    pub fn policy(&self) -> &ScalingPolicy {
        &self.policy
    }

    /// The operators among `candidates` whose last `k` reports all exceed δ.
    pub fn bottlenecks(&self, monitor: &CpuMonitor, candidates: &[OperatorId]) -> Vec<OperatorId> {
        candidates
            .iter()
            .copied()
            .filter(|op| {
                monitor.consecutive_above(
                    *op,
                    self.policy.consecutive_reports,
                    self.policy.threshold,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seep_cloud::{UtilizationReport, VmId};

    fn report(op: u64, at: u64, util: f64) -> UtilizationReport {
        UtilizationReport {
            operator: OperatorId::new(op),
            vm: VmId(op),
            at_ms: at,
            utilization: util,
        }
    }

    #[test]
    fn default_policy_matches_paper() {
        let p = ScalingPolicy::default();
        assert!((p.threshold - 0.70).abs() < 1e-9);
        assert_eq!(p.consecutive_reports, 2);
        assert_eq!(p.report_interval_ms, 5_000);
        let p10 = p.with_threshold(0.10);
        assert!((p10.threshold - 0.10).abs() < 1e-9);
    }

    #[test]
    fn detects_operator_with_k_consecutive_high_reports() {
        let monitor = CpuMonitor::new(16);
        let detector = BottleneckDetector::new(ScalingPolicy::default());
        let ops = [OperatorId::new(1), OperatorId::new(2)];

        monitor.record(report(1, 0, 0.9));
        monitor.record(report(2, 0, 0.4));
        assert!(
            detector.bottlenecks(&monitor, &ops).is_empty(),
            "only one report"
        );

        monitor.record(report(1, 5_000, 0.85));
        monitor.record(report(2, 5_000, 0.5));
        assert_eq!(
            detector.bottlenecks(&monitor, &ops),
            vec![OperatorId::new(1)]
        );
    }

    #[test]
    fn dip_below_threshold_resets_detection() {
        let monitor = CpuMonitor::new(16);
        let detector = BottleneckDetector::new(ScalingPolicy::default());
        let ops = [OperatorId::new(1)];
        monitor.record(report(1, 0, 0.9));
        monitor.record(report(1, 5_000, 0.6));
        monitor.record(report(1, 10_000, 0.9));
        assert!(detector.bottlenecks(&monitor, &ops).is_empty());
        assert_eq!(detector.policy().consecutive_reports, 2);
    }
}
