//! Bottleneck / under-utilisation detection and the bidirectional scaling
//! policy (§5.1, §3.3).
//!
//! Every `r` seconds the VMs hosting operators submit CPU utilisation
//! reports; when `k` consecutive reports of an operator exceed the threshold
//! δ, the operator is declared a bottleneck and the scale-out coordinator is
//! asked to parallelise it. The paper determines empirically that `r = 5 s`,
//! `k = 2` and `δ = 70 %` give appropriate scaling behaviour.
//!
//! The policy is bidirectional: the paper lists *merge* as the scale-in
//! counterpart of the partition primitives, releasing a VM when partitions of
//! a logical operator are under-utilised. Scale in triggers when
//! `scale_in_reports` consecutive reports of *both* partitions of an adjacent
//! sibling pair fall below the low-water threshold `low_threshold`. The low
//! watermark sits well under δ (hysteresis), so a freshly merged operator —
//! whose utilisation is roughly the sum of the two merged partitions — does
//! not immediately trip the bottleneck detector and flap back out.

use serde::{Deserialize, Serialize};

use seep_cloud::CpuMonitor;
use seep_core::OperatorId;

/// The scaling policy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingPolicy {
    /// CPU utilisation threshold δ in `[0, 1]` above which an operator is a
    /// scale-out candidate.
    pub threshold: f64,
    /// Number of consecutive reports above the threshold required (k).
    pub consecutive_reports: usize,
    /// Report interval r in milliseconds.
    pub report_interval_ms: u64,
    /// Additional partitions created per scale-out action (the paper scales
    /// one bottleneck operator at a time, splitting it in two).
    pub partitions_per_action: usize,
    /// Low-water utilisation threshold in `[0, 1]` below which a partition is
    /// a scale-in candidate. Must stay below `threshold`; the gap is the
    /// hysteresis band that keeps the system from flapping between scale out
    /// and scale in. Ignored unless `scale_in` is enabled.
    pub low_threshold: f64,
    /// Consecutive reports below `low_threshold` required before two sibling
    /// partitions are merged. Defaults higher than `consecutive_reports`:
    /// releasing a VM too eagerly costs a re-partition minutes later, whereas
    /// holding it a little longer only costs VM-hours.
    pub scale_in_reports: usize,
    /// Whether the control loop may merge under-utilised partitions and
    /// release VMs. Off by default so experiments that only study scale out
    /// keep the original behaviour.
    pub scale_in: bool,
    /// Whether the control loop may **rebalance** instead of scaling out:
    /// when a partition is a bottleneck but its siblings are cold enough
    /// that the operator's mean utilisation sits below δ, the skew is in
    /// the key split rather than in aggregate demand, and the runtime
    /// re-draws all the boundaries from the observed key distribution
    /// without consuming a VM. Off by default.
    #[serde(default)]
    pub rebalance: bool,
    /// Whether the control loop may **consolidate** under-utilised
    /// partitions: pack them onto shared VM slots (first-fit-decreasing over
    /// [`seep_cloud::VmPoolConfig::slots_per_vm`]) and release the emptied
    /// VMs, keeping parallelism — the scale-in path that does not require
    /// adjacent siblings. Takes effect only together with `scale_in` and a
    /// multi-slot placement. Off by default.
    #[serde(default)]
    pub consolidate: bool,
    /// Inbound queue depth (tuples) at or above which an operator reports
    /// [`seep_core::HealthState::Backpressured`] through the ops plane. A
    /// health watermark only — it does not trigger any scaling action.
    #[serde(default = "default_backpressure_queue")]
    pub backpressure_queue: usize,
}

fn default_backpressure_queue() -> usize {
    10_000
}

impl Default for ScalingPolicy {
    fn default() -> Self {
        ScalingPolicy {
            threshold: 0.70,
            consecutive_reports: 2,
            report_interval_ms: 5_000,
            partitions_per_action: 2,
            low_threshold: 0.20,
            scale_in_reports: 3,
            scale_in: false,
            rebalance: false,
            consolidate: false,
            backpressure_queue: default_backpressure_queue(),
        }
    }
}

impl ScalingPolicy {
    /// A policy with a different utilisation threshold (used by the δ sweep
    /// of Fig. 9).
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Enable scale in with the given low-water threshold.
    pub fn with_scale_in(mut self, low_threshold: f64) -> Self {
        self.scale_in = true;
        self.low_threshold = low_threshold;
        self
    }

    /// Enable skew-driven rebalancing of hot/cold sibling partitions.
    pub fn with_rebalance(mut self) -> Self {
        self.rebalance = true;
        self
    }

    /// Enable consolidation of under-utilised partitions onto shared VM
    /// slots (effective only together with scale in and
    /// `pool.slots_per_vm >= 2`).
    pub fn with_consolidate(mut self) -> Self {
        self.consolidate = true;
        self
    }

    /// A policy with a different backpressure health watermark (inbound
    /// queue depth in tuples).
    pub fn with_backpressure_queue(mut self, queued: usize) -> Self {
        self.backpressure_queue = queued.max(1);
        self
    }

    /// The low-water threshold actually used for scale-in decisions: clamped
    /// below the scale-out threshold so the two triggers can never overlap,
    /// whatever the caller configured. Merging two partitions at most doubles
    /// utilisation, so half of δ is the largest low watermark that cannot
    /// produce an immediate re-split; the clamp enforces it.
    pub fn effective_low_threshold(&self) -> f64 {
        self.low_threshold.min(self.threshold / 2.0)
    }
}

/// Detects bottleneck and under-utilised operators from CPU utilisation
/// reports.
#[derive(Debug)]
pub struct BottleneckDetector {
    policy: ScalingPolicy,
}

impl BottleneckDetector {
    /// Create a detector with the given policy.
    pub fn new(policy: ScalingPolicy) -> Self {
        BottleneckDetector { policy }
    }

    /// The policy in use.
    pub fn policy(&self) -> &ScalingPolicy {
        &self.policy
    }

    /// The operators among `candidates` whose last `k` reports all exceed δ.
    pub fn bottlenecks(&self, monitor: &CpuMonitor, candidates: &[OperatorId]) -> Vec<OperatorId> {
        candidates
            .iter()
            .copied()
            .filter(|op| {
                monitor.consecutive_above(
                    *op,
                    self.policy.consecutive_reports,
                    self.policy.threshold,
                )
            })
            .collect()
    }

    /// The operators among `candidates` whose last `scale_in_reports` reports
    /// are all below the (hysteresis-clamped) low-water threshold. Empty when
    /// scale in is disabled. The caller is responsible for pairing adjacent
    /// siblings — under-utilisation alone does not make an operator mergeable.
    pub fn underutilized(
        &self,
        monitor: &CpuMonitor,
        candidates: &[OperatorId],
    ) -> Vec<OperatorId> {
        if !self.policy.scale_in {
            return Vec::new();
        }
        let low = self.policy.effective_low_threshold();
        candidates
            .iter()
            .copied()
            .filter(|op| monitor.consecutive_below(*op, self.policy.scale_in_reports, low))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seep_cloud::{UtilizationReport, VmId};

    fn report(op: u64, at: u64, util: f64) -> UtilizationReport {
        UtilizationReport {
            operator: OperatorId::new(op),
            vm: VmId(op),
            at_ms: at,
            utilization: util,
        }
    }

    #[test]
    fn default_policy_matches_paper() {
        let p = ScalingPolicy::default();
        assert!((p.threshold - 0.70).abs() < 1e-9);
        assert_eq!(p.consecutive_reports, 2);
        assert_eq!(p.report_interval_ms, 5_000);
        let p10 = p.with_threshold(0.10);
        assert!((p10.threshold - 0.10).abs() < 1e-9);
        assert!(!p.scale_in, "scale in is opt-in");
        assert!(!p.rebalance, "rebalancing is opt-in");
        assert!(!p.consolidate, "consolidation is opt-in");
        assert!(p.with_rebalance().rebalance);
        assert!(p.with_consolidate().consolidate);
        assert!(p.low_threshold < p.threshold);
        assert!(p.scale_in_reports > p.consecutive_reports);
        assert_eq!(p.backpressure_queue, 10_000);
        assert_eq!(p.with_backpressure_queue(0).backpressure_queue, 1);
        assert_eq!(p.with_backpressure_queue(64).backpressure_queue, 64);
    }

    #[test]
    fn low_threshold_is_clamped_for_hysteresis() {
        let p = ScalingPolicy::default().with_scale_in(0.9);
        assert!(p.scale_in);
        // Configured above δ, but the effective watermark stays at δ/2 so a
        // merged operator cannot immediately become a bottleneck again.
        assert!((p.effective_low_threshold() - 0.35).abs() < 1e-9);
        let sane = ScalingPolicy::default().with_scale_in(0.15);
        assert!((sane.effective_low_threshold() - 0.15).abs() < 1e-9);
    }

    #[test]
    fn detects_operator_with_k_consecutive_high_reports() {
        let monitor = CpuMonitor::new(16);
        let detector = BottleneckDetector::new(ScalingPolicy::default());
        let ops = [OperatorId::new(1), OperatorId::new(2)];

        monitor.record(report(1, 0, 0.9));
        monitor.record(report(2, 0, 0.4));
        assert!(
            detector.bottlenecks(&monitor, &ops).is_empty(),
            "only one report"
        );

        monitor.record(report(1, 5_000, 0.85));
        monitor.record(report(2, 5_000, 0.5));
        assert_eq!(
            detector.bottlenecks(&monitor, &ops),
            vec![OperatorId::new(1)]
        );
    }

    #[test]
    fn dip_below_threshold_resets_detection() {
        let monitor = CpuMonitor::new(16);
        let detector = BottleneckDetector::new(ScalingPolicy::default());
        let ops = [OperatorId::new(1)];
        monitor.record(report(1, 0, 0.9));
        monitor.record(report(1, 5_000, 0.6));
        monitor.record(report(1, 10_000, 0.9));
        assert!(detector.bottlenecks(&monitor, &ops).is_empty());
        assert_eq!(detector.policy().consecutive_reports, 2);
    }

    #[test]
    fn underutilized_requires_scale_in_enabled_and_a_full_streak() {
        let monitor = CpuMonitor::new(16);
        let ops = [OperatorId::new(1), OperatorId::new(2)];
        for at in [0, 5_000, 10_000] {
            monitor.record(report(1, at, 0.05));
            monitor.record(report(2, at, 0.5));
        }
        let off = BottleneckDetector::new(ScalingPolicy::default());
        assert!(off.underutilized(&monitor, &ops).is_empty(), "disabled");

        let on = BottleneckDetector::new(ScalingPolicy::default().with_scale_in(0.2));
        assert_eq!(on.underutilized(&monitor, &ops), vec![OperatorId::new(1)]);

        // A busy report breaks the streak.
        monitor.record(report(1, 15_000, 0.6));
        monitor.record(report(1, 20_000, 0.05));
        assert!(on.underutilized(&monitor, &ops).is_empty());
    }

    #[test]
    fn an_operator_is_never_both_bottleneck_and_underutilized() {
        let monitor = CpuMonitor::new(16);
        let ops = [OperatorId::new(1)];
        // Even with a degenerate configuration (low watermark above δ) the
        // clamp keeps the two trigger bands disjoint.
        let policy = ScalingPolicy::default().with_scale_in(0.95);
        let detector = BottleneckDetector::new(policy);
        for at in [0, 5_000, 10_000, 15_000] {
            monitor.record(report(1, at, 0.5));
        }
        let hot = detector.bottlenecks(&monitor, &ops);
        let cold = detector.underutilized(&monitor, &ops);
        assert!(hot.is_empty() && cold.is_empty());
    }
}
