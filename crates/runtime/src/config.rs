//! Runtime configuration.

use serde::{Deserialize, Serialize};

use seep_cloud::{ProviderConfig, VmPoolConfig};
use seep_store::StoreConfig;

use crate::bottleneck::ScalingPolicy;
use crate::reconfig::SplitPolicy;
use crate::recovery::RecoveryStrategy;

/// Configuration of the SPS runtime.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Checkpointing interval `c` in milliseconds (§3.2). The paper's default
    /// for the recovery experiments is 5 s.
    pub checkpoint_interval_ms: u64,
    /// Interval at which windowed operators are ticked, in milliseconds.
    pub tick_interval_ms: u64,
    /// Capacity (in messages) of each operator's inbound channel.
    pub channel_capacity: usize,
    /// Fault-tolerance strategy (R+SM, upstream backup or source replay).
    pub strategy: RecoveryStrategy,
    /// Scaling policy for the bottleneck detector (§5.1).
    pub scaling_policy: ScalingPolicy,
    /// Cloud provider behaviour (provisioning delay, VM limits).
    pub provider: ProviderConfig,
    /// VM pool configuration (§5.2).
    pub pool: VmPoolConfig,
    /// Maximum envelopes a worker drains per step, bounding the work done
    /// before other workers get a turn.
    pub worker_batch: usize,
    /// Record end-to-end latency samples at stateful operators as well as at
    /// sinks. Used by the state-management overhead experiments (§6.3), where
    /// the query's sink only receives window results but the per-tuple
    /// latency at the stateful operator is the quantity of interest.
    pub latency_probe_at_stateful: bool,
    /// Checkpoint-store subsystem configuration: which backend each upstream
    /// VM hosts for the checkpoints backed up to it, and whether backups are
    /// incremental.
    #[serde(default)]
    pub store: StoreConfig,
    /// How reconfiguration plans split key ranges: evenly (the default and
    /// the paper's behaviour) or distribution-guided from a load-weighted
    /// checkpoint sample when the sampled imbalance exceeds a threshold.
    #[serde(default)]
    pub split: SplitPolicy,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            checkpoint_interval_ms: 5_000,
            tick_interval_ms: 1_000,
            channel_capacity: 262_144,
            strategy: RecoveryStrategy::StateManagement,
            scaling_policy: ScalingPolicy::default(),
            provider: ProviderConfig::instant(),
            pool: VmPoolConfig::default(),
            worker_batch: 512,
            latency_probe_at_stateful: false,
            store: StoreConfig::default(),
            split: SplitPolicy::default(),
        }
    }
}

impl RuntimeConfig {
    /// A configuration using the given checkpoint interval (milliseconds).
    pub fn with_checkpoint_interval(mut self, interval_ms: u64) -> Self {
        self.checkpoint_interval_ms = interval_ms;
        self
    }

    /// A configuration using the given recovery strategy.
    pub fn with_strategy(mut self, strategy: RecoveryStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// A configuration using the given checkpoint-store backend.
    pub fn with_store(mut self, store: StoreConfig) -> Self {
        self.store = store;
        self
    }

    /// A configuration using the given key-split policy for reconfiguration
    /// plans.
    pub fn with_split(mut self, split: SplitPolicy) -> Self {
        self.split = split;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_parameters() {
        let c = RuntimeConfig::default();
        assert_eq!(c.checkpoint_interval_ms, 5_000);
        assert_eq!(c.strategy, RecoveryStrategy::StateManagement);
        assert!(c.channel_capacity > 1_000);
        assert_eq!(c.store.backend, seep_store::StoreBackendKind::Mem);
        assert!(!c.store.incremental);
        // Seed behaviour: even splits unless skew-awareness is opted into.
        assert_eq!(c.split, SplitPolicy::Even);
    }

    #[test]
    fn split_policy_is_configurable() {
        let c = RuntimeConfig::default().with_split(SplitPolicy::skew_aware());
        assert!(matches!(c.split, SplitPolicy::SkewAware { .. }));
    }

    #[test]
    fn store_backend_is_configurable() {
        let c = RuntimeConfig::default()
            .with_store(StoreConfig::file("/tmp/seep-cfg-test").with_incremental(true));
        assert_eq!(c.store.backend, seep_store::StoreBackendKind::File);
        assert!(c.store.incremental);
    }

    #[test]
    fn builder_helpers() {
        let c = RuntimeConfig::default()
            .with_checkpoint_interval(10_000)
            .with_strategy(RecoveryStrategy::UpstreamBackup);
        assert_eq!(c.checkpoint_interval_ms, 10_000);
        assert_eq!(c.strategy, RecoveryStrategy::UpstreamBackup);
    }
}
