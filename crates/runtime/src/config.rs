//! Runtime configuration.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use seep_cloud::{ProviderConfig, VmPoolConfig};
use seep_core::LogicalOpId;
use seep_store::StoreConfig;

use crate::bottleneck::ScalingPolicy;
use crate::reconfig::SplitPolicy;
use crate::recovery::RecoveryStrategy;

/// Output batch sizes on the data plane, per producing logical operator.
///
/// A producer's batch size is the number of output tuples grouped into one
/// envelope towards each downstream target. Size 1 — the default — is the
/// seed per-tuple path, bit for bit. Larger sizes amortise channel
/// serialisation, dedup probes and clock updates; the `batch_equivalence`
/// suite pins every size to identical observable behaviour.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchConfig {
    /// Batch size for every producer without an explicit override.
    pub default_size: usize,
    /// Per-producer overrides, keyed by the producing logical operator's raw
    /// id (the edge's upstream end).
    pub per_producer: BTreeMap<u32, usize>,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            default_size: 1,
            per_producer: BTreeMap::new(),
        }
    }
}

impl BatchConfig {
    /// A uniform batch size for every edge.
    pub fn uniform(size: usize) -> Self {
        BatchConfig {
            default_size: size.max(1),
            per_producer: BTreeMap::new(),
        }
    }

    /// Override the batch size on the edges leaving `producer`.
    pub fn with_producer(mut self, producer: LogicalOpId, size: usize) -> Self {
        self.per_producer.insert(producer.0, size.max(1));
        self
    }

    /// The effective batch size for the edges leaving `producer`.
    pub fn size_for(&self, producer: LogicalOpId) -> usize {
        self.per_producer
            .get(&producer.0)
            .copied()
            .unwrap_or(self.default_size)
            .max(1)
    }
}

/// Where scale-out plans place the new partitions they create.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPreference {
    /// Draw a fresh VM from the pool for every new partition — the paper's
    /// one-operator-per-VM deployment and the seed behaviour.
    #[default]
    FreshVm,
    /// Fill partially occupied VM slots before drawing fresh VMs: a new
    /// partition lands on an existing VM with a free slot when one exists,
    /// spreading the query over fewer machines.
    Pack,
}

/// Configuration of the SPS runtime.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Checkpointing interval `c` in milliseconds (§3.2). The paper's default
    /// for the recovery experiments is 5 s.
    pub checkpoint_interval_ms: u64,
    /// Interval at which windowed operators are ticked, in milliseconds.
    pub tick_interval_ms: u64,
    /// Capacity (in messages) of each operator's inbound channel.
    pub channel_capacity: usize,
    /// Fault-tolerance strategy (R+SM, upstream backup or source replay).
    pub strategy: RecoveryStrategy,
    /// Scaling policy for the bottleneck detector (§5.1).
    pub scaling_policy: ScalingPolicy,
    /// Cloud provider behaviour (provisioning delay, VM limits).
    pub provider: ProviderConfig,
    /// VM pool configuration (§5.2).
    pub pool: VmPoolConfig,
    /// Maximum envelopes a worker drains per step, bounding the work done
    /// before other workers get a turn.
    pub worker_batch: usize,
    /// Record end-to-end latency samples at stateful operators as well as at
    /// sinks. Used by the state-management overhead experiments (§6.3), where
    /// the query's sink only receives window results but the per-tuple
    /// latency at the stateful operator is the quantity of interest.
    pub latency_probe_at_stateful: bool,
    /// Checkpoint-store subsystem configuration: which backend each upstream
    /// VM hosts for the checkpoints backed up to it, and whether backups are
    /// incremental.
    #[serde(default)]
    pub store: StoreConfig,
    /// How reconfiguration plans split key ranges: evenly (the default and
    /// the paper's behaviour) or distribution-guided from a load-weighted
    /// checkpoint sample when the sampled imbalance exceeds a threshold.
    #[serde(default)]
    pub split: SplitPolicy,
    /// Output batch sizes on the data plane (1 = the seed per-tuple path).
    #[serde(default)]
    pub batch: BatchConfig,
    /// OS threads `drain` shards live workers across. 0 and 1 both select the
    /// cooperative single-threaded stepper (the default and the seed
    /// behaviour); above 1, the parallel executor groups workers by placement
    /// VM and steps the groups on separate threads, quiescing to a barrier
    /// before anything the single-threaded world owns (ticks, checkpoints,
    /// reconfiguration plans, utilisation reports).
    #[serde(default)]
    pub worker_threads: usize,
    /// Record one end-to-end latency sample per this many eligible tuples.
    /// 0 and 1 both stamp every tuple (the seed behaviour); larger values
    /// thin the histogram's input without shifting its quantiles. Thinning
    /// happens **at the stamp site**: tuples the sampler will discard skip
    /// the timestamp acquisition entirely (emit time 0) and every latency
    /// probe downstream records exactly the tuples that carry a stamp.
    #[serde(default)]
    pub latency_sample_every: u32,
    /// Where scale-out plans place new partitions: fresh VMs (the default,
    /// the seed behaviour) or packed onto partially filled VM slots.
    #[serde(default)]
    pub placement: PlacementPreference,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            checkpoint_interval_ms: 5_000,
            tick_interval_ms: 1_000,
            channel_capacity: 262_144,
            strategy: RecoveryStrategy::StateManagement,
            scaling_policy: ScalingPolicy::default(),
            provider: ProviderConfig::instant(),
            pool: VmPoolConfig::default(),
            worker_batch: 512,
            latency_probe_at_stateful: false,
            store: StoreConfig::default(),
            split: SplitPolicy::default(),
            batch: BatchConfig::default(),
            worker_threads: 1,
            latency_sample_every: 1,
            placement: PlacementPreference::FreshVm,
        }
    }
}

impl RuntimeConfig {
    /// A configuration using the given checkpoint interval (milliseconds).
    pub fn with_checkpoint_interval(mut self, interval_ms: u64) -> Self {
        self.checkpoint_interval_ms = interval_ms;
        self
    }

    /// A configuration using the given recovery strategy.
    pub fn with_strategy(mut self, strategy: RecoveryStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// A configuration using the given checkpoint-store backend.
    pub fn with_store(mut self, store: StoreConfig) -> Self {
        self.store = store;
        self
    }

    /// A configuration using the given key-split policy for reconfiguration
    /// plans.
    pub fn with_split(mut self, split: SplitPolicy) -> Self {
        self.split = split;
        self
    }

    /// A configuration batching every producer's outputs into runs of `size`
    /// tuples per envelope (1 = the seed per-tuple path).
    pub fn with_batch_size(mut self, size: usize) -> Self {
        self.batch = BatchConfig::uniform(size);
        self
    }

    /// A configuration draining the data plane across `threads` OS threads
    /// (1 = the cooperative single-threaded stepper).
    pub fn with_worker_threads(mut self, threads: usize) -> Self {
        self.worker_threads = threads;
        self
    }

    /// A configuration recording one latency sample per `every` eligible
    /// tuples (1 = stamp every tuple, the seed behaviour).
    pub fn with_latency_sampling(mut self, every: u32) -> Self {
        self.latency_sample_every = every;
        self
    }

    /// A configuration using the given scale-out placement preference.
    pub fn with_placement(mut self, placement: PlacementPreference) -> Self {
        self.placement = placement;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_parameters() {
        let c = RuntimeConfig::default();
        assert_eq!(c.checkpoint_interval_ms, 5_000);
        assert_eq!(c.strategy, RecoveryStrategy::StateManagement);
        assert!(c.channel_capacity > 1_000);
        assert_eq!(c.store.backend, seep_store::StoreBackendKind::Mem);
        assert!(!c.store.incremental);
        // Seed behaviour: even splits unless skew-awareness is opted into.
        assert_eq!(c.split, SplitPolicy::Even);
    }

    #[test]
    fn split_policy_is_configurable() {
        let c = RuntimeConfig::default().with_split(SplitPolicy::skew_aware());
        assert!(matches!(c.split, SplitPolicy::SkewAware { .. }));
    }

    #[test]
    fn store_backend_is_configurable() {
        let c = RuntimeConfig::default()
            .with_store(StoreConfig::file("/tmp/seep-cfg-test").with_incremental(true));
        assert_eq!(c.store.backend, seep_store::StoreBackendKind::File);
        assert!(c.store.incremental);
    }

    #[test]
    fn batch_sizes_default_to_per_tuple_and_resolve_overrides() {
        let c = RuntimeConfig::default();
        assert_eq!(c.batch, BatchConfig::default());
        assert_eq!(c.batch.size_for(LogicalOpId(3)), 1, "seed path by default");

        let batch = BatchConfig::uniform(64).with_producer(LogicalOpId(2), 8);
        assert_eq!(batch.size_for(LogicalOpId(1)), 64);
        assert_eq!(batch.size_for(LogicalOpId(2)), 8);
        // Zero is clamped: a batch always carries at least one tuple.
        assert_eq!(BatchConfig::uniform(0).size_for(LogicalOpId(0)), 1);

        let c = RuntimeConfig::default().with_batch_size(128);
        assert_eq!(c.batch.size_for(LogicalOpId(9)), 128);
    }

    #[test]
    fn builder_helpers() {
        let c = RuntimeConfig::default()
            .with_checkpoint_interval(10_000)
            .with_strategy(RecoveryStrategy::UpstreamBackup);
        assert_eq!(c.checkpoint_interval_ms, 10_000);
        assert_eq!(c.strategy, RecoveryStrategy::UpstreamBackup);
    }

    #[test]
    fn placement_defaults_to_fresh_vms() {
        let c = RuntimeConfig::default();
        assert_eq!(c.placement, PlacementPreference::FreshVm);
        let c = c.with_placement(PlacementPreference::Pack);
        assert_eq!(c.placement, PlacementPreference::Pack);
    }

    #[test]
    fn parallelism_and_sampling_default_to_seed_behaviour() {
        let c = RuntimeConfig::default();
        assert_eq!(c.worker_threads, 1, "cooperative stepper by default");
        assert_eq!(c.latency_sample_every, 1, "full stamping by default");

        let c = RuntimeConfig::default()
            .with_worker_threads(4)
            .with_latency_sampling(16);
        assert_eq!(c.worker_threads, 4);
        assert_eq!(c.latency_sample_every, 16);
    }
}
