//! The placement layer: which VM slot hosts which partition.
//!
//! The seed hardened the paper's deployment model into a one-partition-per-VM
//! invariant, scattered across the runtime as a bare
//! `HashMap<OperatorId, VmId>`. [`Placement`] makes the mapping explicit and
//! bidirectional — partition → VM and VM → resident partitions — with a
//! per-VM **slot capacity** ([`VmPoolConfig::slots_per_vm`]). Every
//! reconfiguration plan resolves VMs through it:
//!
//! * scale out places each new partition on a fresh VM from the pool,
//! * scale in restores the merged partition on the survivor's slot,
//! * an N-way rebalance reuses all of the replaced partitions' VMs in key
//!   order, and
//! * **consolidate** packs light partitions onto shared VMs with the
//!   first-fit-decreasing heuristic ([`first_fit_decreasing`]) and releases
//!   the VMs that end up empty.
//!
//! The placement is also the authority for billing attribution: a
//! utilisation report for a partition the placement does not know is an
//! [`Error::Invariant`], not a silent report against VM 0.
//!
//! [`VmPoolConfig::slots_per_vm`]: seep_cloud::VmPoolConfig

use std::collections::{BTreeMap, HashMap};

use seep_cloud::VmId;
use seep_core::{Error, OperatorId, Result};

/// Partition → VM-slot mapping with per-VM capacity.
///
/// Capacity is advisory at this layer: [`assign`](Self::assign) rejects a
/// placement beyond `slots_per_vm`, but during a reconfiguration the executor
/// briefly co-locates a replaced partition with its replacement on the same
/// VM (the old worker is retired within the same plan), so the check allows
/// the instances the caller has marked as outgoing.
#[derive(Debug, Default)]
pub struct Placement {
    slots_per_vm: usize,
    vm_of: HashMap<OperatorId, VmId>,
    residents: BTreeMap<VmId, Vec<OperatorId>>,
}

impl Placement {
    /// An empty placement with `slots_per_vm` operator slots per VM
    /// (clamped to at least 1).
    pub fn new(slots_per_vm: usize) -> Self {
        Placement {
            slots_per_vm: slots_per_vm.max(1),
            vm_of: HashMap::new(),
            residents: BTreeMap::new(),
        }
    }

    /// Operator slots every VM offers.
    pub fn slots_per_vm(&self) -> usize {
        self.slots_per_vm
    }

    /// Place `operator` on `vm`. Fails with [`Error::Invariant`] when the
    /// operator is already placed, or when the VM has no free slot after
    /// discounting residents in `outgoing` (instances being replaced by the
    /// same reconfiguration plan, which vacate their slot before the plan
    /// commits).
    pub fn assign(
        &mut self,
        operator: OperatorId,
        vm: VmId,
        outgoing: &[OperatorId],
    ) -> Result<()> {
        if self.vm_of.contains_key(&operator) {
            return Err(Error::Invariant(format!(
                "operator {operator} is already placed"
            )));
        }
        let residents = self.residents.entry(vm).or_default();
        let effective = residents.iter().filter(|r| !outgoing.contains(r)).count();
        if effective >= self.slots_per_vm {
            return Err(Error::Invariant(format!(
                "VM {vm} has no free slot ({effective}/{} occupied)",
                self.slots_per_vm
            )));
        }
        residents.push(operator);
        self.vm_of.insert(operator, vm);
        Ok(())
    }

    /// Remove `operator` from the placement. Returns the VM it occupied and
    /// whether that VM is now empty (and so can be released to the provider).
    pub fn release(&mut self, operator: OperatorId) -> Option<(VmId, bool)> {
        let vm = self.vm_of.remove(&operator)?;
        let emptied = if let Some(residents) = self.residents.get_mut(&vm) {
            residents.retain(|r| *r != operator);
            let empty = residents.is_empty();
            if empty {
                self.residents.remove(&vm);
            }
            empty
        } else {
            true
        };
        Some((vm, emptied))
    }

    /// The VM hosting `operator`, if the placement knows it.
    pub fn vm_of(&self, operator: OperatorId) -> Option<VmId> {
        self.vm_of.get(&operator).copied()
    }

    /// The VM hosting `operator`; an unknown operator is an invariant
    /// violation (every live worker must occupy exactly one slot).
    pub fn vm_of_required(&self, operator: OperatorId) -> Result<VmId> {
        self.vm_of
            .get(&operator)
            .copied()
            .ok_or_else(|| Error::Invariant(format!("operator {operator} has no VM placement")))
    }

    /// The partitions currently hosted by `vm`, in placement order.
    pub fn residents(&self, vm: VmId) -> &[OperatorId] {
        self.residents.get(&vm).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of partitions currently on `vm`.
    pub fn occupancy(&self, vm: VmId) -> usize {
        self.residents(vm).len()
    }

    /// Free slots on `vm` after discounting residents in `outgoing`.
    pub fn free_slots(&self, vm: VmId, outgoing: &[OperatorId]) -> usize {
        let effective = self
            .residents(vm)
            .iter()
            .filter(|r| !outgoing.contains(r))
            .count();
        self.slots_per_vm.saturating_sub(effective)
    }

    /// VMs that currently host at least one partition, in id order.
    pub fn occupied_vms(&self) -> Vec<VmId> {
        self.residents.keys().copied().collect()
    }

    /// Number of placed partitions.
    pub fn len(&self) -> usize {
        self.vm_of.len()
    }

    /// Whether no partition is placed.
    pub fn is_empty(&self) -> bool {
        self.vm_of.is_empty()
    }
}

/// First-fit-decreasing bin packing for consolidation: place each item
/// (heaviest first) into the first bin with a free slot. `bins` carries each
/// bin's id and free-slot count; `items` carries each item's id and weight.
/// Returns the chosen bin id per item, in the order of `items`.
///
/// Capacity here is slot-count, not weight — the weights only fix a
/// deterministic order in which items claim slots, so the leading bins fill
/// up with the heaviest partitions and the trailing bins are the ones left
/// empty for release. Returns `None` when the bins offer fewer slots than
/// there are items (the caller sized the bins wrongly).
pub fn first_fit_decreasing(
    items: &[(OperatorId, usize)],
    bins: &[(VmId, usize)],
) -> Option<HashMap<OperatorId, VmId>> {
    let total: usize = bins.iter().map(|(_, free)| free).sum();
    if total < items.len() {
        return None;
    }
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|a, b| {
        items[*b]
            .1
            .cmp(&items[*a].1)
            .then_with(|| items[*a].0.cmp(&items[*b].0))
    });
    let mut free: Vec<(VmId, usize)> = bins.to_vec();
    let mut out = HashMap::with_capacity(items.len());
    for idx in order {
        let (op, _) = items[idx];
        let slot = free.iter_mut().find(|(_, f)| *f > 0)?;
        slot.1 -= 1;
        out.insert(op, slot.0);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(i: u64) -> OperatorId {
        OperatorId::new(i)
    }

    #[test]
    fn assign_release_roundtrip_and_emptied_flag() {
        let mut p = Placement::new(2);
        assert!(p.is_empty());
        p.assign(op(1), VmId(7), &[]).unwrap();
        p.assign(op(2), VmId(7), &[]).unwrap();
        assert_eq!(p.vm_of(op(1)), Some(VmId(7)));
        assert_eq!(p.occupancy(VmId(7)), 2);
        assert_eq!(p.residents(VmId(7)), &[op(1), op(2)]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.occupied_vms(), vec![VmId(7)]);

        assert_eq!(p.release(op(1)), Some((VmId(7), false)));
        assert_eq!(p.release(op(2)), Some((VmId(7), true)), "last one empties");
        assert_eq!(p.release(op(2)), None, "double release is a no-op");
        assert!(p.is_empty());
    }

    #[test]
    fn capacity_is_enforced_with_outgoing_discount() {
        let mut p = Placement::new(1);
        p.assign(op(1), VmId(3), &[]).unwrap();
        // A second partition on a 1-slot VM is rejected...
        assert!(p.assign(op(2), VmId(3), &[]).is_err());
        // ...unless the resident is outgoing (being replaced by the same
        // plan), which is the scale-in / rebalance restore step.
        p.assign(op(2), VmId(3), &[op(1)]).unwrap();
        assert_eq!(p.occupancy(VmId(3)), 2, "transiently co-located");
        p.release(op(1));
        assert_eq!(p.residents(VmId(3)), &[op(2)]);
        // Re-placing an operator that is already placed is an error.
        assert!(p.assign(op(2), VmId(4), &[]).is_err());
    }

    #[test]
    fn vm_of_required_surfaces_unknown_operators() {
        let p = Placement::new(1);
        let err = p.vm_of_required(op(9)).unwrap_err();
        assert!(matches!(err, Error::Invariant(_)));
    }

    #[test]
    fn free_slots_accounts_for_outgoing() {
        let mut p = Placement::new(2);
        p.assign(op(1), VmId(1), &[]).unwrap();
        assert_eq!(p.free_slots(VmId(1), &[]), 1);
        assert_eq!(p.free_slots(VmId(1), &[op(1)]), 2);
        assert_eq!(p.free_slots(VmId(9), &[]), 2, "unknown VM is empty");
    }

    #[test]
    fn ffd_packs_heaviest_first_and_fills_bins() {
        let items = [(op(1), 10), (op(2), 90), (op(3), 40), (op(4), 5)];
        let bins = [(VmId(1), 2), (VmId(2), 2)];
        let packed = first_fit_decreasing(&items, &bins).unwrap();
        assert_eq!(packed.len(), 4);
        // Heaviest two land on the first bin, the rest spill to the second.
        assert_eq!(packed[&op(2)], VmId(1));
        assert_eq!(packed[&op(3)], VmId(1));
        assert_eq!(packed[&op(1)], VmId(2));
        assert_eq!(packed[&op(4)], VmId(2));
    }

    #[test]
    fn ffd_rejects_insufficient_capacity() {
        let items = [(op(1), 1), (op(2), 1), (op(3), 1)];
        assert!(first_fit_decreasing(&items, &[(VmId(1), 2)]).is_none());
        assert!(first_fit_decreasing(&[], &[]).is_some());
    }
}
