//! Runtime metrics: processing latency, throughput, checkpoint cost,
//! recovery and scale-out events.
//!
//! The paper reports processing latency percentiles (median, 95th, 99th),
//! throughput over time, recovery times and the number of allocated VMs; the
//! metrics registry collects exactly those so the benchmark harness can print
//! the same series.

use std::collections::HashMap;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use seep_core::{HistogramSnapshot, LatencyHistogram, LogicalOpId, OperatorId};

/// One checkpoint taken by the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointRecord {
    /// Operator checkpointed.
    pub operator: OperatorId,
    /// Virtual time at which it was taken (ms).
    pub at_ms: u64,
    /// Wall-clock cost of taking and backing up the checkpoint (µs).
    pub duration_us: u64,
    /// Size of the checkpoint (bytes).
    pub size_bytes: usize,
    /// Bytes actually written to the backup store (the framed record size
    /// for durable backends; a delta when the backup was incremental).
    #[serde(default)]
    pub stored_bytes: usize,
    /// Whether the backup was shipped as an incremental delta.
    #[serde(default)]
    pub incremental: bool,
}

/// Aggregate I/O counters of one checkpoint-store backend, as observed by
/// the runtime (write side: `backup-state`; restore side: recovery and scale
/// out retrievals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreIoRecord {
    /// Full-checkpoint writes.
    pub writes: u64,
    /// Incremental (delta) writes.
    pub incremental_writes: u64,
    /// Bytes written to the store.
    pub write_bytes: u64,
    /// Cumulative write latency (µs).
    pub write_us: u64,
    /// Checkpoints read back.
    pub restores: u64,
    /// Bytes read back.
    pub restore_bytes: u64,
    /// Cumulative restore latency (µs).
    pub restore_us: u64,
}

/// How the key range of a reconfigured operator was split.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SplitKind {
    /// No split took place (e.g. a merge, or a serial π=1 replacement).
    #[default]
    None,
    /// Even key-space split (hash partitioning).
    Even,
    /// Distribution-guided split from a sampled checkpoint.
    Distribution,
}

impl SplitKind {
    /// Short label for experiment output.
    pub fn label(self) -> &'static str {
        match self {
            SplitKind::None => "none",
            SplitKind::Even => "even",
            SplitKind::Distribution => "distribution",
        }
    }
}

/// Wall-clock cost of one reconfiguration, broken down by plan phase, plus
/// the key-split decision the plan took. Shared by
/// [`ScaleOutRecord`], [`ScaleInRecord`] and [`RecoveryRecord`] so benches
/// read reconfiguration cost from the metrics registry instead of timing the
/// runtime calls externally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ReconfigTiming {
    /// Draining the reconfigured partitions' inbound queues (µs).
    pub drain_us: u64,
    /// Capturing state: checkpoints, backup retrieval, store-side merge (µs).
    pub checkpoint_us: u64,
    /// Rewriting the execution graph and choosing the key split (µs).
    pub rewrite_us: u64,
    /// Splitting or merging the captured checkpoint (µs).
    pub transform_us: u64,
    /// Creating workers and restoring state onto their VMs (µs).
    pub restore_us: u64,
    /// Storing the new partitions' initial backups and retiring the replaced
    /// instances (µs).
    pub commit_us: u64,
    /// Updating routing and replaying buffered tuples (µs).
    pub replay_us: u64,
    /// End-to-end wall-clock cost of the reconfiguration (µs), excluding
    /// catch-up processing.
    pub total_us: u64,
    /// How the key range was split.
    pub split: SplitKind,
    /// Post-split load imbalance over the sampled keys: largest per-partition
    /// share divided by the ideal equal share (1.0 = perfectly balanced,
    /// 0.0 = no sample was available).
    pub post_split_imbalance: f64,
}

/// One recovery performed by the runtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryRecord {
    /// The failed operator that was recovered.
    pub operator: OperatorId,
    /// Parallelisation level used for the recovery (1 = serial recovery).
    pub parallelism: usize,
    /// Wall-clock recovery time in milliseconds (restore + replay + catch-up).
    pub duration_ms: f64,
    /// Number of tuples replayed from upstream buffers.
    pub replayed_tuples: usize,
    /// Strategy label ("R+SM", "UB", "SR").
    pub strategy: String,
    /// Per-phase cost of the underlying reconfiguration plan (excluding the
    /// catch-up processing included in `duration_ms`).
    #[serde(default)]
    pub timing: ReconfigTiming,
}

/// One scale-out action performed by the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleOutRecord {
    /// The logical operator that was repartitioned.
    pub logical: LogicalOpId,
    /// New number of partitions of that logical operator.
    pub new_parallelism: usize,
    /// Virtual time of the action (ms).
    pub at_ms: u64,
    /// Wall-clock cost of the reconfiguration (µs), excluding catch-up.
    pub duration_us: u64,
    /// Per-phase cost and key-split decision of the plan.
    #[serde(default)]
    pub timing: ReconfigTiming,
}

/// One scale-in (operator merge) action performed by the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleInRecord {
    /// The logical operator whose partitions were merged.
    pub logical: LogicalOpId,
    /// New number of partitions of that logical operator.
    pub new_parallelism: usize,
    /// Virtual time of the action (ms).
    pub at_ms: u64,
    /// Wall-clock cost of the merge and reconfiguration (µs), excluding
    /// catch-up.
    pub duration_us: u64,
    /// Tuples replayed from the merged partitions' restored buffers and the
    /// upstream output buffers.
    pub replayed_tuples: usize,
    /// Per-phase cost of the plan.
    #[serde(default)]
    pub timing: ReconfigTiming,
}

/// One rebalance (repartition-in-place) action performed by the runtime: a
/// skewed pair of adjacent partitions had its shared key range re-split by
/// the observed key distribution without adding or releasing a VM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RebalanceRecord {
    /// The logical operator whose partitions were rebalanced.
    pub logical: LogicalOpId,
    /// Parallelism of the logical operator (unchanged by a rebalance).
    pub parallelism: usize,
    /// Virtual time of the action (ms).
    pub at_ms: u64,
    /// Wall-clock cost of the reconfiguration (µs), excluding catch-up.
    pub duration_us: u64,
    /// Tuples replayed from restored and upstream buffers.
    pub replayed_tuples: usize,
    /// Per-phase cost and key-split decision of the plan.
    #[serde(default)]
    pub timing: ReconfigTiming,
}

/// One consolidation (partition bin-packing) action performed by the
/// runtime: the partitions of a logical operator were checkpoint-moved onto
/// shared VM slots and the emptied VMs released, without changing
/// parallelism or key ranges.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConsolidateRecord {
    /// The logical operator whose partitions were packed.
    pub logical: LogicalOpId,
    /// Parallelism of the logical operator (unchanged by a consolidation).
    pub parallelism: usize,
    /// VMs emptied by the packing and released to the provider.
    pub vms_released: usize,
    /// Virtual time of the action (ms).
    pub at_ms: u64,
    /// Wall-clock cost of the reconfiguration (µs), excluding catch-up.
    pub duration_us: u64,
    /// Tuples replayed from restored and upstream buffers.
    pub replayed_tuples: usize,
    /// Per-phase cost of the plan.
    #[serde(default)]
    pub timing: ReconfigTiming,
}

#[derive(Debug, Default)]
struct MetricsInner {
    latencies_us: Vec<u64>,
    latency_hist: LatencyHistogram,
    sink_tuples: u64,
    processed: HashMap<OperatorId, u64>,
    checkpoints: Vec<CheckpointRecord>,
    recoveries: Vec<RecoveryRecord>,
    scale_outs: Vec<ScaleOutRecord>,
    scale_ins: Vec<ScaleInRecord>,
    rebalances: Vec<RebalanceRecord>,
    consolidates: Vec<ConsolidateRecord>,
    dropped_sends: u64,
    store_io: HashMap<String, StoreIoRecord>,
}

/// Thread-safe metrics registry shared by the runtime and its workers.
#[derive(Debug, Default)]
pub struct Metrics {
    inner: Mutex<MetricsInner>,
}

/// A point-in-time copy of aggregate metrics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Number of tuples that reached a sink.
    pub sink_tuples: u64,
    /// Total tuples processed across operators.
    pub total_processed: u64,
    /// Median end-to-end latency (ms).
    pub latency_p50_ms: f64,
    /// 95th percentile end-to-end latency (ms).
    pub latency_p95_ms: f64,
    /// 99th percentile end-to-end latency (ms).
    pub latency_p99_ms: f64,
    /// Number of checkpoints taken.
    pub checkpoints: usize,
    /// Number of recoveries performed.
    pub recoveries: usize,
    /// Number of scale-out actions performed.
    pub scale_outs: usize,
    /// Number of scale-in (merge) actions performed.
    #[serde(default)]
    pub scale_ins: usize,
    /// Number of rebalance (repartition-in-place) actions performed.
    #[serde(default)]
    pub rebalances: usize,
    /// Number of consolidation (partition bin-packing) actions performed.
    #[serde(default)]
    pub consolidates: usize,
    /// Sends that failed because the destination was disconnected.
    pub dropped_sends: u64,
    /// Bytes written to checkpoint stores (all backends).
    pub store_write_bytes: u64,
    /// Bytes read back from checkpoint stores (all backends).
    pub store_restore_bytes: u64,
}

impl Metrics {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one end-to-end latency sample observed at a sink. The sample
    /// feeds both the exact nearest-rank percentiles and the fixed log-scale
    /// histogram the Prometheus exporter renders.
    pub fn record_latency_us(&self, us: u64) {
        let mut inner = self.inner.lock();
        inner.latencies_us.push(us);
        inner.latency_hist.record_us(us);
        inner.sink_tuples += 1;
    }

    /// Record that an operator processed `n` tuples.
    pub fn record_processed(&self, operator: OperatorId, n: u64) {
        *self.inner.lock().processed.entry(operator).or_insert(0) += n;
    }

    /// Record a send that failed because the destination is gone.
    pub fn record_dropped_send(&self) {
        self.inner.lock().dropped_sends += 1;
    }

    /// Record `n` tuples dropped by one failed batch send.
    pub fn record_dropped_sends(&self, n: u64) {
        self.inner.lock().dropped_sends += n;
    }

    /// Record a checkpoint.
    pub fn record_checkpoint(&self, record: CheckpointRecord) {
        self.inner.lock().checkpoints.push(record);
    }

    /// Record a recovery.
    pub fn record_recovery(&self, record: RecoveryRecord) {
        self.inner.lock().recoveries.push(record);
    }

    /// Record a scale-out action.
    pub fn record_scale_out(&self, record: ScaleOutRecord) {
        self.inner.lock().scale_outs.push(record);
    }

    /// Record a scale-in (merge) action.
    pub fn record_scale_in(&self, record: ScaleInRecord) {
        self.inner.lock().scale_ins.push(record);
    }

    /// Record a rebalance (repartition-in-place) action.
    pub fn record_rebalance(&self, record: RebalanceRecord) {
        self.inner.lock().rebalances.push(record);
    }

    /// Record a consolidation (partition bin-packing) action.
    pub fn record_consolidate(&self, record: ConsolidateRecord) {
        self.inner.lock().consolidates.push(record);
    }

    /// Record a checkpoint write against the store backend `backend`.
    pub fn record_store_write(&self, backend: &str, bytes: usize, us: u64, incremental: bool) {
        let mut inner = self.inner.lock();
        let entry = inner.store_io.entry(backend.to_string()).or_default();
        if incremental {
            entry.incremental_writes += 1;
        } else {
            entry.writes += 1;
        }
        entry.write_bytes += bytes as u64;
        entry.write_us += us;
    }

    /// Record a checkpoint restore (read-back) from the backend `backend`.
    pub fn record_store_restore(&self, backend: &str, bytes: usize, us: u64) {
        let mut inner = self.inner.lock();
        let entry = inner.store_io.entry(backend.to_string()).or_default();
        entry.restores += 1;
        entry.restore_bytes += bytes as u64;
        entry.restore_us += us;
    }

    /// The I/O counters of one store backend ("mem", "file", "tiered").
    pub fn store_io(&self, backend: &str) -> StoreIoRecord {
        self.inner
            .lock()
            .store_io
            .get(backend)
            .copied()
            .unwrap_or_default()
    }

    /// I/O counters of every backend that saw traffic, sorted by label.
    pub fn store_io_all(&self) -> Vec<(String, StoreIoRecord)> {
        let mut v: Vec<(String, StoreIoRecord)> = self
            .inner
            .lock()
            .store_io
            .iter()
            .map(|(k, r)| (k.clone(), *r))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// The latency value at percentile `p` (0–100), in milliseconds.
    /// Returns 0 when no samples exist.
    pub fn latency_percentile_ms(&self, p: f64) -> f64 {
        let inner = self.inner.lock();
        percentile_us(&inner.latencies_us, p) / 1_000.0
    }

    /// Number of latency samples recorded.
    pub fn latency_samples(&self) -> usize {
        self.inner.lock().latencies_us.len()
    }

    /// Bucketed copy of the latency distribution: the fixed log-scale
    /// histogram backing the Prometheus `_bucket`/`_sum`/`_count` export.
    pub fn latency_histogram(&self) -> HistogramSnapshot {
        self.inner.lock().latency_hist.snapshot()
    }

    /// Tuples processed by a given operator.
    pub fn processed_by(&self, operator: OperatorId) -> u64 {
        self.inner
            .lock()
            .processed
            .get(&operator)
            .copied()
            .unwrap_or(0)
    }

    /// All recovery records so far.
    pub fn recoveries(&self) -> Vec<RecoveryRecord> {
        self.inner.lock().recoveries.clone()
    }

    /// All checkpoint records so far.
    pub fn checkpoints(&self) -> Vec<CheckpointRecord> {
        self.inner.lock().checkpoints.clone()
    }

    /// All scale-out records so far.
    pub fn scale_outs(&self) -> Vec<ScaleOutRecord> {
        self.inner.lock().scale_outs.clone()
    }

    /// All scale-in records so far.
    pub fn scale_ins(&self) -> Vec<ScaleInRecord> {
        self.inner.lock().scale_ins.clone()
    }

    /// All rebalance records so far.
    pub fn rebalances(&self) -> Vec<RebalanceRecord> {
        self.inner.lock().rebalances.clone()
    }

    /// All consolidation records so far.
    pub fn consolidates(&self) -> Vec<ConsolidateRecord> {
        self.inner.lock().consolidates.clone()
    }

    /// Clear latency samples (used between experiment phases so the measured
    /// percentiles cover only the phase of interest).
    pub fn reset_latencies(&self) {
        let mut inner = self.inner.lock();
        inner.latencies_us.clear();
        inner.latency_hist.reset();
    }

    /// Aggregate snapshot of the registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        MetricsSnapshot {
            sink_tuples: inner.sink_tuples,
            total_processed: inner.processed.values().sum(),
            latency_p50_ms: percentile_us(&inner.latencies_us, 50.0) / 1_000.0,
            latency_p95_ms: percentile_us(&inner.latencies_us, 95.0) / 1_000.0,
            latency_p99_ms: percentile_us(&inner.latencies_us, 99.0) / 1_000.0,
            checkpoints: inner.checkpoints.len(),
            recoveries: inner.recoveries.len(),
            scale_outs: inner.scale_outs.len(),
            scale_ins: inner.scale_ins.len(),
            rebalances: inner.rebalances.len(),
            consolidates: inner.consolidates.len(),
            dropped_sends: inner.dropped_sends,
            store_write_bytes: inner.store_io.values().map(|r| r.write_bytes).sum(),
            store_restore_bytes: inner.store_io.values().map(|r| r.restore_bytes).sum(),
        }
    }
}

/// Percentile of a sample set in µs (nearest-rank). 0 for an empty set.
fn percentile_us(samples: &[u64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)] as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_over_known_samples() {
        let m = Metrics::new();
        for i in 1..=100u64 {
            m.record_latency_us(i * 1_000); // 1..=100 ms
        }
        assert_eq!(m.latency_samples(), 100);
        assert!((m.latency_percentile_ms(50.0) - 50.0).abs() <= 1.0);
        assert!((m.latency_percentile_ms(95.0) - 95.0).abs() <= 1.0);
        assert!((m.latency_percentile_ms(99.0) - 99.0).abs() <= 1.0);
        let snap = m.snapshot();
        assert_eq!(snap.sink_tuples, 100);
        assert!(snap.latency_p99_ms >= snap.latency_p50_ms);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = Metrics::new();
        assert_eq!(m.latency_percentile_ms(95.0), 0.0);
        let snap = m.snapshot();
        assert_eq!(snap.sink_tuples, 0);
        assert_eq!(snap.total_processed, 0);
    }

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.record_processed(OperatorId::new(1), 10);
        m.record_processed(OperatorId::new(1), 5);
        m.record_processed(OperatorId::new(2), 1);
        m.record_dropped_send();
        assert_eq!(m.processed_by(OperatorId::new(1)), 15);
        assert_eq!(m.processed_by(OperatorId::new(9)), 0);
        assert_eq!(m.snapshot().total_processed, 16);
        assert_eq!(m.snapshot().dropped_sends, 1);
    }

    #[test]
    fn event_records_are_kept() {
        let m = Metrics::new();
        m.record_checkpoint(CheckpointRecord {
            operator: OperatorId::new(1),
            at_ms: 5_000,
            duration_us: 200,
            size_bytes: 1024,
            stored_bytes: 1100,
            incremental: false,
        });
        m.record_recovery(RecoveryRecord {
            operator: OperatorId::new(1),
            parallelism: 1,
            duration_ms: 12.5,
            replayed_tuples: 100,
            strategy: "R+SM".into(),
            timing: ReconfigTiming::default(),
        });
        let timing = ReconfigTiming {
            drain_us: 1,
            checkpoint_us: 2,
            rewrite_us: 3,
            transform_us: 4,
            restore_us: 5,
            commit_us: 6,
            replay_us: 7,
            total_us: 28,
            split: SplitKind::Distribution,
            post_split_imbalance: 1.1,
        };
        m.record_scale_out(ScaleOutRecord {
            logical: LogicalOpId(2),
            new_parallelism: 2,
            at_ms: 6_000,
            duration_us: 900,
            timing,
        });
        m.record_scale_in(ScaleInRecord {
            logical: LogicalOpId(2),
            new_parallelism: 1,
            at_ms: 60_000,
            duration_us: 700,
            replayed_tuples: 12,
            timing: ReconfigTiming::default(),
        });
        m.record_rebalance(RebalanceRecord {
            logical: LogicalOpId(2),
            parallelism: 2,
            at_ms: 70_000,
            duration_us: 300,
            replayed_tuples: 4,
            timing,
        });
        assert_eq!(m.checkpoints().len(), 1);
        assert_eq!(m.recoveries().len(), 1);
        assert_eq!(m.scale_outs().len(), 1);
        assert_eq!(m.scale_ins().len(), 1);
        assert_eq!(m.scale_ins()[0].replayed_tuples, 12);
        assert_eq!(m.rebalances().len(), 1);
        assert_eq!(m.scale_outs()[0].timing.split, SplitKind::Distribution);
        assert_eq!(m.scale_outs()[0].timing.split.label(), "distribution");
        assert!(m.scale_outs()[0].timing.post_split_imbalance > 1.0);
        let snap = m.snapshot();
        assert_eq!(snap.checkpoints, 1);
        assert_eq!(snap.recoveries, 1);
        assert_eq!(snap.scale_outs, 1);
        assert_eq!(snap.scale_ins, 1);
        assert_eq!(snap.rebalances, 1);
    }

    #[test]
    fn store_io_counters_accumulate_per_backend() {
        let m = Metrics::new();
        m.record_store_write("file", 1_000, 50, false);
        m.record_store_write("file", 200, 10, true);
        m.record_store_restore("file", 1_200, 80);
        m.record_store_write("mem", 500, 1, false);
        let file = m.store_io("file");
        assert_eq!(file.writes, 1);
        assert_eq!(file.incremental_writes, 1);
        assert_eq!(file.write_bytes, 1_200);
        assert_eq!(file.write_us, 60);
        assert_eq!(file.restores, 1);
        assert_eq!(file.restore_bytes, 1_200);
        assert_eq!(m.store_io("tiered"), StoreIoRecord::default());
        let all = m.store_io_all();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, "file");
        let snap = m.snapshot();
        assert_eq!(snap.store_write_bytes, 1_700);
        assert_eq!(snap.store_restore_bytes, 1_200);
    }

    #[test]
    fn reset_latencies_clears_samples_only() {
        let m = Metrics::new();
        m.record_latency_us(1_000);
        m.record_processed(OperatorId::new(1), 1);
        m.reset_latencies();
        assert_eq!(m.latency_samples(), 0);
        assert_eq!(m.latency_histogram().count, 0, "histogram follows");
        assert_eq!(m.processed_by(OperatorId::new(1)), 1);
    }

    #[test]
    fn latency_histogram_tracks_samples() {
        let m = Metrics::new();
        for i in 1..=100u64 {
            m.record_latency_us(i * 1_000);
        }
        let h = m.latency_histogram();
        assert_eq!(h.count, 100);
        assert_eq!(h.sum_us, (1..=100u64).map(|i| i * 1_000).sum::<u64>());
        assert_eq!(h.counts.iter().sum::<u64>(), 100);
        assert_eq!(*h.cumulative().last().unwrap(), h.count);
    }
}
