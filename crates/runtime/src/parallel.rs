//! Parallel execution engine for the data plane.
//!
//! [`drain_parallel`] shards live workers across N OS threads and steps the
//! shards concurrently until the whole plane is quiescent. The sharding rule
//! follows placement: a worker runs on thread `vm % threads`, so partitions
//! consolidated onto one VM share a thread and keep contending for the same
//! core — the simulator's CPU-contention story stays honest under real
//! threads.
//!
//! The protocol is a sequence of *rounds*. Each round spawns one scoped
//! thread per non-empty shard; a thread steps its workers repeatedly until a
//! full local pass makes no progress, then exits. The scope join is a global
//! barrier, and the drain ends after a round in which no shard processed
//! anything — sends happen only inside `step`, so a silent round proves
//! every inbound channel is empty. That barrier is exactly the quiesce point
//! the reconfiguration protocol needs: ticks, checkpoints, utilisation
//! reports, `ReconfigPlan` execution, replay and the journal all run on the
//! controller thread *between* drains, against a provably idle data plane,
//! so all five plan kinds and recovery keep their single-threaded semantics
//! unchanged.
//!
//! Workers flip into parallel dispatch mode for the duration of the drain:
//! output batches are stamped at ship time under the per-logical-operator
//! emit gate (see [`SharedClock`]), which keeps each logical stream's
//! timestamps arriving monotonically at fan-ins — the invariant the
//! downstream duplicate filters rely on.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use seep_core::OperatorId;
use seep_net::Network;

use crate::metrics::Metrics;
use crate::placement::Placement;
use crate::worker::{SharedClock, WorkerCore};

/// Step every worker across up to `threads` OS threads until the data plane
/// is quiescent; returns the tuples processed. Mirrors the cooperative
/// `Runtime::drain` loop, with the scope join of each round standing in for
/// the cooperative pass boundary.
pub(crate) fn drain_parallel(
    workers: &mut BTreeMap<OperatorId, WorkerCore>,
    placement: &Placement,
    network: &Network,
    metrics: &Metrics,
    epoch: Instant,
    batch: usize,
    threads: usize,
) -> u64 {
    let threads = threads.max(1);
    // Pending batches enqueued cooperatively (e.g. by `inject`) are already
    // stamped and replay-buffered; flush them through the cooperative path
    // before the workers switch to stamp-at-ship parallel dispatch, so no
    // tuple is ever stamped or buffered twice.
    for worker in workers.values_mut() {
        worker.flush_pending(network, metrics);
        worker.set_parallel(true);
    }
    let mut total = 0u64;
    loop {
        // Re-shard every round: a worker's VM can only change between drains,
        // but shards borrow the workers mutably and the borrows must end at
        // the barrier anyway.
        let mut shards: Vec<Vec<&mut WorkerCore>> = (0..threads).map(|_| Vec::new()).collect();
        for (id, worker) in workers.iter_mut() {
            let shard = placement
                .vm_of(*id)
                .map(|vm| (vm.0 % threads as u64) as usize)
                .unwrap_or(0);
            shards[shard].push(worker);
        }
        let round = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for mut shard in shards {
                if shard.is_empty() {
                    continue;
                }
                let round = &round;
                scope.spawn(move || {
                    let mut local = 0u64;
                    loop {
                        let mut pass = 0usize;
                        for worker in shard.iter_mut() {
                            pass += worker.step(network, metrics, epoch, batch);
                        }
                        if pass == 0 {
                            break;
                        }
                        local += pass as u64;
                    }
                    round.fetch_add(local, Ordering::Relaxed);
                });
            }
        });
        let progressed = round.load(Ordering::Relaxed);
        total += progressed;
        if progressed == 0 {
            break;
        }
    }
    for worker in workers.values_mut() {
        worker.set_parallel(false);
    }
    total
}

/// Everything a worker thread touches must cross the thread boundary; keep
/// that provable at compile time rather than discovered at monomorphisation.
#[allow(dead_code)]
fn assert_thread_bounds() {
    fn send<T: Send>() {}
    fn sync<T: Sync>() {}
    send::<WorkerCore>();
    send::<SharedClock>();
    sync::<SharedClock>();
    sync::<Network>();
    sync::<Metrics>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use seep_core::{Key, LogicalOpId, OutputTuple, RoutingState, StatelessFn, StreamId, Tuple};
    use seep_net::{Envelope, Message};

    fn passthrough() -> Box<dyn seep_core::StatefulOperator> {
        Box::new(StatelessFn::new(
            "pass",
            |_, t: &Tuple, out: &mut Vec<OutputTuple>| {
                out.push(OutputTuple::new(t.key, t.payload.clone()));
            },
        ))
    }

    /// Two sibling partitions of one logical operator emit concurrently from
    /// two threads into a shared fan-in; the emit gate must keep the shared
    /// stream monotonic so the downstream duplicate filter drops nothing.
    #[test]
    fn concurrent_siblings_reach_the_fan_in_without_false_drops() {
        let network = Network::new(65_536);
        let metrics = Metrics::new();
        let mut placement = Placement::new(1);
        let epoch = Instant::now();
        let clock = SharedClock::new();
        let sink_rx = network.register(OperatorId::new(30));

        let mut workers: BTreeMap<OperatorId, WorkerCore> = BTreeMap::new();
        for (idx, id) in [10u64, 11].into_iter().enumerate() {
            let rx = network.register(OperatorId::new(id));
            let mut routing = BTreeMap::new();
            routing.insert(LogicalOpId(2), RoutingState::single(OperatorId::new(30)));
            let mut worker = WorkerCore::new(
                OperatorId::new(id),
                LogicalOpId(1),
                passthrough(),
                rx,
                routing,
                clock.clone(),
                false,
                false,
            );
            worker.out_batch = 7;
            workers.insert(OperatorId::new(id), worker);
            // Distinct VMs so the two siblings land on different threads.
            placement
                .assign(OperatorId::new(id), seep_cloud::VmId(idx as u64), &[])
                .unwrap();
        }
        const PER_SIBLING: u64 = 2_000;
        for (offset, id) in [10u64, 11].into_iter().enumerate() {
            for i in 0..PER_SIBLING {
                // Upstream timestamps are per-partition monotonic (distinct
                // synthetic upstream streams), as real routing guarantees.
                network
                    .send(Envelope::new(
                        OperatorId::new(offset as u64),
                        OperatorId::new(id),
                        Message::data(StreamId(offset as u32), Tuple::new(i + 1, Key(i), vec![])),
                    ))
                    .unwrap();
            }
        }
        let processed = drain_parallel(&mut workers, &placement, &network, &metrics, epoch, 64, 2);
        assert_eq!(processed, 2 * PER_SIBLING);

        // Every envelope the fan-in received must pass its duplicate filter:
        // per-stream timestamps must be strictly increasing in arrival order.
        let mut last_ts = 0u64;
        let mut received = 0u64;
        for env in sink_rx.drain() {
            if let Message::DataBatch { batch, .. } = env.message {
                for t in &batch.tuples {
                    assert!(
                        t.ts > last_ts,
                        "shared stream went non-monotonic: {} after {last_ts}",
                        t.ts
                    );
                    last_ts = t.ts;
                    received += 1;
                }
            }
        }
        assert_eq!(received, 2 * PER_SIBLING);
        assert_eq!(clock.last(), 2 * PER_SIBLING);
    }

    /// An empty data plane drains in one silent round.
    #[test]
    fn empty_plane_quiesces_immediately() {
        let network = Network::new(16);
        let metrics = Metrics::new();
        let placement = Placement::new(1);
        let mut workers = BTreeMap::new();
        let total = drain_parallel(
            &mut workers,
            &placement,
            &network,
            &metrics,
            Instant::now(),
            64,
            4,
        );
        assert_eq!(total, 0);
    }
}
