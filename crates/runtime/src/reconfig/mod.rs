//! The unified reconfiguration-plan engine.
//!
//! The paper's central claim is that fault tolerance, scale out and scale in
//! are **one mechanism**: checkpointed operator state that can be split,
//! merged and restored. This module makes that literal. Every
//! reconfiguration — scaling an operator out, merging two partitions in,
//! recovering a failed instance, or rebalancing a skewed pair — is a
//! declarative [`ReconfigPlan`] handed to one executor that owns the shared
//! choreography:
//!
//! ```text
//!  drain ─ pause ─ checkpoint ─ graph-rewrite ─ state split/merge
//!                                        │
//!            replay ─ route ─ restore ◀──┘
//! ```
//!
//! with fail-before-rewrite semantics (every fallible state acquisition runs
//! before the execution graph is touched, so a rejected plan leaves the
//! runtime exactly as it was) and per-phase wall-clock metrics
//! ([`crate::metrics::ReconfigTiming`]).
//!
//! [`Runtime::scale_out`], [`Runtime::scale_in`], [`Runtime::recover`] and
//! [`Runtime::rebalance`] are thin builders over this engine.
//!
//! The plan's split phase is **skew-aware**: with
//! [`SplitPolicy::SkewAware`], the executor samples hot keys from the
//! captured checkpoint (weighted by per-key state footprint, see
//! [`seep_core::Checkpoint::sample_keys`]) and switches from the even
//! key-space split to [`seep_core::KeyRange::split_by_distribution`] when
//! the sampled imbalance exceeds the configured threshold.
//!
//! [`Runtime::scale_out`]: crate::Runtime::scale_out
//! [`Runtime::scale_in`]: crate::Runtime::scale_in
//! [`Runtime::recover`]: crate::Runtime::recover
//! [`Runtime::rebalance`]: crate::Runtime::rebalance

mod executor;
mod plan;

pub use executor::ReconfigOutcome;
pub use plan::{
    ReconfigKind, ReconfigPlan, SplitDecision, SplitPolicy, DEFAULT_IMBALANCE_THRESHOLD,
    DEFAULT_SPLIT_SAMPLE,
};
