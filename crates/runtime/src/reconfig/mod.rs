//! The unified reconfiguration-plan engine.
//!
//! The paper's central claim is that fault tolerance, scale out and scale in
//! are **one mechanism**: checkpointed operator state that can be split,
//! merged and restored. This module makes that literal. Every
//! reconfiguration — scaling an operator out, merging two partitions in,
//! recovering a failed instance, rebalancing all of an operator's
//! partitions, or consolidating them onto shared VM slots — is a
//! declarative [`ReconfigPlan`] handed to one executor that owns the shared
//! choreography:
//!
//! ```text
//!  drain ─ pause ─ checkpoint ─ graph-rewrite ─ state split/merge
//!                                        │
//!            replay ─ route ─ restore ◀──┘
//! ```
//!
//! with fail-before-rewrite semantics (every fallible state acquisition runs
//! before the execution graph is touched, so a rejected plan leaves the
//! runtime exactly as it was) and per-phase wall-clock metrics
//! ([`crate::metrics::ReconfigTiming`]).
//!
//! [`Runtime::scale_out`], [`Runtime::scale_in`], [`Runtime::recover`],
//! [`Runtime::rebalance_operator`] and [`Runtime::consolidate`] are thin
//! builders over this engine; VM slots are resolved through the
//! [placement layer](crate::placement).
//!
//! The plan's split phase is **skew-aware**: with
//! [`SplitPolicy::SkewAware`], the executor samples hot keys from the
//! captured checkpoint (weighted by observed per-key traffic when the
//! checkpoint carries [`seep_core::TrafficStats`], by state footprint
//! otherwise — see [`seep_core::Checkpoint::sample_keys`]) and switches
//! from the even key-space split to
//! [`seep_core::KeyRange::split_by_distribution`] when the sampled
//! imbalance exceeds the configured threshold.
//!
//! [`Runtime::scale_out`]: crate::Runtime::scale_out
//! [`Runtime::scale_in`]: crate::Runtime::scale_in
//! [`Runtime::recover`]: crate::Runtime::recover
//! [`Runtime::rebalance_operator`]: crate::Runtime::rebalance_operator
//! [`Runtime::consolidate`]: crate::Runtime::consolidate

mod executor;
mod plan;

pub use executor::ReconfigOutcome;
pub use plan::{
    ReconfigKind, ReconfigPlan, SplitDecision, SplitPolicy, DEFAULT_IMBALANCE_THRESHOLD,
    DEFAULT_SPLIT_SAMPLE,
};
