//! The reconfiguration-plan executor.
//!
//! One choreography serves every plan shape. The phases, in order:
//!
//! 1. **Resolve & validate** — nothing is touched if the plan is rejected.
//! 2. **Drain & pause** — merge-shaped plans (scale in, rebalance) drain the
//!    pair's inbound queues and pause it; a scale out leaves the (possibly
//!    failed) target alone.
//! 3. **Capture** — obtain the checkpoint to repartition: the backed-up copy
//!    for scale out/recovery, or a store-side merge of the pair's fresh
//!    checkpoints for scale in/rebalance. *Every fallible state acquisition
//!    happens here, before the graph is rewritten*: a failure unpauses the
//!    pair and rejects the plan with the runtime exactly as it was.
//! 4. **Rewrite** — choose the key split (even or distribution-guided from a
//!    load-weighted checkpoint sample) and rewrite the execution graph.
//! 5. **Transform** — partition the captured checkpoint over the new ranges
//!    (Algorithm 2; a merge is the 1-range special case).
//! 6. **Restore** — create workers on their VMs (fresh from the pool for
//!    scale out, reused for merge/rebalance) and install the state.
//! 7. **Commit** — store the new partitions' initial backups, migrate
//!    third-party backups living on reused VMs, retire the replaced
//!    instances and release VMs.
//! 8. **Replay** — new partitions replay their restored output buffers;
//!    upstream operators re-route, migrate pending buffered tuples and
//!    replay everything the captured state does not reflect. Downstream
//!    duplicate filters discard re-deliveries.
//!
//! Per-phase wall-clock durations are recorded in
//! [`ReconfigTiming`](crate::metrics::ReconfigTiming).

use std::time::Instant;

use seep_core::primitives::partition_checkpoint;
use seep_core::{Checkpoint, Error, KeyRange, LogicalOpId, OperatorId, Result, TimestampVec};

use crate::metrics::{ReconfigTiming, SplitKind};
use crate::reconfig::plan::{ReconfigKind, ReconfigPlan, SplitDecision};
use crate::runtime::Runtime;
use crate::worker::WorkerCore;

/// The result of executing a reconfiguration plan.
#[derive(Debug, Clone)]
pub struct ReconfigOutcome {
    /// The logical operator that was reconfigured.
    pub logical: LogicalOpId,
    /// The new physical instances, in key-range order.
    pub new_operators: Vec<OperatorId>,
    /// Parallelism of the logical operator after the plan.
    pub new_parallelism: usize,
    /// Tuples replayed to bring the new instances up to date (for scale out
    /// this counts upstream replays, matching the original accounting; merge
    /// and rebalance also count the restored buffers they re-send).
    pub replayed_tuples: usize,
    /// The VM released back to the provider, if the plan shrank the
    /// deployment.
    pub released_vm: Option<seep_cloud::VmId>,
    /// Per-phase wall-clock cost and the key-split decision taken.
    pub timing: ReconfigTiming,
}

/// Stopwatch over the executor phases.
struct PhaseTimer {
    begun: Instant,
    at: Instant,
}

impl PhaseTimer {
    fn start() -> Self {
        let now = Instant::now();
        PhaseTimer {
            begun: now,
            at: now,
        }
    }

    /// Microseconds since the previous lap.
    fn lap(&mut self) -> u64 {
        let us = self.at.elapsed().as_micros() as u64;
        self.at = Instant::now();
        us
    }

    fn total_us(&self) -> u64 {
        self.begun.elapsed().as_micros() as u64
    }
}

/// A validated plan: the instances it replaces and the per-shape flags the
/// executor branches on.
struct ResolvedPlan {
    /// Instances being replaced. For merge shapes the first entry is the
    /// survivor whose VM hosts (the first of) the new instances.
    olds: Vec<OperatorId>,
    /// `(instance, key range)` of each replaced instance, same order.
    old_ranges: Vec<(OperatorId, KeyRange)>,
    logical: LogicalOpId,
    /// The key range the new instances must cover.
    source_range: KeyRange,
    /// Number of new instances.
    parts: usize,
    previous_parallelism: usize,
    /// Scale out only: whether the target had already crash-stopped.
    was_failed: bool,
    /// Drain and pause the replaced instances before capturing state.
    pause_olds: bool,
    /// Propagate backup-store failures (seed scale-out semantics) instead of
    /// treating the initial backup as best-effort.
    strict_backup: bool,
    /// Count the new instances' own restored-buffer replays in the outcome.
    count_own_replays: bool,
}

impl Runtime {
    /// Execute a reconfiguration plan. See the [module docs](self) for the
    /// phase sequence and failure semantics.
    pub(crate) fn execute_plan(&mut self, plan: &ReconfigPlan) -> Result<ReconfigOutcome> {
        let mut timer = PhaseTimer::start();
        let mut timing = ReconfigTiming::default();

        // Phase 1: resolve & validate.
        let resolved = self.resolve_plan(plan)?;

        // Phase 2: drain & pause.
        if resolved.pause_olds {
            self.drain_inbound(&resolved.olds);
            self.set_all_paused(&resolved.olds, true);
        }
        timing.drain_us = timer.lap();

        // Phase 3: capture state (fail-before-rewrite: any error here leaves
        // the runtime untouched apart from the checkpoints themselves).
        let captured = match self.capture_state(plan, &resolved) {
            Ok(checkpoint) => checkpoint,
            Err(e) => return Err(self.abort_paused(&resolved, e)),
        };
        let reflected = captured.processing.timestamps().clone();
        let emit_clock = captured.emit_clock;
        timing.checkpoint_us = timer.lap();

        // Phase 4: choose the split and rewrite the execution graph.
        let decision = match self.choose_split(plan, &resolved, &captured) {
            Ok(decision) => decision,
            Err(e) => return Err(self.abort_paused(&resolved, e)),
        };
        timing.split = decision.kind;
        timing.post_split_imbalance = decision.post_split_imbalance;
        let new_instances =
            match self
                .graph_mut()
                .repartition(resolved.logical, &resolved.olds, &decision.ranges)
            {
                Ok(instances) => instances,
                Err(e) => return Err(self.abort_paused(&resolved, e)),
            };
        timing.rewrite_us = timer.lap();

        // Phase 5: transform the captured checkpoint (Algorithm 2; a merge
        // is the single-range case and keeps the whole state).
        let assignments: Vec<(OperatorId, KeyRange)> =
            new_instances.iter().map(|i| (i.id, i.key_range)).collect();
        let mut parts = partition_checkpoint(&captured, &assignments)?;
        // Carry the captured emit clock into the parts stored as initial
        // backups: if a new instance's VM fails before its first periodic
        // checkpoint, a serial recovery resets the shared logical clock from
        // the backup, and a zero clock would make downstream duplicate
        // filters discard genuinely new output.
        for part in &mut parts {
            part.emit_clock = emit_clock;
        }
        timing.transform_us = timer.lap();

        // Phase 6: create the new workers on their VMs and restore state.
        match plan.kind {
            ReconfigKind::ScaleOut { .. } => {
                for instance in &new_instances {
                    self.create_worker(instance)?;
                }
            }
            ReconfigKind::ScaleIn { .. } => {
                // The merged operator takes over the survivor's VM.
                let vm = self.vm_of_required(resolved.olds[0])?;
                self.create_worker_on(&new_instances[0], vm)?;
            }
            ReconfigKind::Rebalance { .. } => {
                // Both VMs are reused: the i-th new range lands on the VM of
                // the i-th old range (both lists are in key order).
                for (old, instance) in resolved.olds.iter().zip(&new_instances) {
                    let vm = self.vm_of_required(*old)?;
                    self.create_worker_on(instance, vm)?;
                }
            }
        }
        for (instance, part) in new_instances.iter().zip(parts.iter()) {
            let worker = self.workers.get_mut(&instance.id).expect("just created");
            worker.restore(part.clone());
        }
        // Reset the shared logical clock only when exactly one partition
        // remains afterwards (a serial replacement or a merge to π=1), so no
        // sibling is concurrently emitting on the same clock (§3.2).
        if resolved.previous_parallelism + new_instances.len() == resolved.olds.len() + 1 {
            if let Some(clock) = self.clocks.get(&resolved.logical) {
                clock.reset_to(emit_clock);
            }
        }
        timing.restore_us = timer.lap();

        // Phase 7: commit — initial backups, third-party backup migration,
        // retirement of the replaced instances, VM release.
        let upstream_instances = self.graph().upstream_instances(new_instances[0].id)?;
        if !upstream_instances.is_empty() {
            match self
                .backup
                .store_repartitioned(&resolved.olds, &upstream_instances, &parts)
            {
                Ok(outcomes) => {
                    if resolved.pause_olds {
                        // Merge-shaped plans surface the store write in the
                        // metrics (the merged copy goes through the backend).
                        for put in outcomes {
                            self.metrics.record_store_write(
                                self.config.store.label(),
                                put.bytes_written,
                                put.write_us,
                                false,
                            );
                        }
                    }
                }
                Err(e) if resolved.strict_backup => return Err(e),
                // Best effort otherwise: the state lives in the restored
                // workers, the old backups stay in place (deleted only after
                // a successful put) and the next periodic checkpoint
                // re-establishes the backup.
                Err(_) => {}
            }
        }
        // VMs that survive under a new instance keep the backups *other*
        // operators stored on them: move those over to the new instance's
        // store instead of losing them with the bookkeeping.
        let reused: Vec<(OperatorId, OperatorId)> = match plan.kind {
            ReconfigKind::ScaleOut { .. } => Vec::new(),
            ReconfigKind::ScaleIn { .. } => vec![(resolved.olds[0], new_instances[0].id)],
            ReconfigKind::Rebalance { .. } => resolved
                .olds
                .iter()
                .copied()
                .zip(new_instances.iter().map(|i| i.id))
                .collect(),
        };
        for (old, new) in &reused {
            self.migrate_third_party_backups(&resolved.olds, *old, *new);
        }
        let released_vm = match plan.kind {
            ReconfigKind::ScaleOut { target, .. } => {
                // The replaced operator's VM goes back to the pool; a failed
                // operator's VM is already gone.
                if !resolved.was_failed {
                    if let Some(vm) = self.vm_of.get(&target) {
                        self.pool.release(*vm, self.now_ms);
                    }
                }
                None
            }
            ReconfigKind::ScaleIn { victim, .. } => {
                let vm = self.vm_of_required(victim)?;
                self.pool.release(vm, self.now_ms);
                Some(vm)
            }
            ReconfigKind::Rebalance { .. } => None,
        };
        self.retire_instances(&resolved.olds);
        timing.commit_us = timer.lap();

        // Phase 8: replay. First the new instances re-send their restored
        // output buffers downstream, then the upstream operators re-route,
        // migrate pending tuples and replay everything unreflected.
        let replayed_own = self.replay_restored_buffers(resolved.logical, &new_instances);
        let replayed_upstream = self.update_upstreams(
            resolved.logical,
            &resolved.olds,
            &new_instances,
            &upstream_instances,
            &reflected,
        )?;
        timing.replay_us = timer.lap();
        timing.total_us = timer.total_us();

        let replayed_tuples = replayed_upstream
            + if resolved.count_own_replays {
                replayed_own
            } else {
                0
            };
        Ok(ReconfigOutcome {
            logical: resolved.logical,
            new_operators: new_instances.iter().map(|i| i.id).collect(),
            new_parallelism: self.graph().parallelism(resolved.logical),
            replayed_tuples,
            released_vm,
            timing,
        })
    }

    /// Validate the plan against the current graph and workers without
    /// touching anything.
    fn resolve_plan(&self, plan: &ReconfigPlan) -> Result<ResolvedPlan> {
        match plan.kind {
            ReconfigKind::ScaleOut { target, partitions } => {
                if partitions == 0 {
                    return Err(Error::InvalidParallelism(0));
                }
                let inst = self.graph().instance(target)?.clone();
                let was_failed = self
                    .workers
                    .get(&target)
                    .map(WorkerCore::is_failed)
                    .unwrap_or(true);
                Ok(ResolvedPlan {
                    olds: vec![target],
                    old_ranges: vec![(target, inst.key_range)],
                    logical: inst.logical,
                    source_range: inst.key_range,
                    parts: partitions,
                    previous_parallelism: self.graph().parallelism(inst.logical),
                    was_failed,
                    pause_olds: false,
                    strict_backup: true,
                    count_own_replays: false,
                })
            }
            ReconfigKind::ScaleIn { target, victim }
            | ReconfigKind::Rebalance { target, victim } => {
                if target == victim {
                    return Err(Error::Invariant(
                        "reconfiguring a pair needs two distinct partitions".into(),
                    ));
                }
                let inst_t = self.graph().instance(target)?.clone();
                let inst_v = self.graph().instance(victim)?.clone();
                if inst_t.logical != inst_v.logical {
                    return Err(Error::Invariant(format!(
                        "cannot reconfigure partitions of different logical operators \
                         ({} is {}, {} is {})",
                        target, inst_t.logical, victim, inst_v.logical
                    )));
                }
                for id in [target, victim] {
                    if self
                        .workers
                        .get(&id)
                        .map(WorkerCore::is_failed)
                        .unwrap_or(true)
                    {
                        return Err(Error::Invariant(format!(
                            "cannot reconfigure failed or unknown operator {id} \
                             (recover it instead)"
                        )));
                    }
                    self.vm_of_required(id)?;
                }
                // The pair must own a contiguous interval (the same adjacency
                // rule merge_checkpoints enforces), checked up front so no
                // state has been touched when the request is rejected.
                let (lo, hi) = if inst_t.key_range.lo <= inst_v.key_range.lo {
                    (inst_t.key_range, inst_v.key_range)
                } else {
                    (inst_v.key_range, inst_t.key_range)
                };
                if lo.hi == u64::MAX || lo.hi + 1 != hi.lo {
                    return Err(Error::InvalidKeySplit(format!(
                        "cannot reconfigure non-adjacent partitions {target} ({}) and \
                         {victim} ({})",
                        inst_t.key_range, inst_v.key_range
                    )));
                }
                let rebalance = matches!(plan.kind, ReconfigKind::Rebalance { .. });
                let olds = if rebalance {
                    // Key order, so each new range reuses the VM that owned
                    // that side of the key space.
                    if inst_t.key_range.lo <= inst_v.key_range.lo {
                        vec![target, victim]
                    } else {
                        vec![victim, target]
                    }
                } else {
                    // The survivor (whose VM hosts the merged operator) first.
                    vec![target, victim]
                };
                let old_ranges = olds
                    .iter()
                    .map(|id| {
                        let inst = if *id == target { &inst_t } else { &inst_v };
                        (*id, inst.key_range)
                    })
                    .collect();
                Ok(ResolvedPlan {
                    olds,
                    old_ranges,
                    logical: inst_t.logical,
                    source_range: KeyRange::new(lo.lo, hi.hi),
                    parts: if rebalance { 2 } else { 1 },
                    previous_parallelism: self.graph().parallelism(inst_t.logical),
                    was_failed: false,
                    pause_olds: true,
                    strict_backup: false,
                    count_own_replays: true,
                })
            }
        }
    }

    /// Obtain the checkpoint the plan repartitions.
    fn capture_state(
        &mut self,
        plan: &ReconfigPlan,
        resolved: &ResolvedPlan,
    ) -> Result<Checkpoint> {
        match plan.kind {
            ReconfigKind::ScaleOut { target, .. } => {
                // The backed-up checkpoint of the target (Algorithm 3
                // partitions backup(o)'s copy so the overloaded/failed
                // operator itself is not involved). If no backup exists yet
                // and the operator is alive, take one now; otherwise start
                // from empty state and rely on replay (the UB/SR baselines).
                let restore_started = Instant::now();
                match self.backup.retrieve_measured(target) {
                    Ok((checkpoint, read_bytes)) => {
                        self.metrics.record_store_restore(
                            self.config.store.label(),
                            read_bytes as usize,
                            restore_started.elapsed().as_micros() as u64,
                        );
                        Ok(checkpoint)
                    }
                    Err(_) if !resolved.was_failed && self.config.strategy.checkpoints() => {
                        self.checkpoint_operator(target)?;
                        let restore_started = Instant::now();
                        let (checkpoint, read_bytes) = self.backup.retrieve_measured(target)?;
                        self.metrics.record_store_restore(
                            self.config.store.label(),
                            read_bytes as usize,
                            restore_started.elapsed().as_micros() as u64,
                        );
                        Ok(checkpoint)
                    }
                    // No backup anywhere (UB/SR baselines or a failed, never
                    // checkpointed operator): nothing was read from any store.
                    Err(_) => Ok(Checkpoint::empty(target)),
                }
            }
            ReconfigKind::ScaleIn { target, victim }
            | ReconfigKind::Rebalance { target, victim } => {
                if !self.config.strategy.checkpoints() {
                    // UB/SR baselines keep no checkpoints: the plan starts
                    // from empty state and the untrimmed upstream buffers
                    // rebuild it through replay.
                    return Ok(Checkpoint::empty(target));
                }
                // Checkpoint both partitions (backing up their final state
                // and trimming the upstream buffers to it) and merge the
                // backed-up copies at the store — `merge_for_scale_in` is the
                // inverse of Algorithm 2's partitioning, run by the backup VM
                // when both copies live there. Provisionally stamped with the
                // survivor's id; the transform phase re-stamps it.
                let range_of = |id: OperatorId| {
                    resolved
                        .old_ranges
                        .iter()
                        .find(|(o, _)| *o == id)
                        .map(|(_, r)| *r)
                        .expect("resolved pair")
                };
                let restore_started = Instant::now();
                let read_before = self.backup.aggregate_stats().bytes_restored;
                let (merged, _) = self
                    .checkpoint_operator(target)
                    .and_then(|_| self.checkpoint_operator(victim))
                    .and_then(|_| {
                        self.backup.merge_for_scale_in(
                            target,
                            (target, range_of(target)),
                            (victim, range_of(victim)),
                        )
                    })?;
                let read = self
                    .backup
                    .aggregate_stats()
                    .bytes_restored
                    .saturating_sub(read_before);
                self.metrics.record_store_restore(
                    self.config.store.label(),
                    read as usize,
                    restore_started.elapsed().as_micros() as u64,
                );
                Ok(merged)
            }
        }
    }

    /// Pick the new key ranges for the plan.
    fn choose_split(
        &self,
        plan: &ReconfigPlan,
        resolved: &ResolvedPlan,
        captured: &Checkpoint,
    ) -> Result<SplitDecision> {
        match plan.kind {
            // A merge produces a single range covering the pair.
            ReconfigKind::ScaleIn { .. } => Ok(SplitDecision {
                ranges: vec![resolved.source_range],
                kind: SplitKind::None,
                post_split_imbalance: 0.0,
            }),
            ReconfigKind::ScaleOut { .. } | ReconfigKind::Rebalance { .. } => {
                plan.split
                    .choose(&resolved.source_range, resolved.parts, captured)
            }
        }
    }

    /// Process every queued tuple on the given operators' inbound channels.
    /// Draining before a merge matters for correctness: the merged
    /// reflected-timestamp vector is the pointwise max over the pair, so any
    /// tuple still queued below that watermark would be neither restored nor
    /// replayed.
    fn drain_inbound(&mut self, ops: &[OperatorId]) {
        let network = self.network.clone();
        let metrics = self.metrics.clone();
        let epoch = self.epoch;
        let batch = self.config.worker_batch;
        for id in ops {
            if let Some(worker) = self.workers.get_mut(id) {
                while worker.step(&network, &metrics, epoch, batch) > 0 {}
            }
        }
    }

    fn set_all_paused(&mut self, ops: &[OperatorId], paused: bool) {
        for id in ops {
            if let Some(worker) = self.workers.get_mut(id) {
                worker.set_paused(paused);
            }
        }
    }

    /// Unpause a paused pair and hand the error back — the capture/rewrite
    /// failure path that leaves the runtime exactly as it was.
    fn abort_paused(&mut self, resolved: &ResolvedPlan, e: Error) -> Error {
        if resolved.pause_olds {
            self.set_all_paused(&resolved.olds, false);
        }
        e
    }

    fn vm_of_required(&self, operator: OperatorId) -> Result<seep_cloud::VmId> {
        self.vm_of
            .get(&operator)
            .copied()
            .ok_or_else(|| Error::Invariant(format!("operator {operator} has no VM")))
    }

    /// Move the backups *other* operators stored on `old`'s (surviving) VM
    /// over to `new`'s store; only a released VM's store is genuinely lost.
    fn migrate_third_party_backups(
        &mut self,
        replaced: &[OperatorId],
        old: OperatorId,
        new: OperatorId,
    ) {
        if let (Ok(old_store), Ok(new_store)) =
            (self.backup.store_of(old), self.backup.store_of(new))
        {
            for owner in old_store.owners() {
                if replaced.contains(&owner) {
                    continue; // superseded by the repartitioned checkpoints
                }
                if let Ok(checkpoint) = old_store.latest(owner) {
                    if new_store.put(owner, checkpoint).is_ok()
                        && self.backup.backup_of(owner) == Some(old)
                    {
                        self.backup.set_backup_of(owner, new);
                    }
                }
            }
        }
    }

    /// Remove every trace of the replaced instances from the runtime's
    /// bookkeeping (their VMs have been released or re-used already).
    fn retire_instances(&mut self, olds: &[OperatorId]) {
        for old in olds {
            self.network.disconnect(*old);
            self.workers.remove(old);
            self.backup.unregister_store(*old);
            self.backup.clear_backup_of(*old);
            self.vm_of.remove(old);
            self.monitor.forget(*old);
            self.checkpoint_seq.remove(old);
            self.last_checkpoint_ms.remove(old);
            self.last_backed_up.remove(old);
        }
    }

    /// New partitions replay their restored output buffers downstream
    /// (Algorithm 3, line 7); downstream duplicate filters discard what they
    /// already processed. Routing towards downstream partitions is refreshed
    /// first. Returns the number of tuples re-sent.
    fn replay_restored_buffers(
        &mut self,
        logical: LogicalOpId,
        new_instances: &[seep_core::graph::OperatorInstance],
    ) -> usize {
        let network = self.network.clone();
        let metrics = self.metrics.clone();
        let downstream_logicals = self.graph().query().downstream(logical);
        let routings: Vec<(LogicalOpId, seep_core::RoutingState)> = downstream_logicals
            .iter()
            .filter_map(|ld| self.graph().routing(*ld).ok().map(|r| (*ld, r.clone())))
            .collect();
        let mut planned: Vec<(OperatorId, OperatorId)> = Vec::new();
        for instance in new_instances {
            if let Some(worker) = self.workers.get_mut(&instance.id) {
                for (ld, routing) in &routings {
                    worker.set_routing(*ld, routing.clone());
                }
                planned.extend(
                    worker
                        .buffer()
                        .downstreams()
                        .into_iter()
                        .map(|d| (instance.id, d)),
                );
            }
        }
        let mut replayed = 0;
        for (from, to) in planned {
            if let Some(worker) = self.workers.get(&from) {
                replayed += worker.replay_to(to, &TimestampVec::new(), &network, &metrics);
            }
        }
        replayed
    }

    /// Update the upstream operators: stop, install the new routing, migrate
    /// tuples buffered for the replaced instances to the partition now owning
    /// their key, replay everything `reflected` does not cover, restart
    /// (Algorithm 3, lines 9–14). Returns the number of tuples replayed.
    fn update_upstreams(
        &mut self,
        logical: LogicalOpId,
        olds: &[OperatorId],
        new_instances: &[seep_core::graph::OperatorInstance],
        upstream_instances: &[OperatorId],
        reflected: &TimestampVec,
    ) -> Result<usize> {
        let new_routing = self.graph().routing(logical)?.clone();
        let network = self.network.clone();
        let metrics = self.metrics.clone();
        let mut replayed = 0;
        for up in upstream_instances {
            let Some(worker) = self.workers.get_mut(up) else {
                continue;
            };
            worker.set_paused(true);
            worker.set_routing(logical, new_routing.clone());
            for old in olds {
                let pending = worker
                    .buffer_mut()
                    .remove_downstream(*old)
                    .unwrap_or_default();
                for tuple in pending {
                    if let Some(new_target) = new_routing.route(tuple.key) {
                        worker.buffer_mut().push(new_target, tuple);
                    }
                }
            }
            for instance in new_instances {
                replayed += worker.replay_to(instance.id, reflected, &network, &metrics);
            }
            worker.set_paused(false);
        }
        Ok(replayed)
    }
}
