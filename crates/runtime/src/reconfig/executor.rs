//! The reconfiguration-plan executor.
//!
//! One choreography serves every plan shape. The phases, in order:
//!
//! 1. **Resolve & validate** — nothing is touched if the plan is rejected.
//! 2. **Drain & pause** — merge-shaped plans (scale in, rebalance,
//!    consolidate) drain the replaced partitions' inbound queues and pause
//!    them; a scale out leaves the (possibly failed) target alone.
//! 3. **Capture** — obtain the checkpoint to repartition: the backed-up copy
//!    for scale out/recovery, or a store-side merge of the replaced
//!    partitions' fresh checkpoints (pairwise for scale in, N-way for
//!    rebalance/consolidate). *Every fallible state acquisition happens
//!    here, before the graph is rewritten*: a failure unpauses the
//!    partitions and rejects the plan with the runtime exactly as it was.
//! 4. **Rewrite** — choose the key split (even, distribution-guided from a
//!    load-weighted checkpoint sample, or the unchanged ranges for a
//!    consolidation) and rewrite the execution graph.
//! 5. **Transform** — partition the captured checkpoint over the new ranges
//!    (Algorithm 2; a merge is the 1-range special case).
//! 6. **Restore** — create workers on VM slots resolved through the
//!    [placement layer](crate::placement): fresh from the pool for scale
//!    out, reused in key order for merge/rebalance, first-fit-decreasing
//!    packed for consolidate — and install the state.
//! 7. **Commit** — store the new partitions' initial backups, migrate
//!    third-party backups living on reused VMs, retire the replaced
//!    instances and release every VM the placement reports emptied.
//! 8. **Replay** — new partitions replay their restored output buffers;
//!    upstream operators re-route, migrate pending buffered tuples and
//!    replay everything the captured state does not reflect. Downstream
//!    duplicate filters discard re-deliveries.
//!
//! Per-phase wall-clock durations are recorded in
//! [`ReconfigTiming`](crate::metrics::ReconfigTiming).

use std::time::Instant;

use seep_core::primitives::partition_checkpoint;
use seep_core::{Checkpoint, Error, KeyRange, LogicalOpId, OperatorId, Result, TimestampVec};

use crate::metrics::{ReconfigTiming, SplitKind};
use crate::placement::first_fit_decreasing;
use crate::reconfig::plan::{ReconfigKind, ReconfigPlan, SplitDecision};
use crate::runtime::Runtime;
use crate::worker::WorkerCore;

/// The result of executing a reconfiguration plan.
#[derive(Debug, Clone)]
pub struct ReconfigOutcome {
    /// The logical operator that was reconfigured.
    pub logical: LogicalOpId,
    /// The new physical instances, in key-range order.
    pub new_operators: Vec<OperatorId>,
    /// Parallelism of the logical operator after the plan.
    pub new_parallelism: usize,
    /// Tuples replayed to bring the new instances up to date (for scale out
    /// this counts upstream replays, matching the original accounting; merge,
    /// rebalance and consolidate also count the restored buffers they
    /// re-send).
    pub replayed_tuples: usize,
    /// VMs released back to the provider, if the plan shrank the deployment
    /// (one for a merge that empties the victim's VM, possibly several for a
    /// consolidation).
    pub released_vms: Vec<seep_cloud::VmId>,
    /// Per-phase wall-clock cost and the key-split decision taken.
    pub timing: ReconfigTiming,
}

/// Stopwatch over the executor phases.
struct PhaseTimer {
    begun: Instant,
    at: Instant,
}

impl PhaseTimer {
    fn start() -> Self {
        let now = Instant::now();
        PhaseTimer {
            begun: now,
            at: now,
        }
    }

    /// Microseconds since the previous lap.
    fn lap(&mut self) -> u64 {
        let us = self.at.elapsed().as_micros() as u64;
        self.at = Instant::now();
        us
    }

    fn total_us(&self) -> u64 {
        self.begun.elapsed().as_micros() as u64
    }
}

/// A validated plan: the instances it replaces and the per-shape flags the
/// executor branches on.
struct ResolvedPlan {
    /// Instances being replaced. For a merge the first entry is the survivor
    /// whose VM hosts the merged instance; for rebalance and consolidate the
    /// entries are in key order.
    olds: Vec<OperatorId>,
    /// `(instance, key range)` of each replaced instance, same order.
    old_ranges: Vec<(OperatorId, KeyRange)>,
    logical: LogicalOpId,
    /// The key range the new instances must cover.
    source_range: KeyRange,
    /// Number of new instances.
    parts: usize,
    previous_parallelism: usize,
    /// Scale out only: whether the target had already crash-stopped.
    was_failed: bool,
    /// Drain and pause the replaced instances before capturing state.
    pause_olds: bool,
    /// Propagate backup-store failures (seed scale-out semantics) instead of
    /// treating the initial backup as best-effort.
    strict_backup: bool,
    /// Count the new instances' own restored-buffer replays in the outcome.
    count_own_replays: bool,
    /// Consolidate only: the new instances keep exactly these ranges (in key
    /// order) instead of taking a split decision.
    fixed_ranges: Option<Vec<KeyRange>>,
}

impl Runtime {
    /// Execute a reconfiguration plan. See the [module docs](self) for the
    /// phase sequence and failure semantics.
    pub(crate) fn execute_plan(&mut self, plan: &ReconfigPlan) -> Result<ReconfigOutcome> {
        let mut timer = PhaseTimer::start();
        let mut timing = ReconfigTiming::default();

        // Phase 1: resolve & validate.
        let resolved = self.resolve_plan(plan)?;

        // Partial output batches anywhere in the topology must reach their
        // channels before the plan drains, pauses or captures state: a tuple
        // held in a pending batch would otherwise be invisible to the drain
        // below and to the checkpoint/replay protocol's view of "in flight".
        // A no-op at batch size 1, so the seed path is untouched.
        self.flush_all_pending();

        // Phase 2: drain & pause.
        if resolved.pause_olds {
            self.drain_inbound(&resolved.olds);
            self.set_all_paused(&resolved.olds, true);
        }
        timing.drain_us = timer.lap();

        // Phase 3: capture state (fail-before-rewrite: any error here leaves
        // the runtime untouched apart from the checkpoints themselves).
        let captured = match self.capture_state(plan, &resolved) {
            Ok(checkpoint) => checkpoint,
            Err(e) => return Err(self.abort_paused(&resolved, e)),
        };
        let reflected = captured.processing.timestamps().clone();
        let emit_clock = captured.emit_clock;
        timing.checkpoint_us = timer.lap();

        // Phase 4: choose the split and rewrite the execution graph.
        let decision = match self.choose_split(plan, &resolved, &captured) {
            Ok(decision) => decision,
            Err(e) => return Err(self.abort_paused(&resolved, e)),
        };
        timing.split = decision.kind;
        timing.post_split_imbalance = decision.post_split_imbalance;
        let new_instances =
            match self
                .graph_mut()
                .repartition(resolved.logical, &resolved.olds, &decision.ranges)
            {
                Ok(instances) => instances,
                Err(e) => return Err(self.abort_paused(&resolved, e)),
            };
        timing.rewrite_us = timer.lap();

        // Phase 5: transform the captured checkpoint (Algorithm 2; a merge
        // is the single-range case and keeps the whole state).
        let assignments: Vec<(OperatorId, KeyRange)> =
            new_instances.iter().map(|i| (i.id, i.key_range)).collect();
        let mut parts = partition_checkpoint(&captured, &assignments)?;
        // Carry the captured emit clock into the parts stored as initial
        // backups: if a new instance's VM fails before its first periodic
        // checkpoint, a serial recovery resets the shared logical clock from
        // the backup, and a zero clock would make downstream duplicate
        // filters discard genuinely new output.
        for part in &mut parts {
            part.emit_clock = emit_clock;
        }
        timing.transform_us = timer.lap();

        // Phase 6: create the new workers on their VM slots (resolved through
        // the placement layer) and restore state.
        match plan.kind {
            ReconfigKind::ScaleOut { .. } => {
                for instance in &new_instances {
                    self.create_worker(instance)?;
                }
            }
            ReconfigKind::ScaleIn { .. } => {
                // The merged operator takes over the survivor's slot.
                let vm = self.placement.vm_of_required(resolved.olds[0])?;
                self.create_worker_on(&new_instances[0], vm, &resolved.olds)?;
            }
            ReconfigKind::Rebalance { .. } => {
                // Every VM is reused: the i-th new range lands on the VM of
                // the i-th old range (both lists are in key order), so each
                // VM keeps serving its slice of the key space.
                for (old, instance) in resolved.olds.iter().zip(&new_instances) {
                    let vm = self.placement.vm_of_required(*old)?;
                    self.create_worker_on(instance, vm, &resolved.olds)?;
                }
            }
            ReconfigKind::Consolidate { .. } => {
                // First-fit-decreasing bin packing: the heaviest partitions
                // (by checkpointed state size) claim slots first, over the
                // VMs the operator already occupies in key order, so the
                // leading VMs fill up and the trailing ones empty out.
                let mut bins: Vec<(seep_cloud::VmId, usize)> = Vec::new();
                for old in &resolved.olds {
                    let vm = self.placement.vm_of_required(*old)?;
                    if !bins.iter().any(|(b, _)| *b == vm) {
                        bins.push((vm, self.placement.free_slots(vm, &resolved.olds)));
                    }
                }
                let items: Vec<(OperatorId, usize)> = new_instances
                    .iter()
                    .zip(parts.iter())
                    .map(|(inst, cp)| (inst.id, cp.size_bytes().max(1)))
                    .collect();
                let packed = first_fit_decreasing(&items, &bins).ok_or_else(|| {
                    Error::Invariant("consolidation bin packing ran out of VM slots".into())
                })?;
                for instance in &new_instances {
                    let vm = packed[&instance.id];
                    self.create_worker_on(instance, vm, &resolved.olds)?;
                }
            }
        }
        for (instance, part) in new_instances.iter().zip(parts.iter()) {
            let worker = self.workers.get_mut(&instance.id).expect("just created");
            worker.restore(part.clone());
        }
        // Reset the shared logical clock only when exactly one partition
        // remains afterwards (a serial replacement or a merge to π=1), so no
        // sibling is concurrently emitting on the same clock (§3.2).
        if resolved.previous_parallelism + new_instances.len() == resolved.olds.len() + 1 {
            if let Some(clock) = self.clocks.get(&resolved.logical) {
                clock.reset_to(emit_clock);
            }
        }
        timing.restore_us = timer.lap();

        // Phase 7: commit — initial backups, third-party backup migration,
        // retirement of the replaced instances, VM release.
        let upstream_instances = self.graph().upstream_instances(new_instances[0].id)?;
        if !upstream_instances.is_empty() {
            match self
                .backup
                .store_repartitioned(&resolved.olds, &upstream_instances, &parts)
            {
                Ok(outcomes) => {
                    if resolved.pause_olds {
                        // Merge-shaped plans surface the store write in the
                        // metrics (the merged copy goes through the backend).
                        for put in outcomes {
                            self.metrics.record_store_write(
                                self.config.store.label(),
                                put.bytes_written,
                                put.write_us,
                                false,
                            );
                        }
                    }
                }
                Err(e) if resolved.strict_backup => return Err(e),
                // Best effort otherwise: the state lives in the restored
                // workers, the old backups stay in place (deleted only after
                // a successful put) and the next periodic checkpoint
                // re-establishes the backup.
                Err(_) => {}
            }
        }
        // VMs that survive under a new instance keep the backups *other*
        // operators stored on them: move those over to a new instance on the
        // same VM instead of losing them with the bookkeeping. The pairing is
        // derived from the placement — for a merge this is survivor → merged,
        // for rebalance the key-order identity, for consolidate whatever the
        // packing co-located; a replaced instance whose VM hosts no new one
        // (the merge victim, an emptied consolidation VM) loses its store
        // exactly as a released VM would.
        let reused: Vec<(OperatorId, OperatorId)> = match plan.kind {
            ReconfigKind::ScaleOut { .. } => Vec::new(),
            _ => resolved
                .olds
                .iter()
                .filter_map(|old| {
                    let vm = self.placement.vm_of(*old)?;
                    let new = new_instances
                        .iter()
                        .find(|i| self.placement.vm_of(i.id) == Some(vm))?;
                    Some((*old, new.id))
                })
                .collect(),
        };
        for (old, new) in &reused {
            self.migrate_third_party_backups(&resolved.olds, *old, *new);
        }
        // Retire the replaced instances; the placement reports which VMs are
        // now empty. A scale out hands the (non-failed) target's VM back to
        // the pool without reporting it as a shrink; the merge and
        // consolidate shapes release every emptied VM and report them.
        let emptied = self.retire_instances(&resolved.olds);
        let released_vms: Vec<seep_cloud::VmId> = match plan.kind {
            ReconfigKind::ScaleOut { .. } => {
                if !resolved.was_failed {
                    for vm in &emptied {
                        self.pool.release(*vm, self.now_ms);
                    }
                }
                Vec::new()
            }
            ReconfigKind::Rebalance { .. } => {
                debug_assert!(emptied.is_empty(), "a rebalance reuses every VM");
                Vec::new()
            }
            ReconfigKind::ScaleIn { .. } | ReconfigKind::Consolidate { .. } => {
                for vm in &emptied {
                    self.pool.release(*vm, self.now_ms);
                }
                emptied
            }
        };
        timing.commit_us = timer.lap();

        // Phase 8: replay. First the new instances re-send their restored
        // output buffers downstream, then the upstream operators re-route,
        // migrate pending tuples and replay everything unreflected.
        let replayed_own = self.replay_restored_buffers(resolved.logical, &new_instances);
        let replayed_upstream = self.update_upstreams(
            resolved.logical,
            &resolved.olds,
            &new_instances,
            &upstream_instances,
            &reflected,
        )?;
        timing.replay_us = timer.lap();
        timing.total_us = timer.total_us();

        let replayed_tuples = replayed_upstream
            + if resolved.count_own_replays {
                replayed_own
            } else {
                0
            };
        Ok(ReconfigOutcome {
            logical: resolved.logical,
            new_operators: new_instances.iter().map(|i| i.id).collect(),
            new_parallelism: self.graph().parallelism(resolved.logical),
            replayed_tuples,
            released_vms,
            timing,
        })
    }

    /// Validate the plan against the current graph and workers without
    /// touching anything.
    fn resolve_plan(&self, plan: &ReconfigPlan) -> Result<ResolvedPlan> {
        match plan.kind {
            ReconfigKind::ScaleOut { target, partitions } => {
                if partitions == 0 {
                    return Err(Error::InvalidParallelism(0));
                }
                let inst = self.graph().instance(target)?.clone();
                let was_failed = self
                    .workers
                    .get(&target)
                    .map(WorkerCore::is_failed)
                    .unwrap_or(true);
                Ok(ResolvedPlan {
                    olds: vec![target],
                    old_ranges: vec![(target, inst.key_range)],
                    logical: inst.logical,
                    source_range: inst.key_range,
                    parts: partitions,
                    previous_parallelism: self.graph().parallelism(inst.logical),
                    was_failed,
                    pause_olds: false,
                    strict_backup: true,
                    count_own_replays: false,
                    fixed_ranges: None,
                })
            }
            ReconfigKind::ScaleIn { target, victim } => {
                if target == victim {
                    return Err(Error::Invariant(
                        "reconfiguring a pair needs two distinct partitions".into(),
                    ));
                }
                let inst_t = self.graph().instance(target)?.clone();
                let inst_v = self.graph().instance(victim)?.clone();
                if inst_t.logical != inst_v.logical {
                    return Err(Error::Invariant(format!(
                        "cannot reconfigure partitions of different logical operators \
                         ({} is {}, {} is {})",
                        target, inst_t.logical, victim, inst_v.logical
                    )));
                }
                for id in [target, victim] {
                    self.live_partition(id)?;
                }
                // The pair must own a contiguous interval (the same adjacency
                // rule merge_checkpoints enforces), checked up front so no
                // state has been touched when the request is rejected.
                let (lo, hi) = if inst_t.key_range.lo <= inst_v.key_range.lo {
                    (inst_t.key_range, inst_v.key_range)
                } else {
                    (inst_v.key_range, inst_t.key_range)
                };
                if lo.hi == u64::MAX || lo.hi + 1 != hi.lo {
                    return Err(Error::InvalidKeySplit(format!(
                        "cannot reconfigure non-adjacent partitions {target} ({}) and \
                         {victim} ({})",
                        inst_t.key_range, inst_v.key_range
                    )));
                }
                Ok(ResolvedPlan {
                    // The survivor (whose VM hosts the merged operator) first.
                    olds: vec![target, victim],
                    old_ranges: vec![(target, inst_t.key_range), (victim, inst_v.key_range)],
                    logical: inst_t.logical,
                    source_range: KeyRange::new(lo.lo, hi.hi),
                    parts: 1,
                    previous_parallelism: self.graph().parallelism(inst_t.logical),
                    was_failed: false,
                    pause_olds: true,
                    strict_backup: false,
                    count_own_replays: true,
                    fixed_ranges: None,
                })
            }
            ReconfigKind::Rebalance { logical } | ReconfigKind::Consolidate { logical } => {
                // Whole-operator shapes: every partition of `logical` is
                // replaced. The partitions are taken in key order so VM reuse
                // (rebalance) and bin ordering (consolidate) follow the key
                // space, and their ranges must chain into one contiguous
                // interval — which deploy and repartition guarantee, but is
                // cheap to verify before any state is touched.
                let consolidate = matches!(plan.kind, ReconfigKind::Consolidate { .. });
                let partitions = self.graph().partitions(logical).to_vec();
                if partitions.len() < 2 {
                    return Err(Error::Invariant(format!(
                        "{} of {logical} needs at least two partitions",
                        if consolidate {
                            "consolidation"
                        } else {
                            "rebalancing"
                        },
                    )));
                }
                let mut insts = Vec::with_capacity(partitions.len());
                for id in partitions {
                    self.live_partition(id)?;
                    insts.push(self.graph().instance(id)?.clone());
                }
                insts.sort_by_key(|i| i.key_range.lo);
                for pair in insts.windows(2) {
                    let (a, b) = (&pair[0], &pair[1]);
                    if a.key_range.hi == u64::MAX || a.key_range.hi + 1 != b.key_range.lo {
                        return Err(Error::InvalidKeySplit(format!(
                            "partitions of {logical} do not cover a contiguous interval \
                             ({} then {})",
                            a.key_range, b.key_range
                        )));
                    }
                }
                let source_range =
                    KeyRange::new(insts[0].key_range.lo, insts.last().unwrap().key_range.hi);
                Ok(ResolvedPlan {
                    olds: insts.iter().map(|i| i.id).collect(),
                    old_ranges: insts.iter().map(|i| (i.id, i.key_range)).collect(),
                    logical,
                    source_range,
                    parts: insts.len(),
                    previous_parallelism: insts.len(),
                    was_failed: false,
                    pause_olds: true,
                    strict_backup: false,
                    count_own_replays: true,
                    fixed_ranges: consolidate.then(|| insts.iter().map(|i| i.key_range).collect()),
                })
            }
        }
    }

    /// A partition a merge-shaped plan may touch: known to the graph, its
    /// worker alive, its placement known.
    fn live_partition(&self, id: OperatorId) -> Result<()> {
        if self
            .workers
            .get(&id)
            .map(WorkerCore::is_failed)
            .unwrap_or(true)
        {
            return Err(Error::Invariant(format!(
                "cannot reconfigure failed or unknown operator {id} (recover it instead)"
            )));
        }
        self.placement.vm_of_required(id)?;
        Ok(())
    }

    /// Obtain the checkpoint the plan repartitions.
    fn capture_state(
        &mut self,
        plan: &ReconfigPlan,
        resolved: &ResolvedPlan,
    ) -> Result<Checkpoint> {
        match plan.kind {
            ReconfigKind::ScaleOut { target, .. } => {
                // The backed-up checkpoint of the target (Algorithm 3
                // partitions backup(o)'s copy so the overloaded/failed
                // operator itself is not involved). If no backup exists yet
                // and the operator is alive, take one now; otherwise start
                // from empty state and rely on replay (the UB/SR baselines).
                let restore_started = Instant::now();
                match self.backup.retrieve_measured(target) {
                    Ok((checkpoint, read_bytes)) => {
                        self.metrics.record_store_restore(
                            self.config.store.label(),
                            read_bytes as usize,
                            restore_started.elapsed().as_micros() as u64,
                        );
                        Ok(checkpoint)
                    }
                    Err(_) if !resolved.was_failed && self.config.strategy.checkpoints() => {
                        self.checkpoint_operator(target)?;
                        let restore_started = Instant::now();
                        let (checkpoint, read_bytes) = self.backup.retrieve_measured(target)?;
                        self.metrics.record_store_restore(
                            self.config.store.label(),
                            read_bytes as usize,
                            restore_started.elapsed().as_micros() as u64,
                        );
                        Ok(checkpoint)
                    }
                    // No backup anywhere (UB/SR baselines or a failed, never
                    // checkpointed operator): nothing was read from any store.
                    Err(_) => Ok(Checkpoint::empty(target)),
                }
            }
            ReconfigKind::ScaleIn { .. }
            | ReconfigKind::Rebalance { .. }
            | ReconfigKind::Consolidate { .. } => {
                let stamp = resolved.olds[0];
                if !self.config.strategy.checkpoints() {
                    // UB/SR baselines keep no checkpoints: the plan starts
                    // from empty state and the untrimmed upstream buffers
                    // rebuild it through replay.
                    return Ok(Checkpoint::empty(stamp));
                }
                // Checkpoint every replaced partition (backing up its final
                // state and trimming the upstream buffers to it) and merge
                // the backed-up copies at the store — the inverse of
                // Algorithm 2's partitioning. A merge pools two partitions,
                // a rebalance or consolidation pools all π; the pooled
                // checkpoint also carries the union of the per-partition
                // traffic samples, which is what the weighted-quantile
                // re-split consults. Provisionally stamped with the first
                // old's id; the transform phase re-stamps the parts.
                let restore_started = Instant::now();
                let read_before = self.backup.aggregate_stats().bytes_restored;
                for id in &resolved.olds {
                    self.checkpoint_operator(*id)?;
                }
                let (merged, _) = self.backup.merge_adjacent(stamp, &resolved.old_ranges)?;
                let read = self
                    .backup
                    .aggregate_stats()
                    .bytes_restored
                    .saturating_sub(read_before);
                self.metrics.record_store_restore(
                    self.config.store.label(),
                    read as usize,
                    restore_started.elapsed().as_micros() as u64,
                );
                Ok(merged)
            }
        }
    }

    /// Pick the new key ranges for the plan.
    fn choose_split(
        &self,
        plan: &ReconfigPlan,
        resolved: &ResolvedPlan,
        captured: &Checkpoint,
    ) -> Result<SplitDecision> {
        match plan.kind {
            // A merge produces a single range covering the pair.
            ReconfigKind::ScaleIn { .. } => Ok(SplitDecision {
                ranges: vec![resolved.source_range],
                kind: SplitKind::None,
                post_split_imbalance: 0.0,
            }),
            // A consolidation moves partitions between VMs without touching
            // the key space: the new instances keep the old ranges.
            ReconfigKind::Consolidate { .. } => Ok(SplitDecision {
                ranges: resolved
                    .fixed_ranges
                    .clone()
                    .expect("consolidate resolves fixed ranges"),
                kind: SplitKind::None,
                post_split_imbalance: 0.0,
            }),
            ReconfigKind::ScaleOut { .. } | ReconfigKind::Rebalance { .. } => {
                plan.split
                    .choose(&resolved.source_range, resolved.parts, captured)
            }
        }
    }

    /// Process every queued tuple on the given operators' inbound channels.
    /// Draining before a merge matters for correctness: the merged
    /// reflected-timestamp vector is the pointwise max over the pair, so any
    /// tuple still queued below that watermark would be neither restored nor
    /// replayed.
    fn drain_inbound(&mut self, ops: &[OperatorId]) {
        let network = self.network.clone();
        let metrics = self.metrics.clone();
        let epoch = self.epoch;
        let batch = self.config.worker_batch;
        for id in ops {
            if let Some(worker) = self.workers.get_mut(id) {
                while worker.step(&network, &metrics, epoch, batch) > 0 {}
            }
        }
    }

    fn set_all_paused(&mut self, ops: &[OperatorId], paused: bool) {
        for id in ops {
            if let Some(worker) = self.workers.get_mut(id) {
                worker.set_paused(paused);
            }
        }
    }

    /// Unpause a paused pair and hand the error back — the capture/rewrite
    /// failure path that leaves the runtime exactly as it was.
    fn abort_paused(&mut self, resolved: &ResolvedPlan, e: Error) -> Error {
        if resolved.pause_olds {
            self.set_all_paused(&resolved.olds, false);
        }
        e
    }

    /// Move the backups *other* operators stored on `old`'s (surviving) VM
    /// over to `new`'s store; only a released VM's store is genuinely lost.
    fn migrate_third_party_backups(
        &mut self,
        replaced: &[OperatorId],
        old: OperatorId,
        new: OperatorId,
    ) {
        if let (Ok(old_store), Ok(new_store)) =
            (self.backup.store_of(old), self.backup.store_of(new))
        {
            for owner in old_store.owners() {
                if replaced.contains(&owner) {
                    continue; // superseded by the repartitioned checkpoints
                }
                if let Ok(checkpoint) = old_store.latest(owner) {
                    if new_store.put(owner, checkpoint).is_ok()
                        && self.backup.backup_of(owner) == Some(old)
                    {
                        self.backup.set_backup_of(owner, new);
                    }
                }
            }
        }
    }

    /// Remove every trace of the replaced instances from the runtime's
    /// bookkeeping. Returns the VMs whose last slot was vacated, so the
    /// caller can decide whether to release them to the pool.
    fn retire_instances(&mut self, olds: &[OperatorId]) -> Vec<seep_cloud::VmId> {
        let mut emptied = Vec::new();
        for old in olds {
            self.network.disconnect(*old);
            self.workers.remove(old);
            self.backup.unregister_store(*old);
            self.backup.clear_backup_of(*old);
            if let Some((vm, empty)) = self.placement.release(*old) {
                if empty {
                    emptied.push(vm);
                }
            }
            self.monitor.forget(*old);
            self.checkpoint_seq.remove(old);
            self.last_checkpoint_ms.remove(old);
            self.last_backed_up.remove(old);
        }
        emptied
    }

    /// New partitions replay their restored output buffers downstream
    /// (Algorithm 3, line 7); downstream duplicate filters discard what they
    /// already processed. Routing towards downstream partitions is refreshed
    /// first. Returns the number of tuples re-sent.
    fn replay_restored_buffers(
        &mut self,
        logical: LogicalOpId,
        new_instances: &[seep_core::graph::OperatorInstance],
    ) -> usize {
        let network = self.network.clone();
        let metrics = self.metrics.clone();
        let downstream_logicals = self.graph().query().downstream(logical);
        let routings: Vec<(LogicalOpId, seep_core::RoutingState)> = downstream_logicals
            .iter()
            .filter_map(|ld| self.graph().routing(*ld).ok().map(|r| (*ld, r.clone())))
            .collect();
        let mut planned: Vec<(OperatorId, OperatorId)> = Vec::new();
        for instance in new_instances {
            if let Some(worker) = self.workers.get_mut(&instance.id) {
                for (ld, routing) in &routings {
                    worker.set_routing(*ld, routing.clone());
                }
                planned.extend(
                    worker
                        .buffer()
                        .downstreams()
                        .into_iter()
                        .map(|d| (instance.id, d)),
                );
            }
        }
        let mut replayed = 0;
        for (from, to) in planned {
            // Replay-buffer-state (Algorithm 1, line 10): only tuples the
            // downstream has not reflected are re-sent. Its duplicate filter
            // would discard the rest anyway, but pushing a restored buffer's
            // full history into a paused receiver's bounded channel can
            // exceed its capacity and wedge the single-threaded executor.
            let reflected = self
                .workers
                .get(&to)
                .map(|w| w.reflected().clone())
                .unwrap_or_default();
            if let Some(worker) = self.workers.get(&from) {
                replayed += worker.replay_to(to, &reflected, &network, &metrics);
            }
        }
        replayed
    }

    /// Update the upstream operators: stop, install the new routing, migrate
    /// tuples buffered for the replaced instances to the partition now owning
    /// their key, replay everything `reflected` does not cover, restart
    /// (Algorithm 3, lines 9–14). Returns the number of tuples replayed.
    fn update_upstreams(
        &mut self,
        logical: LogicalOpId,
        olds: &[OperatorId],
        new_instances: &[seep_core::graph::OperatorInstance],
        upstream_instances: &[OperatorId],
        reflected: &TimestampVec,
    ) -> Result<usize> {
        let new_routing = self.graph().routing(logical)?.clone();
        let network = self.network.clone();
        let metrics = self.metrics.clone();
        let mut replayed = 0;
        for up in upstream_instances {
            let Some(worker) = self.workers.get_mut(up) else {
                continue;
            };
            worker.set_paused(true);
            worker.set_routing(logical, new_routing.clone());
            for old in olds {
                let pending = worker
                    .buffer_mut()
                    .remove_downstream(*old)
                    .unwrap_or_default();
                for tuple in pending {
                    if let Some(new_target) = new_routing.route(tuple.key) {
                        worker.buffer_mut().push(new_target, tuple);
                    }
                }
            }
            for instance in new_instances {
                replayed += worker.replay_to(instance.id, reflected, &network, &metrics);
            }
            worker.set_paused(false);
        }
        Ok(replayed)
    }
}
