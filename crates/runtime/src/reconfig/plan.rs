//! Declarative reconfiguration plans.
//!
//! A [`ReconfigPlan`] names *what* should change — which physical instances
//! are replaced, by how many partitions, and how their key range is split —
//! while the executor owns *how*: the shared
//! drain → pause → checkpoint → rewrite → transform → restore → route →
//! replay choreography (see [`crate::reconfig`]). Scale out, scale in,
//! recovery and rebalancing are just four builders over the same plan shape.

use serde::{Deserialize, Serialize};

use seep_core::{sample_imbalance, Checkpoint, Key, KeyRange, LogicalOpId, OperatorId, Result};

use crate::metrics::SplitKind;

/// Default number of keys sampled from a checkpoint when deciding and
/// applying a distribution-guided split.
pub const DEFAULT_SPLIT_SAMPLE: usize = 4_096;

/// Default imbalance (hottest partition share over ideal share) above which
/// a skew-aware plan prefers a distribution-guided split over an even one.
pub const DEFAULT_IMBALANCE_THRESHOLD: f64 = 1.2;

/// How a plan splits the key range it reconfigures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum SplitPolicy {
    /// Always split the key space evenly (hash partitioning — the paper's
    /// default, and the seed behaviour).
    #[default]
    Even,
    /// Sample hot keys from the captured checkpoint and use
    /// [`KeyRange::split_by_distribution`] when the even split's sampled
    /// imbalance exceeds the threshold; fall back to the even split
    /// otherwise (and whenever the sample is too degenerate to supply
    /// distinct boundaries).
    SkewAware {
        /// Even-split imbalance above which the distribution split is used.
        imbalance_threshold: f64,
        /// Maximum keys sampled from the checkpoint.
        max_sample: usize,
    },
}

impl SplitPolicy {
    /// A skew-aware policy with the default threshold and sample size.
    pub fn skew_aware() -> Self {
        SplitPolicy::SkewAware {
            imbalance_threshold: DEFAULT_IMBALANCE_THRESHOLD,
            max_sample: DEFAULT_SPLIT_SAMPLE,
        }
    }

    /// Choose the sub-ranges that split `range` into `parts`, consulting a
    /// load-weighted key sample of `checkpoint` when skew-aware. `parts == 1`
    /// trivially returns the range itself.
    pub fn choose(
        &self,
        range: &KeyRange,
        parts: usize,
        checkpoint: &Checkpoint,
    ) -> Result<SplitDecision> {
        if parts == 1 {
            return Ok(SplitDecision {
                ranges: vec![*range],
                kind: SplitKind::None,
                post_split_imbalance: 0.0,
            });
        }
        let even = range.split_even(parts)?;
        match self {
            SplitPolicy::Even => Ok(SplitDecision {
                ranges: even,
                kind: SplitKind::Even,
                post_split_imbalance: 0.0,
            }),
            SplitPolicy::SkewAware {
                imbalance_threshold,
                max_sample,
            } => {
                let sample: Vec<Key> = checkpoint.sample_keys(*max_sample);
                if sample.is_empty() {
                    // No state to sample: 0.0 marks "no prediction", per the
                    // ReconfigTiming contract.
                    return Ok(SplitDecision {
                        ranges: even,
                        kind: SplitKind::Even,
                        post_split_imbalance: 0.0,
                    });
                }
                let even_imbalance = sample_imbalance(&even, &sample);
                if even_imbalance <= *imbalance_threshold {
                    return Ok(SplitDecision {
                        post_split_imbalance: even_imbalance,
                        ranges: even,
                        kind: SplitKind::Even,
                    });
                }
                let guided = range.split_by_distribution(parts, &sample)?;
                let kind = if guided == even {
                    SplitKind::Even // the sample degraded to the even split
                } else {
                    SplitKind::Distribution
                };
                Ok(SplitDecision {
                    post_split_imbalance: sample_imbalance(&guided, &sample),
                    ranges: guided,
                    kind,
                })
            }
        }
    }
}

/// The outcome of a split decision: the chosen ranges, how they were chosen,
/// and the load imbalance the sampled keys predict for them.
#[derive(Debug, Clone)]
pub struct SplitDecision {
    /// The sub-ranges, in key order, covering the reconfigured range.
    pub ranges: Vec<KeyRange>,
    /// Which strategy produced them.
    pub kind: SplitKind,
    /// Sampled post-split imbalance (1.0 = balanced; 0.0 = no sample).
    pub post_split_imbalance: f64,
}

/// The shape of a reconfiguration: which instances are replaced and by what.
///
/// Recovery carries no kind of its own — it is a [`ScaleOut`] of the failed
/// operator (the paper's central point: fault tolerance and elasticity are
/// the same state-management mechanism), wrapped by
/// [`crate::Runtime::recover`] with strategy-specific replay and catch-up.
///
/// [`ScaleOut`]: ReconfigKind::ScaleOut
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReconfigKind {
    /// Replace one instance (live or failed) by `partitions` new partitions
    /// on fresh VMs, splitting its key range.
    ScaleOut {
        /// The instance being replaced.
        target: OperatorId,
        /// Number of new partitions (π).
        partitions: usize,
    },
    /// Merge two adjacent sibling partitions onto `target`'s VM and release
    /// `victim`'s VM back to the provider (when the merge empties it).
    ScaleIn {
        /// The partition whose VM hosts the merged operator.
        target: OperatorId,
        /// The partition whose VM is vacated.
        victim: OperatorId,
    },
    /// Re-split **all π partitions** of a logical operator by the observed
    /// key distribution in one plan: every partition is checkpointed, the
    /// pooled (traffic- or footprint-weighted) key sample of the merged
    /// checkpoint chooses π new weighted-quantile boundaries, and each new
    /// partition is restored onto the VM that owned that slice of the key
    /// space — a repartition that neither grows nor shrinks the deployment.
    Rebalance {
        /// The logical operator whose partitions are re-split.
        logical: LogicalOpId,
    },
    /// Consolidate the partitions of a logical operator onto fewer VMs: the
    /// key ranges are untouched, but each partition is checkpoint-moved onto
    /// a shared VM chosen by first-fit-decreasing bin packing over the VMs'
    /// slot capacity, and the VMs left empty are released to the cloud pool.
    /// Scale-in without losing parallelism — and without requiring adjacent
    /// siblings.
    Consolidate {
        /// The logical operator whose partitions are packed.
        logical: LogicalOpId,
    },
}

/// A declarative reconfiguration: the shape plus the key-split policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReconfigPlan {
    /// What is reconfigured.
    pub kind: ReconfigKind,
    /// How the reconfigured key range is split.
    pub split: SplitPolicy,
}

impl ReconfigPlan {
    /// Scale `target` out into `partitions` new instances.
    pub fn scale_out(target: OperatorId, partitions: usize, split: SplitPolicy) -> Self {
        ReconfigPlan {
            kind: ReconfigKind::ScaleOut { target, partitions },
            split,
        }
    }

    /// Recover a failed operator: the same plan as a scale out of the failed
    /// instance (serial at `partitions == 1`, parallel above).
    pub fn recover(failed: OperatorId, partitions: usize, split: SplitPolicy) -> Self {
        Self::scale_out(failed, partitions, split)
    }

    /// Merge `victim` into `target`, releasing `victim`'s VM.
    pub fn scale_in(target: OperatorId, victim: OperatorId) -> Self {
        ReconfigPlan {
            kind: ReconfigKind::ScaleIn { target, victim },
            // A merge produces a single range; no split decision is taken.
            split: SplitPolicy::Even,
        }
    }

    /// Rebalance all partitions of `logical` by the observed key
    /// distribution. The threshold is 1.0 — any measurable improvement over
    /// the even boundaries is taken, since the caller has already decided the
    /// operator is skewed.
    pub fn rebalance(logical: LogicalOpId) -> Self {
        ReconfigPlan {
            kind: ReconfigKind::Rebalance { logical },
            split: SplitPolicy::SkewAware {
                imbalance_threshold: 1.0,
                max_sample: DEFAULT_SPLIT_SAMPLE,
            },
        }
    }

    /// Pack the partitions of `logical` onto as few VMs as their slot
    /// capacity allows, releasing the emptied VMs. Key ranges are untouched,
    /// so no split decision is taken.
    pub fn consolidate(logical: LogicalOpId) -> Self {
        ReconfigPlan {
            kind: ReconfigKind::Consolidate { logical },
            split: SplitPolicy::Even,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seep_core::{BufferState, ProcessingState};

    fn checkpoint_with_weights(weights: &[(u64, usize)]) -> Checkpoint {
        let mut st = ProcessingState::empty();
        for (k, bytes) in weights {
            st.insert(Key(*k), vec![0u8; *bytes]);
        }
        Checkpoint::new(OperatorId::new(1), 1, st, BufferState::new())
    }

    #[test]
    fn even_policy_never_samples() {
        let cp = checkpoint_with_weights(&[(10, 1_000), (900, 10)]);
        let d = SplitPolicy::Even
            .choose(&KeyRange::new(0, 999), 2, &cp)
            .unwrap();
        assert_eq!(d.kind, SplitKind::Even);
        assert_eq!(d.ranges, KeyRange::new(0, 999).split_even(2).unwrap());
        assert_eq!(d.post_split_imbalance, 0.0);
    }

    #[test]
    fn skew_aware_switches_to_distribution_above_threshold() {
        // 95 % of the state bytes on one key in the lower half: the even
        // split is heavily imbalanced, the guided split separates the key.
        let cp = checkpoint_with_weights(&[(100, 5_000), (600, 100), (900, 100)]);
        let policy = SplitPolicy::skew_aware();
        let d = policy.choose(&KeyRange::new(0, 999), 2, &cp).unwrap();
        assert_eq!(d.kind, SplitKind::Distribution);
        assert!(d.post_split_imbalance >= 1.0);
        assert!(d.ranges[0].hi < 600, "hot key separated: {:?}", d.ranges);
    }

    #[test]
    fn skew_aware_keeps_even_split_for_balanced_state() {
        let weights: Vec<(u64, usize)> = (0..100).map(|k| (k * 10, 16)).collect();
        let cp = checkpoint_with_weights(&weights);
        let d = SplitPolicy::skew_aware()
            .choose(&KeyRange::new(0, 999), 2, &cp)
            .unwrap();
        assert_eq!(d.kind, SplitKind::Even);
        assert!(d.post_split_imbalance >= 1.0 && d.post_split_imbalance < 1.2);
    }

    #[test]
    fn skew_aware_falls_back_on_empty_checkpoints() {
        let cp = Checkpoint::empty(OperatorId::new(1));
        let d = SplitPolicy::skew_aware()
            .choose(&KeyRange::full(), 4, &cp)
            .unwrap();
        assert_eq!(d.kind, SplitKind::Even);
        assert_eq!(d.ranges, KeyRange::full().split_even(4).unwrap());
        assert_eq!(d.post_split_imbalance, 0.0, "no sample means no prediction");
    }

    #[test]
    fn single_partition_is_a_trivial_split() {
        let cp = checkpoint_with_weights(&[(5, 100)]);
        let d = SplitPolicy::skew_aware()
            .choose(&KeyRange::full(), 1, &cp)
            .unwrap();
        assert_eq!(d.kind, SplitKind::None);
        assert_eq!(d.ranges, vec![KeyRange::full()]);
    }

    #[test]
    fn builders_produce_the_expected_shapes() {
        let a = OperatorId::new(1);
        let b = OperatorId::new(2);
        let plan = ReconfigPlan::scale_out(a, 3, SplitPolicy::Even);
        assert!(matches!(
            plan.kind,
            ReconfigKind::ScaleOut { partitions: 3, .. }
        ));
        let plan = ReconfigPlan::recover(a, 1, SplitPolicy::Even);
        assert!(matches!(
            plan.kind,
            ReconfigKind::ScaleOut { partitions: 1, .. }
        ));
        let plan = ReconfigPlan::scale_in(a, b);
        assert!(matches!(plan.kind, ReconfigKind::ScaleIn { .. }));
        let plan = ReconfigPlan::rebalance(LogicalOpId(3));
        assert!(matches!(
            plan.kind,
            ReconfigKind::Rebalance {
                logical: LogicalOpId(3)
            }
        ));
        assert!(matches!(
            plan.split,
            SplitPolicy::SkewAware { imbalance_threshold, .. } if imbalance_threshold == 1.0
        ));
        let plan = ReconfigPlan::consolidate(LogicalOpId(3));
        assert!(matches!(
            plan.kind,
            ReconfigKind::Consolidate {
                logical: LogicalOpId(3)
            }
        ));
    }
}
