//! The typed job API: one fluent facade over graph construction, operator
//! factories and deployment.
//!
//! The paper treats a query as a single artifact — a dataflow of operators
//! whose state the platform owns end to end. This module makes the public
//! API match: a [`Job`] couples the [`seep_core::QueryGraph`] topology with
//! the operator factories *at declaration time*, so "no factory registered
//! for op" is unrepresentable, and [`Job::deploy`] returns a [`JobHandle`]
//! that drives the running deployment by operator **name** instead of raw
//! [`seep_core::LogicalOpId`] handles.
//!
//! ```
//! use seep_core::{Key, OutputTuple, StatelessFn, Tuple};
//! use seep_runtime::api::Job;
//! use seep_runtime::RuntimeConfig;
//!
//! let mut handle = Job::builder(RuntimeConfig::default())
//!     .source("feed", || {
//!         StatelessFn::new("feed", |_, t: &Tuple, out: &mut Vec<OutputTuple>| {
//!             out.push(OutputTuple::new(t.key, t.payload.clone()));
//!         })
//!     })
//!     .then_stateless("echo", || {
//!         StatelessFn::new("echo", |_, t: &Tuple, out: &mut Vec<OutputTuple>| {
//!             out.push(OutputTuple::new(t.key, t.payload.clone()));
//!         })
//!     })
//!     .sink("out", || {
//!         StatelessFn::new("out", |_, _t: &Tuple, _out: &mut Vec<OutputTuple>| {})
//!     })
//!     .deploy()
//!     .expect("valid job");
//!
//! handle.inject("feed", Key(7), vec![1u8, 2, 3]);
//! assert!(handle.drain() >= 2, "echo and sink each process the tuple");
//! ```
//!
//! The low-level pairing —
//! [`Runtime::deploy`](crate::Runtime::deploy) with a hand-built
//! `QueryGraph` plus a factory map — remains available underneath and is
//! what `Job::deploy` itself calls; [`JobHandle::runtime`] and
//! [`JobHandle::runtime_mut`] expose it for anything the facade does not
//! cover.

mod builder;
mod handle;

pub use builder::{discard, passthrough, Job, JobBuilder};
pub use handle::{JobHandle, OpSelector, SinkCollector};
