//! Fluent construction of [`Job`]s: topology and operator factories declared
//! together, validated as one artifact.

use std::collections::HashMap;
use std::sync::Arc;

use seep_core::operator::{IntoOperatorFactory, OperatorFactory};
use seep_core::{Error, LogicalOpId, OperatorKind, QueryGraph, Result};

use crate::config::RuntimeConfig;
use crate::plan::{FusionPolicy, PhysicalPlan};
use crate::runtime::Runtime;

use super::handle::{JobHandle, SinkCollector};

/// Factory for a pass-through operator that forwards every tuple unchanged —
/// the usual shape of a data-feeder source.
pub fn passthrough(name: &str) -> Arc<dyn OperatorFactory> {
    let name = name.to_string();
    Arc::new(move || {
        seep_core::StatelessFn::new(
            name.clone(),
            |_, t: &seep_core::Tuple, out: &mut Vec<seep_core::OutputTuple>| {
                out.push(seep_core::OutputTuple::new(t.key, t.payload.clone()));
            },
        )
    })
}

/// Factory for a sink operator that drops every tuple — for queries whose
/// results are read from operator state rather than collected at the sink
/// (use [`super::SinkCollector`] to collect typed results instead).
pub fn discard(name: &str) -> Arc<dyn OperatorFactory> {
    let name = name.to_string();
    Arc::new(move || {
        seep_core::StatelessFn::new(
            name.clone(),
            |_, _t: &seep_core::Tuple, _out: &mut Vec<seep_core::OutputTuple>| {},
        )
    })
}

/// A validated, deployable query: the topology, the operator factories and
/// the runtime configuration as one artifact.
///
/// Build one with [`Job::builder`]; deploy it with [`Job::deploy`], which
/// hands the paired graph and factories to the low-level
/// [`Runtime::deploy`] and wraps the result in a [`JobHandle`].
pub struct Job {
    config: RuntimeConfig,
    query: QueryGraph,
    factories: HashMap<LogicalOpId, Arc<dyn OperatorFactory>>,
    names: HashMap<String, LogicalOpId>,
    fusion: FusionPolicy,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("operators", &self.query.len())
            .field("streams", &self.query.streams().count())
            .finish_non_exhaustive()
    }
}

impl Job {
    /// Start describing a job that will run under the given configuration.
    pub fn builder(config: RuntimeConfig) -> JobBuilder {
        JobBuilder {
            config,
            graph: QueryGraph::builder(),
            factories: HashMap::new(),
            names: HashMap::new(),
            cursor: None,
            error: None,
            fusion: FusionPolicy::default(),
        }
    }

    /// The validated logical query graph.
    pub fn query(&self) -> &QueryGraph {
        &self.query
    }

    /// The logical operator declared under `name`, if any.
    pub fn op(&self, name: &str) -> Option<LogicalOpId> {
        self.names.get(name).copied()
    }

    /// Deploy the job on a fresh [`Runtime`].
    ///
    /// The logical graph is first lowered by the physical-plan compiler
    /// ([`PhysicalPlan::compile`], under the job's
    /// [`FusionPolicy`]): chains of single-input/single-output stateless
    /// operators fuse into single physical operators, dead branches are
    /// eliminated and default batch sizes are selected for fused edges.
    /// The compiled graph then deploys exactly as the low-level
    /// [`Runtime::deploy`] would — one VM and one worker per *physical*
    /// operator — and the returned [`JobHandle`] keeps resolving the
    /// original logical names, attributing clocks and counts back through
    /// the plan's manifest. [`FusionPolicy::Disabled`] reproduces the
    /// unplanned deployment bit for bit.
    pub fn deploy(self) -> Result<JobHandle> {
        let plan = PhysicalPlan::compile(
            &self.query,
            &self.factories,
            &self.config.batch,
            self.fusion,
        )?;
        let (query, factories, batch, manifest) = plan.into_parts();
        let mut config = self.config;
        config.batch = batch;
        let mut runtime = Runtime::new(config);
        runtime.deploy(query, factories)?;
        Ok(JobHandle::new(runtime, manifest))
    }

    /// Decompose into the low-level deployment artifacts: the configuration,
    /// the query graph and the factory map. Useful for tests and experiments
    /// that drive [`Runtime::deploy`] directly.
    pub fn into_parts(
        self,
    ) -> (
        RuntimeConfig,
        QueryGraph,
        HashMap<LogicalOpId, Arc<dyn OperatorFactory>>,
    ) {
        (self.config, self.query, self.factories)
    }
}

/// Fluent builder for [`Job`]s.
///
/// Linear pipelines chain with a cursor: [`source`](Self::source) starts the
/// chain, [`then_stateless`](Self::then_stateless) /
/// [`then_stateful`](Self::then_stateful) append an operator fed by the
/// previous one, [`sink`](Self::sink) terminates it. Fan-out and fan-in —
/// the LRB query's shape — use [`branch`](Self::branch) to move the cursor
/// back to an earlier operator and [`connect`](Self::connect) to add extra
/// streams by name.
///
/// Every node takes its factory at declaration, so an operator without a
/// factory cannot be expressed. Errors (duplicate names, chaining off a
/// missing cursor, unknown names) are deferred: the first one is reported by
/// [`build`](Self::build) / [`deploy`](Self::deploy), keeping the fluent
/// chain infallible.
///
/// ```
/// use seep_core::{OutputTuple, StatelessFn, StreamId, Tuple};
/// use seep_runtime::api::Job;
/// use seep_runtime::RuntimeConfig;
///
/// let fwd = |_: StreamId, t: &Tuple, out: &mut Vec<OutputTuple>| {
///     out.push(OutputTuple::new(t.key, t.payload.clone()));
/// };
/// // A diamond: src -> (left | right) -> sink.
/// let job = Job::builder(RuntimeConfig::default())
///     .source("src", move || StatelessFn::new("src", fwd))
///     .then_stateless("left", move || StatelessFn::new("left", fwd))
///     .branch("src")
///     .then_stateless("right", move || StatelessFn::new("right", fwd))
///     .sink("sink", || {
///         StatelessFn::new("sink", |_, _t: &Tuple, _out: &mut Vec<OutputTuple>| {})
///     })
///     .connect("left", "sink")
///     .build()
///     .expect("valid diamond");
/// assert_eq!(job.query().streams().count(), 4);
/// ```
pub struct JobBuilder {
    config: RuntimeConfig,
    graph: seep_core::QueryGraphBuilder,
    factories: HashMap<LogicalOpId, Arc<dyn OperatorFactory>>,
    names: HashMap<String, LogicalOpId>,
    /// The operator new `then_*` / `sink` nodes are fed from.
    cursor: Option<LogicalOpId>,
    /// First construction error; reported by `build`.
    error: Option<Error>,
    /// How the physical-plan compiler may rewrite the graph at deploy.
    fusion: FusionPolicy,
}

impl JobBuilder {
    fn fail(&mut self, error: Error) {
        if self.error.is_none() {
            self.error = Some(error);
        }
    }

    /// Register a node of the given kind, returning its id (or recording an
    /// error for a duplicate name).
    fn node(
        &mut self,
        name: &str,
        kind: OperatorKind,
        factory: impl IntoOperatorFactory,
    ) -> Option<LogicalOpId> {
        if self.names.contains_key(name) {
            self.fail(Error::InvalidGraph(format!(
                "duplicate operator name {name:?}"
            )));
            return None;
        }
        let id = self.graph.add_operator(name, kind);
        self.names.insert(name.to_string(), id);
        self.factories.insert(id, factory.into_factory());
        Some(id)
    }

    /// Add a source operator and make it the cursor. Sources are where
    /// [`JobHandle::inject`] feeds tuples in.
    pub fn source(mut self, name: &str, factory: impl IntoOperatorFactory) -> Self {
        self.cursor = self.node(name, OperatorKind::Source, factory);
        self
    }

    /// Append a stateless operator fed by the cursor, and move the cursor to
    /// it.
    pub fn then_stateless(self, name: &str, factory: impl IntoOperatorFactory) -> Self {
        self.then(name, OperatorKind::Stateless, factory)
    }

    /// Append a stateful operator fed by the cursor, and move the cursor to
    /// it. Stateful operators are checkpointed and can be scaled out,
    /// merged and recovered.
    pub fn then_stateful(self, name: &str, factory: impl IntoOperatorFactory) -> Self {
        self.then(name, OperatorKind::Stateful, factory)
    }

    /// Append a sink fed by the cursor. Additional inbound streams can be
    /// attached with [`connect`](Self::connect).
    pub fn sink(self, name: &str, factory: impl IntoOperatorFactory) -> Self {
        self.then(name, OperatorKind::Sink, factory)
    }

    /// Declare a sink **without** connecting it, leaving the cursor where it
    /// is; attach its inbound streams explicitly with
    /// [`connect`](Self::connect). For fan-in-heavy shapes where the sink is
    /// fed from several branches and none of them is "the" chain to
    /// terminate. A sink left with no inbound stream is rejected by
    /// [`build`](Self::build).
    pub fn add_sink(mut self, name: &str, factory: impl IntoOperatorFactory) -> Self {
        self.node(name, OperatorKind::Sink, factory);
        self
    }

    /// Append a sink that decodes every arriving tuple into `T` and appends
    /// it to `collector` — the typed result-collection path, replacing the
    /// hand-rolled `Arc<Mutex<Vec<T>>>` sink closures.
    pub fn sink_collect<T>(self, name: &str, collector: &SinkCollector<T>) -> Self
    where
        T: for<'de> serde::Deserialize<'de> + Send + 'static,
    {
        self.sink(name, collector.factory())
    }

    fn then(mut self, name: &str, kind: OperatorKind, factory: impl IntoOperatorFactory) -> Self {
        let Some(from) = self.cursor else {
            self.fail(Error::InvalidGraph(format!(
                "operator {name:?} has nothing to chain from: declare a source first \
                 (or use branch() to pick the upstream operator)"
            )));
            return self;
        };
        if let Some(id) = self.node(name, kind, factory) {
            self.graph.connect(from, id);
            self.cursor = Some(id);
        }
        self
    }

    /// Batch every operator's outputs into runs of `size` tuples per channel
    /// envelope (the data plane's transport unit). Size 1 — the default — is
    /// the per-tuple path; larger sizes amortise channel, dedup and clock
    /// costs without changing observable behaviour.
    pub fn batch_size(mut self, size: usize) -> Self {
        self.config.batch = crate::config::BatchConfig::uniform(size);
        self
    }

    /// Override the output batch size of one already-declared operator (the
    /// producing end of its outbound edges), keeping the job-wide
    /// [`batch_size`](Self::batch_size) for everything else.
    pub fn batch_size_at(mut self, name: &str, size: usize) -> Self {
        match self.names.get(name).copied() {
            Some(id) => {
                self.config.batch = self.config.batch.clone().with_producer(id, size);
            }
            None => self.fail(Error::InvalidGraph(format!(
                "batch_size_at target {name:?} is not a declared operator"
            ))),
        }
        self
    }

    /// Select how the physical-plan compiler may rewrite the job at deploy:
    /// [`FusionPolicy::Fuse`] (the default) fuses stateless chains and
    /// selects batch sizes for fused edges, [`FusionPolicy::FuseKeepBatches`]
    /// fuses but never touches batch configuration, and
    /// [`FusionPolicy::Disabled`] deploys the logical graph 1:1, exactly as
    /// the seed runtime would.
    pub fn fusion(mut self, policy: FusionPolicy) -> Self {
        self.fusion = policy;
        self
    }

    /// Drain the data plane across `threads` OS threads: workers are sharded
    /// by their placement VM and stepped in parallel, while every
    /// reconfiguration, checkpoint and window tick keeps the single-threaded
    /// world (the drain's barrier is their quiesce point). 1 — the default —
    /// is the cooperative seed stepper.
    pub fn worker_threads(mut self, threads: usize) -> Self {
        self.config.worker_threads = threads;
        self
    }

    /// Move the cursor back to an already-declared operator, so the next
    /// `then_*` / `sink` call branches off it (fan-out).
    pub fn branch(mut self, at: &str) -> Self {
        match self.names.get(at).copied() {
            Some(id) => self.cursor = Some(id),
            None => self.fail(Error::InvalidGraph(format!(
                "branch target {at:?} is not a declared operator"
            ))),
        }
        self
    }

    /// Add an explicit stream `from → to` between two declared operators
    /// (fan-in, or any edge the cursor-driven chaining cannot express).
    pub fn connect(mut self, from: &str, to: &str) -> Self {
        let resolved = (self.names.get(from).copied(), self.names.get(to).copied());
        match resolved {
            (Some(f), Some(t)) => {
                self.graph.connect(f, t);
            }
            (None, _) => self.fail(Error::InvalidGraph(format!(
                "connect source {from:?} is not a declared operator"
            ))),
            (_, None) => self.fail(Error::InvalidGraph(format!(
                "connect target {to:?} is not a declared operator"
            ))),
        }
        self
    }

    /// Validate and return the [`Job`].
    ///
    /// On top of the structural checks shared with
    /// [`QueryGraph::validate`](seep_core::QueryGraph::validate) (a source
    /// and a sink exist, sources have no inputs, sinks no outputs, the graph
    /// is acyclic), the builder rejects dataflow dead ends: every non-source
    /// operator — sinks included — must have at least one inbound stream,
    /// and every non-sink at least one outbound stream.
    pub fn build(mut self) -> Result<Job> {
        if let Some(error) = self.error.take() {
            return Err(error);
        }
        let query = self.graph.build()?;
        for op in query.operators() {
            if op.kind != OperatorKind::Source && query.upstream(op.id).is_empty() {
                return Err(Error::InvalidGraph(format!(
                    "operator {:?} has no inbound stream",
                    op.name
                )));
            }
            if op.kind != OperatorKind::Sink && query.downstream(op.id).is_empty() {
                return Err(Error::InvalidGraph(format!(
                    "operator {:?} has no outbound stream",
                    op.name
                )));
            }
        }
        Ok(Job {
            config: self.config,
            query,
            factories: self.factories,
            names: self.names,
            fusion: self.fusion,
        })
    }

    /// [`build`](Self::build) and [`Job::deploy`] in one step.
    pub fn deploy(self) -> Result<JobHandle> {
        self.build()?.deploy()
    }
}
