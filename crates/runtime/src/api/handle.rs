//! Driving a deployed [`super::Job`]: the [`JobHandle`] facade over
//! [`Runtime`] and the typed [`SinkCollector`].

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use seep_core::operator::OperatorFactory;
use seep_core::{
    ExecutionGraph, Key, LogicalOpId, OperatorId, StatefulOperator, StatelessFn, Tuple,
};

use crate::metrics::{CheckpointRecord, Metrics, RecoveryRecord};
use crate::obs::{Journal, ObsServer, ObsSnapshot, OperatorHealth};
use crate::plan::{MemberRole, PlanManifest};
use crate::runtime::{
    ConsolidateOutcome, RebalanceOutcome, Runtime, ScaleInOutcome, ScaleOutOutcome,
};

/// Selects a logical operator of a deployed job: either by the **name** it
/// was declared under in the builder (the ergonomic path) or by a raw
/// [`LogicalOpId`] (for code that already holds one).
pub trait OpSelector {
    /// Resolve against the handle's name table.
    ///
    /// # Panics
    /// Panics when a name does not refer to a declared operator — an
    /// operator name is a static property of the job, so a miss is a typo,
    /// not a runtime condition.
    fn resolve(&self, handle: &JobHandle) -> LogicalOpId;

    /// The logical operator *name* this selector carries, when it carries
    /// one. Name selection is what lets the handle attribute per-operator
    /// quantities (emit clocks, processed counts) to a logical operator
    /// that was fused into a larger physical unit; raw-id selectors address
    /// the physical operator itself and return `None`.
    fn member_name(&self) -> Option<&str> {
        None
    }
}

impl OpSelector for LogicalOpId {
    fn resolve(&self, _handle: &JobHandle) -> LogicalOpId {
        *self
    }
}

impl OpSelector for &str {
    fn resolve(&self, handle: &JobHandle) -> LogicalOpId {
        handle.try_op(self).unwrap_or_else(|| {
            panic!("job has no operator named {self:?}");
        })
    }

    fn member_name(&self) -> Option<&str> {
        Some(self)
    }
}

/// A deployed job: the [`Runtime`] plus the name table of the builder that
/// produced it.
///
/// Logical operators are addressed by name (or [`LogicalOpId`], via
/// [`OpSelector`]); physical operator instances — the unit failures,
/// scale-outs and merges act on — keep their [`OperatorId`] addressing,
/// obtained from [`partitions`](Self::partitions).
///
/// ```
/// use seep_core::{Key, OutputTuple, StatelessFn, Tuple};
/// use seep_runtime::api::{Job, SinkCollector};
/// use seep_runtime::RuntimeConfig;
///
/// let results: SinkCollector<u64> = SinkCollector::new();
/// let mut handle = Job::builder(RuntimeConfig::default())
///     .source("numbers", || {
///         StatelessFn::new("numbers", |_, t: &Tuple, out: &mut Vec<OutputTuple>| {
///             out.push(OutputTuple::new(t.key, t.payload.clone()));
///         })
///     })
///     .sink_collect("results", &results)
///     .deploy()
///     .expect("valid job");
///
/// handle.inject_encoded("numbers", Key(1), &41u64).unwrap();
/// handle.drain();
/// assert_eq!(results.take(), vec![41]);
/// ```
pub struct JobHandle {
    runtime: Runtime,
    names: HashMap<String, LogicalOpId>,
    manifest: PlanManifest,
    obs_server: Option<ObsServer>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&str> = self.names.keys().map(String::as_str).collect();
        names.sort_unstable();
        f.debug_struct("JobHandle")
            .field("operators", &names)
            .field("vms", &self.runtime.vm_count())
            .finish_non_exhaustive()
    }
}

impl JobHandle {
    pub(crate) fn new(runtime: Runtime, manifest: PlanManifest) -> Self {
        let names = manifest
            .members
            .iter()
            .map(|(name, info)| (name.clone(), info.unit))
            .collect();
        JobHandle {
            runtime,
            names,
            manifest,
            obs_server: None,
        }
    }

    /// The logical operator declared under `name`.
    ///
    /// # Panics
    /// Panics when no operator with that name exists (see [`OpSelector`]).
    pub fn op(&self, name: &str) -> LogicalOpId {
        name.resolve(self)
    }

    /// The logical operator declared under `name`, or `None`.
    pub fn try_op(&self, name: &str) -> Option<LogicalOpId> {
        self.names.get(name).copied()
    }

    /// Inject a source tuple, as the data feeder would.
    pub fn inject(&mut self, source: impl OpSelector, key: Key, payload: impl Into<bytes::Bytes>) {
        let source = source.resolve(self);
        self.runtime.inject(source, key, payload);
    }

    /// Inject a source tuple, serialising a typed payload.
    pub fn inject_encoded<T: serde::Serialize>(
        &mut self,
        source: impl OpSelector,
        key: Key,
        value: &T,
    ) -> seep_core::Result<()> {
        let payload = bincode::serialize(value)?;
        self.inject(source, key, payload);
        Ok(())
    }

    /// Process pending tuples until every worker's inbound channel is empty.
    /// Returns the total number of tuples processed.
    pub fn drain(&mut self) -> u64 {
        self.runtime.drain()
    }

    /// Advance virtual time, triggering window ticks, periodic checkpoints,
    /// utilisation reports and (when enabled) the auto-scaling policy.
    pub fn advance_to(&mut self, now_ms: u64) {
        self.runtime.advance_to(now_ms)
    }

    /// Fallible [`advance_to`](Self::advance_to): a broken placement
    /// invariant surfaces as an error instead of a panic.
    pub fn try_advance_to(&mut self, now_ms: u64) -> seep_core::Result<()> {
        self.runtime.try_advance_to(now_ms)
    }

    /// Current virtual time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.runtime.now_ms()
    }

    /// Enable or disable automatic scale out / scale in / rebalancing driven
    /// by the bottleneck detector.
    pub fn set_auto_scale(&mut self, enabled: bool) {
        self.runtime.set_auto_scale(enabled)
    }

    /// The physical instances of a logical operator, in partition order.
    pub fn partitions(&self, op: impl OpSelector) -> Vec<OperatorId> {
        let op = op.resolve(self);
        self.runtime.partitions(op)
    }

    /// Current parallelisation level π of a logical operator.
    pub fn parallelism(&self, op: impl OpSelector) -> usize {
        let op = op.resolve(self);
        self.runtime.parallelism(op)
    }

    /// Scale out (or recover) the physical instance `target` into `pi`
    /// partitions.
    pub fn scale_out(
        &mut self,
        target: OperatorId,
        pi: usize,
    ) -> seep_core::Result<ScaleOutOutcome> {
        self.runtime.scale_out(target, pi)
    }

    /// Merge two adjacent partitions; `target` survives, `victim`'s VM is
    /// released.
    pub fn scale_in(
        &mut self,
        target: OperatorId,
        victim: OperatorId,
    ) -> seep_core::Result<ScaleInOutcome> {
        self.runtime.scale_in(target, victim)
    }

    /// Re-split a skewed pair of sibling partitions in place (no VM change).
    /// The plan engine rebalances the whole logical operator the pair names;
    /// see [`rebalance_operator`](Self::rebalance_operator).
    pub fn rebalance(
        &mut self,
        target: OperatorId,
        victim: OperatorId,
    ) -> seep_core::Result<RebalanceOutcome> {
        self.runtime.rebalance(target, victim)
    }

    /// Re-split **all π partitions** of a logical operator in one plan by
    /// the observed key distribution, reusing every VM (no deployment
    /// change).
    pub fn rebalance_operator(
        &mut self,
        op: impl OpSelector,
    ) -> seep_core::Result<RebalanceOutcome> {
        let op = op.resolve(self);
        self.runtime.rebalance_operator(op)
    }

    /// Pack the partitions of a logical operator onto as few VM slots as
    /// the pool's `slots_per_vm` allows (first-fit-decreasing by state
    /// size), releasing the emptied VMs — scale-in that keeps parallelism.
    pub fn consolidate(&mut self, op: impl OpSelector) -> seep_core::Result<ConsolidateOutcome> {
        let op = op.resolve(self);
        self.runtime.consolidate(op)
    }

    /// Crash-stop the VM hosting `operator`.
    pub fn fail_operator(&mut self, operator: OperatorId) {
        self.runtime.fail_operator(operator)
    }

    /// Recover a failed operator with parallelism `pi`.
    pub fn recover(&mut self, failed: OperatorId, pi: usize) -> seep_core::Result<RecoveryRecord> {
        self.runtime.recover(failed, pi)
    }

    /// Checkpoint `operator` now, regardless of the periodic schedule.
    pub fn checkpoint_operator(
        &mut self,
        operator: OperatorId,
    ) -> seep_core::Result<CheckpointRecord> {
        self.runtime.checkpoint_operator(operator)
    }

    /// Run a closure against the operator hosted by `instance` (for result
    /// collection and assertions). Returns `None` if the worker is gone.
    pub fn with_operator<R>(
        &self,
        instance: OperatorId,
        f: impl FnOnce(&dyn StatefulOperator) -> R,
    ) -> Option<R> {
        self.runtime.with_operator(instance, f)
    }

    /// The metrics registry of the deployment.
    pub fn metrics(&self) -> &Metrics {
        self.runtime.metrics()
    }

    /// The execution graph (physical instances, partitions, routing).
    pub fn execution_graph(&self) -> &ExecutionGraph {
        self.runtime.execution_graph()
    }

    /// The cloud provider backing the deployment.
    pub fn provider(&self) -> &seep_cloud::CloudProvider {
        self.runtime.provider()
    }

    /// Number of VMs currently running.
    pub fn vm_count(&self) -> usize {
        self.runtime.vm_count()
    }

    /// Total tuples queued on worker inbound channels.
    pub fn queued_tuples(&self) -> usize {
        self.runtime.queued_tuples()
    }

    /// The last timestamp issued by the operator's shared output clock.
    /// Identical clock values across batched and per-tuple runs are part of
    /// the batch-equivalence contract.
    ///
    /// Logical operators fused into a larger physical unit keep reporting
    /// per-operator clocks when addressed **by name**: the chain's tail
    /// stage reads the unit's real output clock (its outputs *are* the
    /// unit's outputs), while head and interior stages read the cumulative
    /// emission counters the fused operator maintains per stage. Interior
    /// attribution is exact under every reconfiguration kind that drains
    /// before checkpointing; only a failure of the fused unit itself (which
    /// re-processes tuples replayed past the last periodic checkpoint) can
    /// make an interior stage's count run ahead of what the unfused chain
    /// would have reported.
    pub fn emit_clock(&self, op: impl OpSelector) -> u64 {
        if let Some(info) = op.member_name().and_then(|n| self.manifest.members.get(n)) {
            if matches!(info.role, MemberRole::Head | MemberRole::Interior) {
                if let Some(emitted) = &info.emitted {
                    return emitted.load(std::sync::atomic::Ordering::Relaxed);
                }
            }
        }
        let logical = op.resolve(self);
        self.runtime.emit_clock(logical)
    }

    /// Tuples processed by a logical operator, summed over its live
    /// partitions — attributed through the plan manifest, so fused members
    /// addressed by name keep their per-operator counts: the head stage
    /// processes exactly the unit's inputs, and every later stage processes
    /// exactly what the previous stage emitted (the chain runs in-stack,
    /// nothing is dropped between stages).
    pub fn processed_total(&self, op: impl OpSelector) -> u64 {
        if let Some(info) = op.member_name().and_then(|n| self.manifest.members.get(n)) {
            if matches!(info.role, MemberRole::Interior | MemberRole::Tail) {
                if let Some(upstream) = &info.upstream_emitted {
                    return upstream.load(std::sync::atomic::Ordering::Relaxed);
                }
            }
        }
        let logical = op.resolve(self);
        let metrics = self.runtime.metrics();
        self.runtime
            .partitions(logical)
            .into_iter()
            .map(|id| metrics.processed_by(id))
            .sum()
    }

    /// The plan manifest of the deployment: which physical unit hosts each
    /// logical operator, the fused chains, and the operators removed by
    /// dead-branch elimination.
    pub fn plan_manifest(&self) -> &PlanManifest {
        &self.manifest
    }

    /// Aggregate I/O counters of every checkpoint store in the deployment.
    pub fn store_stats(&self) -> seep_store::StoreStats {
        self.runtime.store_stats()
    }

    /// Label of the configured checkpoint-store backend.
    pub fn store_backend(&self) -> &'static str {
        self.runtime.store_backend()
    }

    /// VM pool acquisition statistics (hits, misses, hit rate).
    pub fn pool_stats(&self) -> seep_cloud::PoolStats {
        self.runtime.pool_stats()
    }

    /// Derived per-operator health: `Failed` > `Recovering` /
    /// `Reconfiguring` (a plan committed at the current virtual instant) >
    /// `Backpressured` (inbound queue at or above
    /// [`crate::ScalingPolicy::backpressure_queue`]) > `Ok`.
    pub fn health(&self) -> Vec<OperatorHealth> {
        self.runtime.health()
    }

    /// The reconfiguration event journal of the deployment.
    pub fn journal(&self) -> Arc<Journal> {
        self.runtime.journal()
    }

    /// Attach a JSONL sink at `path`: events already retained are written
    /// immediately and every future plan appends one line, replayable with
    /// [`Journal::replay_file`].
    pub fn journal_to_file(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> seep_core::Result<std::path::PathBuf> {
        self.runtime
            .journal()
            .attach_sink(path)
            .map_err(|e| seep_core::Error::Invariant(format!("cannot attach journal sink: {e}")))
    }

    /// A fresh observability snapshot (what a scrape would serve right now).
    pub fn obs_snapshot(&self) -> ObsSnapshot {
        self.runtime.obs_snapshot()
    }

    /// Start the scrape endpoint on `addr` (e.g. `"127.0.0.1:9184"`; port 0
    /// picks an ephemeral one). Serves `GET /metrics` (Prometheus text
    /// format 0.0.4) and `GET /health` (JSON) from a snapshot the runtime
    /// refreshes after every state change. Returns the bound address; a
    /// previous server, if any, is stopped first.
    pub fn serve_metrics(&mut self, addr: &str) -> seep_core::Result<std::net::SocketAddr> {
        self.stop_metrics();
        // Publish a first snapshot so a scrape racing the startup never
        // sees the empty default.
        self.runtime
            .obs_shared()
            .update(self.runtime.obs_snapshot());
        let server = ObsServer::start(addr, self.runtime.obs_shared()).map_err(|e| {
            seep_core::Error::Invariant(format!("cannot bind metrics endpoint {addr}: {e}"))
        })?;
        let bound = server.addr();
        self.obs_server = Some(server);
        Ok(bound)
    }

    /// Stop the scrape endpoint, if one is running. Returns whether one was.
    pub fn stop_metrics(&mut self) -> bool {
        match self.obs_server.take() {
            Some(mut server) => {
                server.stop();
                true
            }
            None => false,
        }
    }

    /// The scrape endpoint's bound address, while one is running.
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.obs_server.as_ref().map(ObsServer::addr)
    }

    /// The placement layer: which VM slot hosts which partition.
    pub fn placement(&self) -> &crate::placement::Placement {
        self.runtime.placement()
    }

    /// The wrapped [`Runtime`] — the documented low-level layer, for
    /// operations the facade does not cover.
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// Mutable access to the wrapped [`Runtime`].
    pub fn runtime_mut(&mut self) -> &mut Runtime {
        &mut self.runtime
    }

    /// Unwrap into the underlying [`Runtime`].
    pub fn into_runtime(self) -> Runtime {
        self.runtime
    }
}

/// Typed collection of sink output: decodes every tuple that reaches the
/// sink into `T` and accumulates the values behind a shared, cloneable
/// handle.
///
/// Create one, register it with
/// [`JobBuilder::sink_collect`](super::JobBuilder::sink_collect) (or pass
/// [`factory`](Self::factory) to any sink declaration), deploy, and read the
/// results with [`take`](Self::take) or [`snapshot`](Self::snapshot) —
/// replacing the `Arc<Mutex<Vec<T>>>` + decoding-closure boilerplate every
/// harness used to carry.
pub struct SinkCollector<T> {
    items: Arc<Mutex<Vec<T>>>,
}

impl<T> Clone for SinkCollector<T> {
    fn clone(&self) -> Self {
        SinkCollector {
            items: self.items.clone(),
        }
    }
}

impl<T> Default for SinkCollector<T>
where
    T: for<'de> serde::Deserialize<'de> + Send + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SinkCollector<T>
where
    T: for<'de> serde::Deserialize<'de> + Send + 'static,
{
    /// Create an empty collector.
    pub fn new() -> Self {
        SinkCollector {
            items: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// An operator factory building sink operators that decode each tuple
    /// into `T` and push it into this collector. Tuples that fail to decode
    /// are ignored, mirroring the hand-written collector sinks.
    pub fn factory(&self) -> Arc<dyn OperatorFactory> {
        let items = self.items.clone();
        Arc::new(move || {
            let items = items.clone();
            StatelessFn::new(
                "collector",
                move |_, t: &Tuple, _out: &mut Vec<seep_core::OutputTuple>| {
                    if let Ok(value) = t.decode::<T>() {
                        items.lock().push(value);
                    }
                },
            )
        })
    }

    /// Remove and return everything collected so far.
    pub fn take(&self) -> Vec<T> {
        std::mem::take(&mut *self.items.lock())
    }

    /// Number of values collected so far.
    pub fn len(&self) -> usize {
        self.items.lock().len()
    }

    /// Whether nothing has been collected yet.
    pub fn is_empty(&self) -> bool {
        self.items.lock().is_empty()
    }

    /// Run a closure over the collected values without removing them.
    pub fn with<R>(&self, f: impl FnOnce(&[T]) -> R) -> R {
        f(&self.items.lock())
    }
}

impl<T> SinkCollector<T>
where
    T: for<'de> serde::Deserialize<'de> + Clone + Send + 'static,
{
    /// A copy of everything collected so far, leaving the collector intact.
    pub fn snapshot(&self) -> Vec<T> {
        self.items.lock().clone()
    }
}
