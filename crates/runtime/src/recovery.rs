//! Fault-tolerance strategies compared in §6.2 (Fig. 11).
//!
//! * **R+SM** (the paper's approach): operator state is checkpointed every
//!   interval `c` and backed up upstream; recovery restores the checkpoint
//!   and replays only the tuples buffered since it was taken.
//! * **Upstream backup (UB)**: no checkpoints; upstream operators buffer all
//!   output tuples for the window horizon and recovery re-processes the whole
//!   buffer to rebuild the operator state.
//! * **Source replay (SR)**: no checkpoints and no intermediate buffering;
//!   only the sources buffer tuples, and recovery replays them through the
//!   whole pipeline (stopping new tuple generation while doing so).

use serde::{Deserialize, Serialize};

/// Which fault-tolerance mechanism the runtime uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryStrategy {
    /// Recovery using state management (the paper's approach).
    StateManagement,
    /// Upstream backup: replay buffered tuples from the immediate upstream.
    UpstreamBackup,
    /// Source replay: replay buffered tuples from the sources.
    SourceReplay,
}

impl RecoveryStrategy {
    /// Whether periodic checkpointing is active under this strategy.
    pub fn checkpoints(self) -> bool {
        matches!(self, RecoveryStrategy::StateManagement)
    }

    /// Whether intermediate (non-source) operators keep output buffers for
    /// replay under this strategy.
    pub fn intermediate_buffers(self) -> bool {
        !matches!(self, RecoveryStrategy::SourceReplay)
    }

    /// Short name used in metrics and experiment output.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryStrategy::StateManagement => "R+SM",
            RecoveryStrategy::UpstreamBackup => "UB",
            RecoveryStrategy::SourceReplay => "SR",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_properties() {
        assert!(RecoveryStrategy::StateManagement.checkpoints());
        assert!(!RecoveryStrategy::UpstreamBackup.checkpoints());
        assert!(!RecoveryStrategy::SourceReplay.checkpoints());
        assert!(RecoveryStrategy::StateManagement.intermediate_buffers());
        assert!(RecoveryStrategy::UpstreamBackup.intermediate_buffers());
        assert!(!RecoveryStrategy::SourceReplay.intermediate_buffers());
        assert_eq!(RecoveryStrategy::StateManagement.label(), "R+SM");
        assert_eq!(RecoveryStrategy::UpstreamBackup.label(), "UB");
        assert_eq!(RecoveryStrategy::SourceReplay.label(), "SR");
    }
}
