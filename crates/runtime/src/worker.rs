//! Operator workers: one per physical operator instance (one operator per VM,
//! §2.2).
//!
//! A worker owns the operator instance together with the runtime-managed
//! parts of its state: the output [`BufferState`], the [`RoutingState`]
//! towards each logical downstream operator, the duplicate filter over its
//! input streams, the reflected-timestamp vector used in checkpoints, and the
//! logical output clock (shared between all partitions of the same logical
//! operator so that timestamps within one logical stream are unique).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use seep_core::{
    BatchAdmission, BatchOutput, BufferState, Checkpoint, DuplicateFilter, Key, LogicalOpId,
    OperatorId, OutputTuple, RoutingState, StatefulOperator, StreamId, Timestamp, TimestampVec,
    TrafficStats, Tuple, TupleBatch,
};
use seep_net::{DataReceiver, Envelope, Message, Network};

use crate::metrics::Metrics;

/// A logical-operator output clock shared by all partitions of that operator.
///
/// Sharing the counter keeps timestamps unique and monotonic within one
/// logical stream even when the operator is partitioned, which is what the
/// downstream duplicate filters and the buffer-trim logic rely on.
#[derive(Debug, Clone, Default)]
pub struct SharedClock {
    last: Arc<AtomicU64>,
    /// Serialises [stamp + channel push] across sibling partitions when they
    /// emit from different worker threads: downstream duplicate filters are
    /// per-stream high watermarks, so a logical stream's timestamps must
    /// reach each receiver in monotonic order. The cooperative stepper never
    /// locks it.
    emit_gate: Arc<Mutex<()>>,
}

impl SharedClock {
    /// A fresh clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance the clock and return the new timestamp.
    pub fn tick(&self) -> Timestamp {
        self.last.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Reserve a contiguous block of `n` timestamps with one atomic bump and
    /// return the first; the block is `first..first + n`. This is the batched
    /// plane's amortisation of the per-output [`tick`](Self::tick): a batch of
    /// outputs pays one clock update instead of one per tuple, and the
    /// timestamps stay exactly the sequence per-tuple ticking would assign.
    pub fn tick_many(&self, n: u64) -> Timestamp {
        self.last.fetch_add(n, Ordering::Relaxed) + 1
    }

    /// The most recently issued timestamp.
    pub fn last(&self) -> Timestamp {
        self.last.load(Ordering::Relaxed)
    }

    /// Reset the clock to `ts` — used when restoring an operator from a
    /// checkpoint so that re-emitted tuples are recognised as duplicates
    /// downstream (§3.2).
    pub fn reset_to(&self, ts: Timestamp) {
        self.last.store(ts, Ordering::Relaxed);
    }

    /// The gate a parallel dispatcher holds while stamping outputs and
    /// pushing them onto downstream channels. Cloned out so the caller can
    /// lock it while still mutating the worker that owns the clock.
    pub(crate) fn emit_gate(&self) -> Arc<Mutex<()>> {
        Arc::clone(&self.emit_gate)
    }
}

/// The state of one worker (one operator instance on one VM).
pub struct WorkerCore {
    /// Physical operator instance id.
    pub id: OperatorId,
    /// Logical operator this instance implements.
    pub logical: LogicalOpId,
    /// Whether the logical operator is a sink (no downstream operators).
    pub is_sink: bool,
    /// Whether this worker records end-to-end latency samples for the tuples
    /// it processes (always true for sinks; optionally true for stateful
    /// operators in the overhead experiments).
    pub latency_probe: bool,
    /// Whether the operator carries processing state worth checkpointing.
    pub stateful: bool,
    /// Whether this worker keeps output buffers for replay (disabled for
    /// intermediate operators under the source-replay baseline).
    pub keep_buffers: bool,
    /// Output batch size towards downstream operators. 1 (the default)
    /// reproduces the seed per-tuple path exactly: every output is sent as
    /// its own `Message::Data` envelope the moment it is produced. Above 1,
    /// outputs accumulate in per-target pending batches that are sent when
    /// full and flushed at every step/tick boundary (and before any
    /// reconfiguration pauses the worker).
    pub out_batch: usize,
    /// Stamp a source emit time onto one in this many emitted tuples.
    /// 1 — the default — stamps every tuple (the seed behaviour); larger
    /// values thin the sampling **at the stamp site**: unsampled tuples
    /// never acquire a timestamp at all (emit time 0), so they skip both
    /// `Instant::now` reads — the one here and the one the probe would have
    /// paid — and every probe downstream records exactly the tuples that
    /// carry a stamp.
    pub latency_sample_every: u64,
    /// Position in the 1-in-N stamping sequence; advances only for tuples
    /// that would have been stamped at N=1, so N=1 is bit-identical to full
    /// stamping. Persistent across steps and ticks: hit counts stay exact
    /// (⌈eligible/N⌉), not probabilistic.
    latency_seq: u64,
    /// Whether the worker is currently stepped by the parallel executor.
    /// Dispatch then serialises [stamp + push] per logical operator through
    /// the shared clock's emit gate, and batched outputs defer stamping to
    /// ship time so sibling partitions interleave whole batches.
    parallel: bool,
    operator: Box<dyn StatefulOperator>,
    receiver: DataReceiver,
    buffer: BufferState,
    routing: BTreeMap<LogicalOpId, RoutingState>,
    dedup: DuplicateFilter,
    clock: SharedClock,
    ts: TimestampVec,
    /// Decayed per-key tuple counters: the observed-traffic signal embedded
    /// in checkpoints so distribution-guided splits weight keys by the load
    /// they actually receive, not by their state footprint.
    traffic: TrafficStats,
    /// Partially filled output batches per downstream target. In cooperative
    /// mode tuples here are already stamped and in the output buffer (pushed
    /// at route time); in parallel mode they are unstamped and buffered only
    /// at ship time, under the emit gate. Either way a crash before the flush
    /// loses nothing the replay protocol cannot restore.
    pending: BTreeMap<OperatorId, TupleBatch>,
    paused: bool,
    failed: bool,
    processed: u64,
    busy: Duration,
    busy_at_last_report: Duration,
}

impl WorkerCore {
    /// Create a worker for a freshly deployed operator instance.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: OperatorId,
        logical: LogicalOpId,
        operator: Box<dyn StatefulOperator>,
        receiver: DataReceiver,
        routing: BTreeMap<LogicalOpId, RoutingState>,
        clock: SharedClock,
        is_sink: bool,
        keep_buffers: bool,
    ) -> Self {
        let stateful = operator.is_stateful();
        let mut buffer = BufferState::new();
        for r in routing.values() {
            for target in r.targets() {
                buffer.add_downstream(target);
            }
        }
        WorkerCore {
            id,
            logical,
            is_sink,
            latency_probe: is_sink,
            stateful,
            keep_buffers,
            out_batch: 1,
            latency_sample_every: 1,
            latency_seq: 0,
            parallel: false,
            operator,
            receiver,
            buffer,
            routing,
            dedup: DuplicateFilter::new(),
            clock,
            ts: TimestampVec::new(),
            traffic: TrafficStats::new(),
            pending: BTreeMap::new(),
            paused: false,
            failed: false,
            processed: 0,
            busy: Duration::ZERO,
            busy_at_last_report: Duration::ZERO,
        }
    }

    /// The operator's human-readable name.
    pub fn name(&self) -> &str {
        self.operator.name()
    }

    /// Whether the worker has been paused by a coordinator (Algorithm 3
    /// stops upstream operators while repartitioning their state).
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// Pause or resume processing.
    pub fn set_paused(&mut self, paused: bool) {
        self.paused = paused;
    }

    /// Whether the worker's VM has crashed.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Crash-stop the worker: it stops processing and its in-memory state is
    /// considered lost — including any partially filled output batches, which
    /// only the replay protocol can regenerate (in cooperative mode they were
    /// pushed to the output buffer at route time; parallel pending batches
    /// never outlive the drain that produced them).
    pub fn mark_failed(&mut self) {
        self.failed = true;
        self.pending.clear();
    }

    /// Tuples processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of tuples currently queued on the worker's inbound channel.
    pub fn queued(&self) -> usize {
        self.receiver.queued()
    }

    /// Number of output tuples sitting in partially filled batches, not yet
    /// sent downstream.
    pub fn pending_tuples(&self) -> usize {
        self.pending.values().map(TupleBatch::len).sum()
    }

    /// Immutable access to the hosted operator (for assertions and result
    /// collection by experiments).
    pub fn operator(&self) -> &dyn StatefulOperator {
        self.operator.as_ref()
    }

    /// Mutable access to the hosted operator.
    pub fn operator_mut(&mut self) -> &mut dyn StatefulOperator {
        self.operator.as_mut()
    }

    /// The worker's output buffer state.
    pub fn buffer(&self) -> &BufferState {
        &self.buffer
    }

    /// Mutable access to the output buffer state (used by the coordinators to
    /// trim and repartition buffers).
    pub fn buffer_mut(&mut self) -> &mut BufferState {
        &mut self.buffer
    }

    /// The routing state towards a logical downstream operator.
    pub fn routing(&self, downstream: LogicalOpId) -> Option<&RoutingState> {
        self.routing.get(&downstream)
    }

    /// Replace the routing state towards a logical downstream operator and
    /// make sure buffers exist towards the new targets.
    pub fn set_routing(&mut self, downstream: LogicalOpId, routing: RoutingState) {
        for target in routing.targets() {
            self.buffer.add_downstream(target);
        }
        self.routing.insert(downstream, routing);
    }

    /// The reflected-timestamp vector (most recent input tuples whose effect
    /// is in the operator state).
    pub fn reflected(&self) -> &TimestampVec {
        &self.ts
    }

    /// The shared logical output clock.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// Forget the duplicate-filter watermarks so previously seen tuples are
    /// accepted again. Used by the source-replay baseline, which re-processes
    /// the source stream through the intermediate operators.
    pub fn reset_dedup(&mut self) {
        self.dedup = DuplicateFilter::new();
    }

    /// The worker's decayed per-key traffic counters.
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// Switch the worker between cooperative stepping (the default) and
    /// parallel-executor stepping. Callers must flush pending batches before
    /// turning parallel mode on: cooperative pending tuples are already
    /// stamped, while parallel pending tuples take their timestamps at ship
    /// time.
    pub(crate) fn set_parallel(&mut self, parallel: bool) {
        self.parallel = parallel;
    }

    /// Advance the 1-in-N stamping sequence and report whether this emitted
    /// tuple should carry a source emit time (and hence be latency-probed
    /// downstream).
    fn stamp_gate(&mut self) -> bool {
        let hit = self
            .latency_seq
            .is_multiple_of(self.latency_sample_every.max(1));
        self.latency_seq = self.latency_seq.wrapping_add(1);
        hit
    }

    /// CPU utilisation since the previous report: busy time divided by the
    /// report interval. Reporting is also the traffic counters' decay tick:
    /// one half-life per report interval, so a key must keep receiving
    /// tuples to stay hot in the checkpoint's split sample.
    pub fn utilization(&mut self, interval_ms: u64) -> f64 {
        self.traffic.decay();
        let delta = self.busy.saturating_sub(self.busy_at_last_report);
        self.busy_at_last_report = self.busy;
        if interval_ms == 0 {
            return 0.0;
        }
        (delta.as_secs_f64() * 1_000.0 / interval_ms as f64).min(1.0)
    }

    /// Drain and process up to `batch` inbound envelopes. Returns the number
    /// of data tuples processed.
    pub fn step(
        &mut self,
        network: &Network,
        metrics: &Metrics,
        epoch: Instant,
        batch: usize,
    ) -> usize {
        if self.failed || self.paused {
            return 0;
        }
        let mut processed = 0;
        for _ in 0..batch {
            let Ok(Some(envelope)) = self.receiver.recv_timeout(Duration::ZERO) else {
                break;
            };
            let Envelope {
                message,
                emitted_at_us,
                ..
            } = envelope;
            match message {
                Message::Data { stream, tuple } => {
                    if !self.dedup.accept(stream, &tuple) {
                        continue;
                    }
                    let started = Instant::now();
                    let mut out = Vec::new();
                    self.operator.process(stream, &tuple, &mut out);
                    self.ts.advance(stream, tuple.ts);
                    self.traffic.record(tuple.key);
                    self.busy += started.elapsed();
                    self.processed += 1;
                    processed += 1;
                    self.dispatch(out, emitted_at_us, network, metrics);
                    // Sampling is thinned at the stamp site: every tuple that
                    // carries a stamp is recorded (`emitted_at_us > 0`), so a
                    // second 1-in-N gate here would square the thinning.
                    if self.latency_probe && emitted_at_us > 0 {
                        let now_us = epoch.elapsed().as_micros() as u64;
                        metrics.record_latency_us(now_us.saturating_sub(emitted_at_us));
                    }
                }
                Message::Control(_) => {
                    // Coordinators manipulate worker state directly in this
                    // controller-driven runtime; control envelopes are kept
                    // for the wire protocol but are no-ops here.
                }
                Message::DataBatch { stream, batch } => {
                    processed += self.process_data_batch(stream, batch, network, metrics, epoch);
                }
            }
        }
        // Step boundaries are flush points: partial batches never outlive the
        // scheduling round that produced them, so `drain()` converges and
        // batch size only affects how tuples are grouped, never whether they
        // move.
        self.flush_pending(network, metrics);
        if processed > 0 {
            metrics.record_processed(self.id, processed as u64);
        }
        processed
    }

    /// Process one inbound tuple batch: one duplicate-filter probe, one
    /// reflected-timestamp advance and one `process_batch` call for the whole
    /// run, with latency samples still recorded per tuple.
    fn process_data_batch(
        &mut self,
        stream: StreamId,
        batch: TupleBatch,
        network: &Network,
        metrics: &Metrics,
        epoch: Instant,
    ) -> usize {
        let TupleBatch {
            tuples,
            emitted_at_us,
        } = batch;
        let (accepted, emit_us) = match self.dedup.accept_batch(stream, &tuples) {
            BatchAdmission::All => (tuples, emitted_at_us),
            BatchAdmission::None => return 0,
            BatchAdmission::Partial => {
                let mut kept = Vec::with_capacity(tuples.len());
                let mut kept_emit = Vec::with_capacity(tuples.len());
                for (tuple, emit) in tuples.into_iter().zip(emitted_at_us) {
                    if self.dedup.accept(stream, &tuple) {
                        kept.push(tuple);
                        kept_emit.push(emit);
                    }
                }
                (kept, kept_emit)
            }
        };
        let Some(last_ts) = accepted.last().map(|t| t.ts) else {
            return 0;
        };
        let started = Instant::now();
        let mut out = BatchOutput::new();
        self.operator.process_batch(stream, &accepted, &mut out);
        self.busy += started.elapsed();
        self.ts.advance(stream, last_ts);
        for tuple in &accepted {
            self.traffic.record(tuple.key);
        }
        let count = accepted.len();
        self.processed += count as u64;
        self.dispatch_batch(out, &emit_us, network, metrics);
        if self.latency_probe {
            // The clock read is deferred until the batch proves to contain a
            // stamped tuple; a batch of unstamped tuples costs no `Instant`
            // read at all. All samples of one batch share one reading, as the
            // seed's per-batch acquisition did.
            let mut now_us = None;
            for &emit in &emit_us {
                if emit > 0 {
                    let now = *now_us.get_or_insert_with(|| epoch.elapsed().as_micros() as u64);
                    metrics.record_latency_us(now.saturating_sub(emit));
                }
            }
        }
        count
    }

    /// Inject a source tuple: the worker behaves as the data feeder, emitting
    /// a tuple stamped by its logical clock towards its downstream operators.
    pub fn emit_source(
        &mut self,
        key: Key,
        payload: impl Into<bytes::Bytes>,
        network: &Network,
        metrics: &Metrics,
        epoch: Instant,
    ) {
        if self.failed {
            return;
        }
        // The stamp site of 1-in-N latency sampling: tuples the sampler will
        // discard skip the `epoch.elapsed()` acquisition entirely and travel
        // with emit time 0, which every probe downstream ignores. At N=1 the
        // gate always hits, reproducing the seed's stamp-every-tuple path.
        let emitted_at_us = if self.stamp_gate() {
            epoch.elapsed().as_micros() as u64
        } else {
            0
        };
        let outputs = vec![OutputTuple::new(key, payload)];
        self.dispatch(outputs, emitted_at_us, network, metrics);
    }

    /// Trigger time-based operator behaviour (window closes). Emitted tuples
    /// carry the current wall time as their source emit time.
    pub fn tick(&mut self, now_ms: u64, network: &Network, metrics: &Metrics, epoch: Instant) {
        if self.failed || self.paused {
            return;
        }
        let started = Instant::now();
        let mut out = Vec::new();
        self.operator.on_tick(now_ms, &mut out);
        self.busy += started.elapsed();
        if !out.is_empty() {
            // Window emissions are stamp sites too: the clock is read once
            // per tick (as the seed did) and the 1-in-N gate runs per output,
            // so sampled tick emissions stay exactly ⌈emitted/N⌉.
            let now_us = epoch.elapsed().as_micros() as u64;
            if self.latency_sample_every > 1 {
                for output in out {
                    let emitted_at_us = if self.stamp_gate() { now_us } else { 0 };
                    self.dispatch(vec![output], emitted_at_us, network, metrics);
                }
            } else {
                self.dispatch(out, now_us, network, metrics);
            }
        }
        // Window emissions must not linger in partial batches until the next
        // data tuple happens to arrive.
        self.flush_pending(network, metrics);
    }

    fn dispatch(
        &mut self,
        outputs: Vec<OutputTuple>,
        emitted_at_us: u64,
        network: &Network,
        metrics: &Metrics,
    ) {
        if outputs.is_empty() {
            return;
        }
        if self.parallel {
            if self.out_batch > 1 {
                // Defer stamping to ship time: whole batches take contiguous
                // timestamp blocks under the emit gate, so sibling partitions
                // interleave batch-monotonically on the shared stream.
                for output in outputs {
                    self.enqueue_routed(output.with_ts(0), emitted_at_us, network, metrics);
                }
            } else {
                let gate = self.clock.emit_gate();
                let _stamping = gate.lock();
                for output in outputs {
                    let ts = self.clock.tick();
                    self.route_immediate(output.with_ts(ts), emitted_at_us, network, metrics);
                }
            }
            return;
        }
        for output in outputs {
            let ts = self.clock.tick();
            let tuple = output.with_ts(ts);
            if self.out_batch > 1 {
                self.enqueue_routed(tuple, emitted_at_us, network, metrics);
            } else {
                self.route_immediate(tuple, emitted_at_us, network, metrics);
            }
        }
    }

    /// Route the outputs of a `process_batch` call, reserving the whole
    /// timestamp block with one clock bump and mapping each output back to
    /// its input tuple's source emit time.
    fn dispatch_batch(
        &mut self,
        out: BatchOutput,
        input_emit_us: &[u64],
        network: &Network,
        metrics: &Metrics,
    ) {
        if out.is_empty() {
            return;
        }
        if self.parallel {
            if self.out_batch > 1 {
                for (source, output) in out.into_items() {
                    let emitted_at_us = input_emit_us.get(source).copied().unwrap_or(0);
                    // Unstamped until ship time (see `ship_batch`).
                    self.enqueue_routed(output.with_ts(0), emitted_at_us, network, metrics);
                }
            } else {
                let gate = self.clock.emit_gate();
                let _stamping = gate.lock();
                for (source, output) in out.into_items() {
                    let emitted_at_us = input_emit_us.get(source).copied().unwrap_or(0);
                    let tuple = output.with_ts(self.clock.tick());
                    self.route_immediate(tuple, emitted_at_us, network, metrics);
                }
            }
            return;
        }
        if self.out_batch > 1 {
            let first = self.clock.tick_many(out.len() as u64);
            for (offset, (source, output)) in out.into_items().into_iter().enumerate() {
                let emitted_at_us = input_emit_us.get(source).copied().unwrap_or(0);
                let tuple = output.with_ts(first + offset as u64);
                self.enqueue_routed(tuple, emitted_at_us, network, metrics);
            }
        } else {
            for (source, output) in out.into_items() {
                let emitted_at_us = input_emit_us.get(source).copied().unwrap_or(0);
                let tuple = output.with_ts(self.clock.tick());
                self.route_immediate(tuple, emitted_at_us, network, metrics);
            }
        }
    }

    /// The seed per-tuple send: one `Message::Data` envelope per routed copy,
    /// buffered for replay at route time.
    fn route_immediate(
        &mut self,
        tuple: Tuple,
        emitted_at_us: u64,
        network: &Network,
        metrics: &Metrics,
    ) {
        for routing in self.routing.values() {
            let Some(target) = routing.route(tuple.key) else {
                continue;
            };
            if self.keep_buffers {
                self.buffer.push(target, tuple.clone());
            }
            let envelope = Envelope::new(
                self.id,
                target,
                Message::data(StreamId(self.logical.0), tuple.clone()),
            )
            .with_emit_time(emitted_at_us);
            if network.send(envelope).is_err() {
                // The destination VM is gone; the tuple stays in the
                // output buffer and will be replayed after recovery.
                metrics.record_dropped_send();
            }
        }
    }

    /// The batched send: the routed copy joins the target's pending batch and
    /// the batch ships as one envelope once it reaches `out_batch`. In
    /// cooperative mode the tuple is buffered for replay at route time,
    /// exactly like the immediate path; in parallel mode it is unstamped here
    /// and both stamping and buffering happen at ship time, under the emit
    /// gate.
    fn enqueue_routed(
        &mut self,
        tuple: Tuple,
        emitted_at_us: u64,
        network: &Network,
        metrics: &Metrics,
    ) {
        let mut filled = false;
        for routing in self.routing.values() {
            let Some(target) = routing.route(tuple.key) else {
                continue;
            };
            if !self.parallel && self.keep_buffers {
                self.buffer.push(target, tuple.clone());
            }
            let slot = self.pending.entry(target).or_default();
            slot.push(tuple.clone(), emitted_at_us);
            filled |= slot.len() >= self.out_batch;
        }
        if filled {
            self.ship_full_slots(network, metrics);
        }
    }

    /// Ship every pending batch that reached `out_batch`. Runs at most once
    /// per `out_batch` enqueued tuples, so the slot scan amortises to nothing.
    fn ship_full_slots(&mut self, network: &Network, metrics: &Metrics) {
        let full: Vec<OperatorId> = self
            .pending
            .iter()
            .filter(|(_, batch)| batch.len() >= self.out_batch)
            .map(|(target, _)| *target)
            .collect();
        for target in full {
            let batch = std::mem::take(self.pending.get_mut(&target).expect("slot exists"));
            self.ship_batch(target, batch, network, metrics);
        }
    }

    /// Put one batch on the wire. The cooperative path sends it as-is (its
    /// tuples were stamped and buffered at route time). The parallel path
    /// stamps the whole batch with one contiguous timestamp block and pushes
    /// it into the replay buffer here, under the emit gate, so concurrent
    /// sibling partitions emit monotonically on the shared logical stream.
    fn ship_batch(
        &mut self,
        target: OperatorId,
        mut batch: TupleBatch,
        network: &Network,
        metrics: &Metrics,
    ) {
        if batch.is_empty() {
            return;
        }
        if self.parallel {
            let gate = self.clock.emit_gate();
            let _stamping = gate.lock();
            let first = self.clock.tick_many(batch.len() as u64);
            for (offset, tuple) in batch.tuples.iter_mut().enumerate() {
                tuple.ts = first + offset as u64;
            }
            if self.keep_buffers {
                for tuple in &batch.tuples {
                    self.buffer.push(target, tuple.clone());
                }
            }
            send_batch(network, metrics, self.id, self.logical, target, batch);
        } else {
            send_batch(network, metrics, self.id, self.logical, target, batch);
        }
    }

    /// Send every partially filled output batch downstream. Called at step
    /// and tick boundaries and by the reconfiguration executor before any
    /// plan pauses or captures state, so batch boundaries are invisible to
    /// the drain/pause/capture/replay protocol. Returns the tuples flushed.
    pub fn flush_pending(&mut self, network: &Network, metrics: &Metrics) -> usize {
        if self.pending.is_empty() {
            return 0;
        }
        let pending = std::mem::take(&mut self.pending);
        let mut flushed = 0;
        for (target, batch) in pending {
            if batch.is_empty() {
                continue;
            }
            flushed += batch.len();
            self.ship_batch(target, batch, network, metrics);
        }
        flushed
    }

    /// Re-send buffered tuples towards `target` that are newer than the
    /// timestamp reflected for this worker's output stream in `reflected`
    /// (`replay-buffer-state`, Algorithm 1 line 10). Returns the number of
    /// tuples replayed.
    pub fn replay_to(
        &self,
        target: OperatorId,
        reflected: &TimestampVec,
        network: &Network,
        metrics: &Metrics,
    ) -> usize {
        let stream = StreamId(self.logical.0);
        let tuples =
            seep_core::primitives::replay_buffer_state(&self.buffer, target, stream, reflected);
        let count = tuples.len();
        for tuple in tuples {
            let envelope = Envelope::new(self.id, target, Message::data(stream, tuple));
            if network.send(envelope).is_err() {
                metrics.record_dropped_send();
            }
        }
        count
    }

    /// Take a checkpoint of the operator: processing state (with the
    /// reflected-timestamp vector attached), output buffers, the value of
    /// the logical output clock and the decayed traffic counters (so
    /// distribution-guided splits can weight keys by observed load).
    pub fn take_checkpoint(&self, sequence: u64) -> Checkpoint {
        let mut processing = self.operator.get_processing_state();
        *processing.timestamps_mut() = self.ts.clone();
        Checkpoint::new(self.id, sequence, processing, self.buffer.clone())
            .with_emit_clock(self.clock.last())
            .with_traffic(self.traffic.clone())
    }

    /// Restore the worker from a (possibly partitioned) checkpoint: install
    /// the processing state, buffers, reflected timestamps and duplicate
    /// filter. The caller decides whether to reset the shared clock (only for
    /// a serial recovery, where no sibling partition is using it).
    pub fn restore(&mut self, checkpoint: Checkpoint) {
        self.ts = checkpoint.processing.timestamps().clone();
        self.dedup = DuplicateFilter::resume_from(self.ts.clone());
        self.operator.set_processing_state(checkpoint.processing);
        self.buffer = checkpoint.buffer;
        // Seed the traffic counters from the checkpoint (partitioned to this
        // worker's range), so a follow-up rebalance keeps its signal.
        self.traffic = checkpoint.traffic;
        for routing in self.routing.values() {
            for target in routing.targets() {
                self.buffer.add_downstream(target);
            }
        }
    }
}

/// Ship a full batch as one envelope. A failed send counts every tuple the
/// batch carried as dropped; they stay in the output buffer for replay.
fn send_batch(
    network: &Network,
    metrics: &Metrics,
    from: OperatorId,
    logical: LogicalOpId,
    target: OperatorId,
    batch: TupleBatch,
) {
    let tuples = batch.len() as u64;
    let envelope = Envelope::new(
        from,
        target,
        Message::data_batch(StreamId(logical.0), batch),
    );
    if network.send(envelope).is_err() {
        metrics.record_dropped_sends(tuples);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seep_core::{KeyRange, StatelessFn, Tuple};

    fn network() -> Network {
        Network::new(1024)
    }

    fn passthrough() -> Box<dyn StatefulOperator> {
        Box::new(StatelessFn::new(
            "pass",
            |_, t: &Tuple, out: &mut Vec<OutputTuple>| {
                out.push(OutputTuple::new(t.key, t.payload.clone()));
            },
        ))
    }

    fn worker_with_downstream(
        net: &Network,
        id: u64,
        downstream: u64,
    ) -> (WorkerCore, DataReceiver) {
        let rx = net.register(OperatorId::new(id));
        let downstream_rx = net.register(OperatorId::new(downstream));
        let mut routing = BTreeMap::new();
        routing.insert(
            LogicalOpId(9),
            RoutingState::single(OperatorId::new(downstream)),
        );
        let core = WorkerCore::new(
            OperatorId::new(id),
            LogicalOpId(1),
            passthrough(),
            rx,
            routing,
            SharedClock::new(),
            false,
            true,
        );
        (core, downstream_rx)
    }

    #[test]
    fn shared_clock_is_monotonic_and_resettable() {
        let clock = SharedClock::new();
        let sibling = clock.clone();
        assert_eq!(clock.tick(), 1);
        assert_eq!(sibling.tick(), 2);
        assert_eq!(clock.last(), 2);
        clock.reset_to(0);
        assert_eq!(sibling.tick(), 1);
    }

    #[test]
    fn step_processes_and_forwards_tuples() {
        let net = network();
        let metrics = Metrics::new();
        let (mut core, downstream_rx) = worker_with_downstream(&net, 1, 2);
        let epoch = Instant::now();

        net.send_tuple(
            OperatorId::new(0),
            OperatorId::new(1),
            StreamId(0),
            Tuple::new(1, Key(5), vec![7]),
        )
        .unwrap();
        let processed = core.step(&net, &metrics, epoch, 16);
        assert_eq!(processed, 1);
        assert_eq!(core.processed(), 1);
        assert_eq!(core.reflected().get(StreamId(0)), Some(1));
        // The forwarded tuple reached the downstream endpoint and is buffered.
        assert_eq!(downstream_rx.queued(), 1);
        assert_eq!(core.buffer().tuples_for(OperatorId::new(2)).len(), 1);
        assert_eq!(metrics.processed_by(OperatorId::new(1)), 1);
    }

    #[test]
    fn duplicates_are_filtered() {
        let net = network();
        let metrics = Metrics::new();
        let (mut core, downstream_rx) = worker_with_downstream(&net, 1, 2);
        let epoch = Instant::now();
        for _ in 0..2 {
            net.send_tuple(
                OperatorId::new(0),
                OperatorId::new(1),
                StreamId(0),
                Tuple::new(1, Key(5), vec![7]),
            )
            .unwrap();
        }
        assert_eq!(core.step(&net, &metrics, epoch, 16), 1);
        assert_eq!(downstream_rx.queued(), 1);
    }

    #[test]
    fn paused_and_failed_workers_do_not_process() {
        let net = network();
        let metrics = Metrics::new();
        let (mut core, _rx) = worker_with_downstream(&net, 1, 2);
        let epoch = Instant::now();
        net.send_tuple(
            OperatorId::new(0),
            OperatorId::new(1),
            StreamId(0),
            Tuple::new(1, Key(5), vec![7]),
        )
        .unwrap();
        core.set_paused(true);
        assert!(core.is_paused());
        assert_eq!(core.step(&net, &metrics, epoch, 16), 0);
        assert_eq!(core.queued(), 1, "tuple stays queued while paused");
        core.set_paused(false);
        core.mark_failed();
        assert!(core.is_failed());
        assert_eq!(core.step(&net, &metrics, epoch, 16), 0);
    }

    #[test]
    fn checkpoint_restore_and_replay_roundtrip() {
        let net = network();
        let metrics = Metrics::new();
        let (mut core, _downstream_rx) = worker_with_downstream(&net, 1, 2);
        let epoch = Instant::now();
        for ts in 1..=5u64 {
            net.send_tuple(
                OperatorId::new(0),
                OperatorId::new(1),
                StreamId(0),
                Tuple::new(ts, Key(ts), vec![ts as u8]),
            )
            .unwrap();
        }
        core.step(&net, &metrics, epoch, 16);
        let checkpoint = core.take_checkpoint(3);
        assert_eq!(checkpoint.meta.sequence, 3);
        assert_eq!(checkpoint.emit_clock, 5);
        assert_eq!(checkpoint.buffer.len(), 5);
        assert_eq!(checkpoint.processing.timestamps().get(StreamId(0)), Some(5));

        // Restore into a fresh worker and replay towards a recovering
        // downstream that reflected only the first two tuples.
        let rx2 = net.register(OperatorId::new(5));
        let mut routing = BTreeMap::new();
        routing.insert(LogicalOpId(9), RoutingState::single(OperatorId::new(2)));
        let mut restored = WorkerCore::new(
            OperatorId::new(5),
            LogicalOpId(1),
            passthrough(),
            rx2,
            routing,
            SharedClock::new(),
            false,
            true,
        );
        restored.restore(checkpoint);
        assert_eq!(restored.reflected().get(StreamId(0)), Some(5));
        let mut reflected_downstream = TimestampVec::new();
        reflected_downstream.advance(StreamId(1), 2);
        let replayed =
            restored.replay_to(OperatorId::new(2), &reflected_downstream, &net, &metrics);
        assert_eq!(replayed, 3);
    }

    #[test]
    fn sink_records_latency() {
        let net = network();
        let metrics = Metrics::new();
        let rx = net.register(OperatorId::new(3));
        let core_routing = BTreeMap::new(); // sinks have no downstream
        let mut sink = WorkerCore::new(
            OperatorId::new(3),
            LogicalOpId(2),
            passthrough(),
            rx,
            core_routing,
            SharedClock::new(),
            true,
            true,
        );
        let epoch = Instant::now();
        let env = Envelope::new(
            OperatorId::new(1),
            OperatorId::new(3),
            Message::data(StreamId(0), Tuple::new(1, Key(1), vec![])),
        )
        .with_emit_time(1); // ~the epoch itself, so latency ≈ elapsed
        net.send(env).unwrap();
        sink.step(&net, &metrics, epoch, 4);
        assert_eq!(metrics.latency_samples(), 1);
    }

    #[test]
    fn batched_worker_groups_outputs_and_flushes_at_step_boundary() {
        let net = network();
        let metrics = Metrics::new();
        let (mut core, downstream_rx) = worker_with_downstream(&net, 1, 2);
        core.out_batch = 4;
        let epoch = Instant::now();
        for ts in 1..=6u64 {
            net.send_tuple(
                OperatorId::new(0),
                OperatorId::new(1),
                StreamId(0),
                Tuple::new(ts, Key(ts), vec![ts as u8]),
            )
            .unwrap();
        }
        assert_eq!(core.step(&net, &metrics, epoch, 16), 6);
        // 6 outputs at out_batch=4: one full batch plus a flushed partial —
        // two envelopes, six tuples, nothing left pending.
        assert_eq!(core.pending_tuples(), 0);
        let envelopes = downstream_rx.drain();
        assert_eq!(envelopes.len(), 2);
        let counts: Vec<usize> = envelopes.iter().map(|e| e.message.tuple_count()).collect();
        assert_eq!(counts, vec![4, 2]);
        // Replay buffers were filled at route time, before any send.
        assert_eq!(core.buffer().tuples_for(OperatorId::new(2)).len(), 6);
    }

    #[test]
    fn batch_input_processes_once_through_dedup_and_forwards() {
        let net = network();
        let metrics = Metrics::new();
        let (mut core, downstream_rx) = worker_with_downstream(&net, 1, 2);
        core.out_batch = 8;
        let epoch = Instant::now();
        let mut batch = TupleBatch::new();
        for ts in 1..=5u64 {
            batch.push(Tuple::new(ts, Key(ts), vec![ts as u8]), 0);
        }
        let env = Envelope::new(
            OperatorId::new(0),
            OperatorId::new(1),
            Message::data_batch(StreamId(0), batch.clone()),
        );
        net.send(env.clone()).unwrap();
        // A replayed copy of the same batch must be rejected whole.
        net.send(env).unwrap();
        assert_eq!(core.step(&net, &metrics, epoch, 16), 5);
        assert_eq!(core.processed(), 5);
        assert_eq!(core.reflected().get(StreamId(0)), Some(5));
        let envelopes = downstream_rx.drain();
        assert_eq!(envelopes.len(), 1);
        assert_eq!(envelopes[0].message.tuple_count(), 5);
        assert_eq!(metrics.processed_by(OperatorId::new(1)), 5);
    }

    #[test]
    fn batched_sink_records_latency_per_tuple() {
        let net = network();
        let metrics = Metrics::new();
        let rx = net.register(OperatorId::new(3));
        let mut sink = WorkerCore::new(
            OperatorId::new(3),
            LogicalOpId(2),
            passthrough(),
            rx,
            BTreeMap::new(),
            SharedClock::new(),
            true,
            true,
        );
        sink.out_batch = 64;
        let epoch = Instant::now();
        let mut batch = TupleBatch::new();
        for ts in 1..=7u64 {
            batch.push(Tuple::new(ts, Key(ts), vec![]), 1);
        }
        net.send(Envelope::new(
            OperatorId::new(1),
            OperatorId::new(3),
            Message::data_batch(StreamId(0), batch),
        ))
        .unwrap();
        sink.step(&net, &metrics, epoch, 4);
        assert_eq!(
            metrics.latency_samples(),
            7,
            "one latency sample per tuple, not per batch"
        );
    }

    #[test]
    fn failed_worker_loses_pending_batches() {
        let net = network();
        let metrics = Metrics::new();
        let (mut core, downstream_rx) = worker_with_downstream(&net, 1, 2);
        core.out_batch = 100;
        let epoch = Instant::now();
        core.emit_source(Key(1), vec![1], &net, &metrics, epoch);
        core.emit_source(Key(2), vec![2], &net, &metrics, epoch);
        assert_eq!(core.pending_tuples(), 2);
        assert_eq!(downstream_rx.queued(), 0, "nothing sent before the flush");
        core.mark_failed();
        assert_eq!(core.pending_tuples(), 0);
        // The tuples were buffered at route time: replay can regenerate them.
        assert_eq!(core.buffer().tuples_for(OperatorId::new(2)).len(), 2);
    }

    #[test]
    fn parallel_batched_outputs_stamp_and_buffer_at_ship_time() {
        let net = network();
        let metrics = Metrics::new();
        let (mut core, downstream_rx) = worker_with_downstream(&net, 1, 2);
        core.out_batch = 4;
        core.set_parallel(true);
        let epoch = Instant::now();
        for ts in 1..=6u64 {
            net.send_tuple(
                OperatorId::new(0),
                OperatorId::new(1),
                StreamId(0),
                Tuple::new(ts, Key(ts), vec![ts as u8]),
            )
            .unwrap();
        }
        assert_eq!(core.step(&net, &metrics, epoch, 16), 6);
        let envelopes = downstream_rx.drain();
        assert_eq!(envelopes.len(), 2);
        let mut stamped = Vec::new();
        for env in &envelopes {
            match &env.message {
                Message::DataBatch { batch, .. } => {
                    stamped.extend(batch.tuples.iter().map(|t| t.ts));
                }
                _ => panic!("expected batches"),
            }
        }
        // Stamping happened at ship time: contiguous blocks, no zeros left.
        assert_eq!(stamped, vec![1, 2, 3, 4, 5, 6]);
        // Replay buffering moved to ship time too — and holds stamped tuples.
        let buffered = core.buffer().tuples_for(OperatorId::new(2));
        assert_eq!(buffered.len(), 6);
        assert!(buffered.iter().all(|t| t.ts > 0));
    }

    #[test]
    fn parallel_per_tuple_path_stamps_under_the_gate() {
        let net = network();
        let metrics = Metrics::new();
        let (mut core, downstream_rx) = worker_with_downstream(&net, 1, 2);
        core.set_parallel(true);
        let epoch = Instant::now();
        for ts in 1..=3u64 {
            net.send_tuple(
                OperatorId::new(0),
                OperatorId::new(1),
                StreamId(0),
                Tuple::new(ts, Key(ts), vec![]),
            )
            .unwrap();
        }
        assert_eq!(core.step(&net, &metrics, epoch, 16), 3);
        let stamped: Vec<u64> = downstream_rx
            .drain()
            .into_iter()
            .map(|env| match env.message {
                Message::Data { tuple, .. } => tuple.ts,
                _ => panic!("expected per-tuple envelopes"),
            })
            .collect();
        assert_eq!(stamped, vec![1, 2, 3]);
        assert_eq!(core.buffer().tuples_for(OperatorId::new(2)).len(), 3);
    }

    #[test]
    fn latency_sampling_thins_at_the_stamp_site() {
        let net = network();
        let metrics = Metrics::new();
        let (mut source, downstream_rx) = worker_with_downstream(&net, 1, 2);
        source.latency_sample_every = 3;
        // Backdated so even the first stamp lands on a non-zero microsecond.
        let epoch = Instant::now() - Duration::from_millis(1);
        for n in 1..=7u64 {
            source.emit_source(Key(n), vec![n as u8], &net, &metrics, epoch);
        }
        // Stamps land on injection positions 0, 3 and 6: ceil(7 / 3). The
        // other four tuples travel with emit time 0 — they never acquired a
        // timestamp at all.
        let emits: Vec<bool> = downstream_rx
            .drain()
            .into_iter()
            .map(|env| env.emitted_at_us > 0)
            .collect();
        assert_eq!(
            emits,
            vec![true, false, false, true, false, false, true],
            "exactly every third injected tuple carries a stamp"
        );
    }

    #[test]
    fn probe_records_every_stamped_tuple_without_a_second_gate() {
        let net = network();
        let metrics = Metrics::new();
        let rx = net.register(OperatorId::new(3));
        let mut sink = WorkerCore::new(
            OperatorId::new(3),
            LogicalOpId(2),
            passthrough(),
            rx,
            BTreeMap::new(),
            SharedClock::new(),
            true,
            true,
        );
        sink.latency_sample_every = 3;
        let epoch = Instant::now();
        let mut batch = TupleBatch::new();
        // Pre-thinned upstream: positions 0, 3 and 6 stamped, the rest 0.
        for ts in 1..=7u64 {
            let emit = if (ts - 1).is_multiple_of(3) { 1 } else { 0 };
            batch.push(Tuple::new(ts, Key(ts), vec![]), emit);
        }
        net.send(Envelope::new(
            OperatorId::new(1),
            OperatorId::new(3),
            Message::data_batch(StreamId(0), batch),
        ))
        .unwrap();
        sink.step(&net, &metrics, epoch, 4);
        // Thinning already happened at the stamp site: the probe records all
        // three stamped arrivals (a second 1-in-N gate would record one).
        assert_eq!(metrics.latency_samples(), 3);
    }

    #[test]
    fn routing_update_adds_buffers_for_new_targets() {
        let net = network();
        let (mut core, _rx) = worker_with_downstream(&net, 1, 2);
        let ranges = KeyRange::full().split_even(2).unwrap();
        let mut routing = RoutingState::new();
        routing.set_route(ranges[0], OperatorId::new(10));
        routing.set_route(ranges[1], OperatorId::new(11));
        core.set_routing(LogicalOpId(9), routing);
        assert!(core.buffer().downstreams().contains(&OperatorId::new(10)));
        assert!(core
            .routing(LogicalOpId(9))
            .unwrap()
            .covers_exactly(KeyRange::full()));
        assert!(core.routing(LogicalOpId(8)).is_none());
    }

    #[test]
    fn traffic_counters_track_keys_decay_and_travel_with_checkpoints() {
        let net = network();
        let metrics = Metrics::new();
        let (mut core, _rx) = worker_with_downstream(&net, 1, 2);
        let epoch = Instant::now();
        let mut ts = 0u64;
        let mut feed = |core: &mut WorkerCore, key: u64, n: usize| {
            for _ in 0..n {
                ts += 1;
                net.send_tuple(
                    OperatorId::new(0),
                    OperatorId::new(1),
                    StreamId(0),
                    Tuple::new(ts, Key(key), vec![]),
                )
                .unwrap();
            }
            core.step(&net, &metrics, epoch, 256);
        };
        feed(&mut core, 5, 8);
        feed(&mut core, 9, 1);
        assert_eq!(core.traffic().count(Key(5)), 8);
        assert_eq!(core.traffic().count(Key(9)), 1);

        // The checkpoint carries the counters, and its sample now weights by
        // traffic — key 5 dominates even though both keys hold equal-size
        // state (the passthrough operator holds none at all, so the
        // footprint heuristic would have no signal whatsoever).
        let cp = core.take_checkpoint(1);
        let sample = cp.sample_keys(64);
        let hot = sample.iter().filter(|k| **k == Key(5)).count();
        let cold = sample.iter().filter(|k| **k == Key(9)).count();
        assert!(
            hot > cold,
            "traffic must weight the sample: {hot} vs {cold}"
        );

        // A utilisation report is a decay tick: the counters halve.
        core.utilization(5_000);
        assert_eq!(core.traffic().count(Key(5)), 4);

        // Restore installs the checkpointed counters.
        let rx2 = net.register(OperatorId::new(7));
        let mut restored = WorkerCore::new(
            OperatorId::new(7),
            LogicalOpId(1),
            passthrough(),
            rx2,
            BTreeMap::new(),
            SharedClock::new(),
            false,
            true,
        );
        restored.restore(cp);
        assert_eq!(restored.traffic().count(Key(5)), 8);
    }

    #[test]
    fn utilization_reflects_busy_fraction() {
        let net = network();
        let metrics = Metrics::new();
        let (mut core, _rx) = worker_with_downstream(&net, 1, 2);
        let epoch = Instant::now();
        // No work: utilisation is 0.
        assert_eq!(core.utilization(5_000), 0.0);
        for ts in 1..=50u64 {
            net.send_tuple(
                OperatorId::new(0),
                OperatorId::new(1),
                StreamId(0),
                Tuple::new(ts, Key(ts), vec![0u8; 64]),
            )
            .unwrap();
        }
        core.step(&net, &metrics, epoch, 64);
        let util = core.utilization(1);
        assert!((0.0..=1.0).contains(&util));
    }
}
