//! Shared process-orchestration helpers for the distribution tests.
//!
//! Compiled once per test binary; not every binary uses every helper.
#![allow(dead_code)]

use std::fs;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Path to the compiled `seep-node` binary.
pub fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_seep-node")
}

/// A scratch directory unique to this test.
pub fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seep-node-{test}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A child process that is SIGKILLed when the test ends, pass or fail.
pub struct Proc(pub Child);

impl Drop for Proc {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawn `seep-node` with `args`.
pub fn spawn(args: &[&str]) -> Proc {
    Proc(
        Command::new(bin())
            .args(args)
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn seep-node"),
    )
}

/// Wait until `path` exists with non-empty contents and return them.
pub fn wait_for_file(path: &Path, timeout: Duration) -> String {
    let deadline = Instant::now() + timeout;
    loop {
        if let Ok(s) = fs::read_to_string(path) {
            if !s.trim().is_empty() {
                return s.trim().to_string();
            }
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {}",
            path.display()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Scrape `http://{addr}/metrics` with a raw TCP request (no HTTP client
/// dependency) and return the body, or `None` while the server is down.
pub fn scrape_metrics(addr: &str) -> Option<String> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(2))).ok()?;
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
        .ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    let body = response.split_once("\r\n\r\n")?.1;
    Some(body.to_string())
}

/// Value of the first sample whose name (with labels) starts with `prefix`.
pub fn metric_value(body: &str, prefix: &str) -> Option<f64> {
    body.lines()
        .filter(|l| !l.starts_with('#'))
        .find(|l| l.starts_with(prefix))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

/// Poll `/metrics` until `pred` passes on a scraped body; panics on timeout.
pub fn wait_for_metric(addr: &str, what: &str, timeout: Duration, pred: impl Fn(&str) -> bool) {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(body) = scrape_metrics(addr) {
            if pred(&body) {
                return;
            }
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Run `seep-node --baseline` and return its rendered output.
pub fn baseline(rounds: u64, rate: u64) -> String {
    let out = Command::new(bin())
        .args([
            "--baseline",
            "--rounds",
            &rounds.to_string(),
            "--rate",
            &rate.to_string(),
        ])
        .output()
        .expect("run baseline");
    assert!(out.status.success(), "baseline run failed");
    String::from_utf8(out.stdout).expect("utf8 baseline output")
}
