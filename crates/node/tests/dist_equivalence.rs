//! A job deployed across two OS processes over localhost TCP must produce
//! sink outputs and per-operator processed counts identical to the same job
//! run in-process.

mod util;

use std::fs;
use std::time::Duration;

use util::{baseline, scratch, spawn, wait_for_file};

#[test]
fn two_process_distribution_matches_in_process() {
    let dir = scratch("equivalence");
    let port_file = dir.join("port.txt");
    let out_file = dir.join("dist.txt");

    let mut coordinator = spawn(&[
        "--coordinator",
        "--workers",
        "2",
        "--rounds",
        "6",
        "--rate",
        "25",
        "--port-file",
        port_file.to_str().unwrap(),
        "--out",
        out_file.to_str().unwrap(),
    ]);
    let addr = wait_for_file(&port_file, Duration::from_secs(20));

    let _w1 = spawn(&["--worker", "--name", "w1", "--coordinator-addr", &addr]);
    let _w2 = spawn(&["--worker", "--name", "w2", "--coordinator-addr", &addr]);

    let status = coordinator.0.wait().expect("wait coordinator");
    assert!(status.success(), "coordinator exited with {status:?}");

    let distributed = fs::read_to_string(&out_file).expect("distributed outcome");
    let expected = baseline(6, 25);
    assert!(
        distributed.lines().count() > 6,
        "distributed run produced results"
    );
    assert_eq!(
        distributed, expected,
        "distributed outcome differs from in-process baseline"
    );
}

#[test]
fn duplicate_worker_name_is_rejected() {
    let dir = scratch("dup-name");
    let port_file = dir.join("port.txt");
    let out_file = dir.join("dist.txt");

    let mut coordinator = spawn(&[
        "--coordinator",
        "--workers",
        "2",
        "--rounds",
        "2",
        "--rate",
        "10",
        "--port-file",
        port_file.to_str().unwrap(),
        "--out",
        out_file.to_str().unwrap(),
    ]);
    let addr = wait_for_file(&port_file, Duration::from_secs(20));

    let mut a = spawn(&["--worker", "--name", "w1", "--coordinator-addr", &addr]);
    let mut b = spawn(&["--worker", "--name", "w1", "--coordinator-addr", &addr]);

    // Exactly one of the two same-named workers is turned away with the
    // dedicated exit code; registration order over TCP is nondeterministic.
    let rejected_rc = loop {
        if let Some(st) = a.0.try_wait().expect("poll worker a") {
            break st.code();
        }
        if let Some(st) = b.0.try_wait().expect("poll worker b") {
            break st.code();
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(rejected_rc, Some(2), "duplicate name exits with code 2");

    // The cluster still forms once a distinct name arrives, and the run
    // completes normally.
    let _w2 = spawn(&["--worker", "--name", "w2", "--coordinator-addr", &addr]);
    let status = coordinator.0.wait().expect("wait coordinator");
    assert!(status.success(), "coordinator exited with {status:?}");
    assert_eq!(
        fs::read_to_string(&out_file).expect("outcome"),
        baseline(2, 10)
    );
}
