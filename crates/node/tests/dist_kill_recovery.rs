//! `kill -9` a worker mid-run: the coordinator must detect the failure via
//! heartbeats, recover the lost operator from its last checkpoint through
//! the standard R+SM path, journal the recovery, surface it on `/metrics`,
//! and still finish with sink results identical to a run that never failed.

mod util;

use std::fs;
use std::time::Duration;

use seep_runtime::{Journal, JournalKind};
use util::{baseline, metric_value, scratch, spawn, wait_for_file, wait_for_metric};

#[test]
fn sigkilled_worker_recovers_with_identical_results() {
    let dir = scratch("kill-recovery");
    let port_file = dir.join("port.txt");
    let metrics_port_file = dir.join("mport.txt");
    let out_file = dir.join("dist.txt");
    let journal_file = dir.join("journal.jsonl");

    let rounds = 20;
    let rate = 20;
    let mut coordinator = spawn(&[
        "--coordinator",
        "--workers",
        "2",
        "--rounds",
        &rounds.to_string(),
        "--rate",
        &rate.to_string(),
        "--round-delay-ms",
        "150",
        "--port-file",
        port_file.to_str().unwrap(),
        "--out",
        out_file.to_str().unwrap(),
        "--metrics-addr",
        "127.0.0.1:0",
        "--metrics-port-file",
        metrics_port_file.to_str().unwrap(),
        "--journal",
        journal_file.to_str().unwrap(),
        "--hold-ms",
        "2000",
    ]);
    let addr = wait_for_file(&port_file, Duration::from_secs(20));

    let _w1 = spawn(&["--worker", "--name", "w1", "--coordinator-addr", &addr]);
    let mut w2 = spawn(&["--worker", "--name", "w2", "--coordinator-addr", &addr]);

    // Let the run take at least two checkpoints of the stateful operator
    // (hosted by w2 under the round-robin placement), then SIGKILL w2.
    let metrics_addr = wait_for_file(&metrics_port_file, Duration::from_secs(20));
    wait_for_metric(
        &metrics_addr,
        "two checkpoints",
        Duration::from_secs(60),
        |body| metric_value(body, "seep_checkpoints_total").unwrap_or(0.0) >= 2.0,
    );
    w2.0.kill().expect("SIGKILL w2");

    // The failure must surface as a recovery on /metrics, with transport
    // counters still exported for the surviving worker.
    wait_for_metric(
        &metrics_addr,
        "a recovery",
        Duration::from_secs(60),
        |body| {
            metric_value(body, "seep_recoveries_total").unwrap_or(0.0) >= 1.0
                && metric_value(body, "seep_transport_bytes_total").is_some()
                && metric_value(body, "seep_journal_events_total").unwrap_or(0.0) >= 1.0
        },
    );

    let status = coordinator.0.wait().expect("wait coordinator");
    assert!(status.success(), "coordinator exited with {status:?}");

    // The recovery went through the standard journal, as a committed event.
    let events = Journal::replay_file(&journal_file).expect("replay journal");
    let recovery = events
        .iter()
        .find(|e| e.kind == JournalKind::Recovery)
        .expect("journal holds a recovery event");
    assert!(recovery.committed(), "recovery committed");
    assert_eq!(recovery.operator, "count");
    assert_eq!(recovery.released_vms.len(), 1, "one VM was lost");

    // Sink results are exactly those of a run that never lost a worker.
    // (Processed counters reset when an instance is replaced, so only the
    // `result` lines are compared.)
    let distributed: String = fs::read_to_string(&out_file)
        .expect("distributed outcome")
        .lines()
        .filter(|l| l.starts_with("result "))
        .map(|l| format!("{l}\n"))
        .collect();
    let expected: String = baseline(rounds, rate)
        .lines()
        .filter(|l| l.starts_with("result "))
        .map(|l| format!("{l}\n"))
        .collect();
    assert!(!distributed.is_empty(), "distributed run produced results");
    assert_eq!(
        distributed, expected,
        "post-recovery results differ from the never-killed baseline"
    );
}
