//! True multi-process distribution: the `seep-node` coordinator/worker
//! daemon.
//!
//! Everything below this crate simulates a cluster inside one process; this
//! crate deploys the same query over real OS processes. A **coordinator**
//! process owns the execution graph, placement, metrics, journal and the
//! checkpoint store; **worker** processes host [`seep_runtime::WorkerCore`]s,
//! stream data-plane batches peer-to-peer over [`seep_net::TcpTransport`],
//! and answer the coordinator's control commands ([`protocol::NodeMsg`]) on
//! a persistent TCP connection.
//!
//! Failure handling follows the paper's recover-with-state-management path
//! (§3.3): workers heartbeat the coordinator; a missed heartbeat (or a
//! dropped control connection) surfaces as a VM failure through
//! [`seep_cloud::RemoteVmRegistry`], and the coordinator re-runs the same
//! restore / replay-restored-buffers / rewire-upstreams sequence the
//! in-process executor uses — so a real `kill -9` recovers with identical
//! semantics to a simulated VM crash, journalled through the same
//! [`seep_runtime::Journal`].

#![warn(missing_docs)]

pub mod coordinator;
pub mod jobs;
pub mod protocol;
pub mod worker;

pub use coordinator::{run_coordinator, CoordinatorConfig};
pub use protocol::NodeMsg;
pub use worker::{run_worker, WorkerConfig};
