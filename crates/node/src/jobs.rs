//! The job catalogue workers and coordinator agree on by name.
//!
//! Operator factories cannot travel over the wire, so a distributed
//! deployment needs both sides to resolve the same operator from a job name
//! (`--job`) and a logical operator name. The catalogue currently holds one
//! job, `wordfreq`: the paper's windowed word-frequency query (Fig. 2) as
//! `feed → count → results`. [`run_baseline`] executes the identical query
//! in-process through the standard [`seep_runtime::api::Job`] API — the
//! equivalence tests and the CI smoke job diff its rendered output against a
//! distributed run's.

use std::collections::BTreeMap;

use seep_core::{
    Key, OutputTuple, ProcessingState, QueryGraph, StatefulOperator, StatelessFn, StreamId, Tuple,
};
use seep_operators::word_count::WordFrequency;
use seep_operators::WindowedWordCount;
use seep_runtime::api::Job;
use seep_runtime::RuntimeConfig;

/// Tumbling window of the word counter (ms of virtual time).
pub const WINDOW_MS: u64 = 1_000;
/// Vocabulary size of the deterministic feed.
pub const VOCAB: u64 = 64;
/// The job name both sides default to.
pub const DEFAULT_JOB: &str = "wordfreq";

/// The logical query graph of the `wordfreq` job.
pub fn query() -> seep_core::Result<QueryGraph> {
    let mut b = QueryGraph::builder();
    let feed = b.source("feed");
    let count = b.stateful("count");
    let results = b.sink("results");
    b.connect(feed, count);
    b.connect(count, results);
    b.build()
}

/// Resolve an operator instance for `name` within `job`. `None` when either
/// the job or the operator name is unknown — the worker turns that into a
/// protocol error instead of panicking.
pub fn build_operator(job: &str, name: &str) -> Option<Box<dyn StatefulOperator>> {
    if job != DEFAULT_JOB {
        return None;
    }
    match name {
        "feed" => Some(Box::new(StatelessFn::new(
            "feed",
            |_, t: &Tuple, out: &mut Vec<OutputTuple>| {
                out.push(OutputTuple::new(t.key, t.payload.clone()));
            },
        ))),
        "count" => Some(Box::new(WindowedWordCount::new(WINDOW_MS))),
        "results" => Some(Box::new(FrequencySink::default())),
        _ => None,
    }
}

/// The sink of the `wordfreq` job: accumulates every [`WordFrequency`] the
/// counter emits, keyed by `(word, window)`, as checkpointable processing
/// state — so sink results survive failures exactly like operator state, and
/// the coordinator can collect them over the control plane at the end of a
/// run.
#[derive(Default)]
pub struct FrequencySink {
    freqs: BTreeMap<Key, WordFrequency>,
}

impl FrequencySink {
    /// Composite state key for one `(word, window)` result cell.
    fn cell_key(word_key: Key, window: u64) -> Key {
        Key(word_key.0 ^ window.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The accumulated frequencies, sorted by `(window, word)`.
    pub fn results(&self) -> Vec<WordFrequency> {
        sorted_results(self.freqs.values().cloned())
    }
}

/// Sort frequencies the way every renderer in this crate expects.
fn sorted_results(freqs: impl IntoIterator<Item = WordFrequency>) -> Vec<WordFrequency> {
    let mut out: Vec<WordFrequency> = freqs.into_iter().collect();
    out.sort_by(|a, b| (a.window, &a.word).cmp(&(b.window, &b.word)));
    out
}

impl StatefulOperator for FrequencySink {
    fn process(&mut self, _stream: StreamId, tuple: &Tuple, _out: &mut Vec<OutputTuple>) {
        let Ok(freq) = tuple.decode::<WordFrequency>() else {
            return;
        };
        self.freqs
            .insert(Self::cell_key(tuple.key, freq.window), freq);
    }

    fn get_processing_state(&self) -> ProcessingState {
        let mut st = ProcessingState::empty();
        for (key, freq) in &self.freqs {
            st.insert_encoded(*key, freq).expect("frequency serialises");
        }
        st
    }

    fn set_processing_state(&mut self, state: ProcessingState) {
        self.freqs.clear();
        for (key, _) in state.iter() {
            if let Ok(Some(freq)) = state.get_decoded::<WordFrequency>(key) {
                self.freqs.insert(key, freq);
            }
        }
    }

    fn name(&self) -> &str {
        "frequency_sink"
    }
}

/// Decode a collected sink [`ProcessingState`] back into sorted results.
pub fn decode_sink_state(state: &ProcessingState) -> Vec<WordFrequency> {
    sorted_results(
        state
            .iter()
            .filter_map(|(key, _)| state.get_decoded::<WordFrequency>(key).ok().flatten()),
    )
}

/// The words injected in round `round` — a deterministic LCG stream over a
/// `vocab`-word dictionary, identical for the baseline and the distributed
/// feeder.
pub fn round_words(round: u64, rate: u64, vocab: u64) -> Vec<String> {
    const MUL: u64 = 6364136223846793005;
    const INC: u64 = 1442695040888963407;
    let vocab = vocab.max(1);
    let mut x = round.wrapping_mul(MUL).wrapping_add(INC);
    (0..rate)
        .map(|_| {
            x = x.wrapping_mul(MUL).wrapping_add(INC);
            format!("word-{:03}", (x >> 33) % vocab)
        })
        .collect()
}

/// What a `wordfreq` run produced: the sink's accumulated results plus
/// per-logical-operator processed counts.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Sink results sorted by `(window, word)`.
    pub results: Vec<WordFrequency>,
    /// `(operator name, tuples processed)` in pipeline order.
    pub processed: Vec<(String, u64)>,
}

impl RunOutcome {
    /// Render as stable text: one `result <window> <word> <count>` line per
    /// frequency, then one `processed <operator> <count>` line per operator.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.results {
            out.push_str(&format!("result {} {} {}\n", f.window, f.word, f.count));
        }
        for (name, n) in &self.processed {
            out.push_str(&format!("processed {name} {n}\n"));
        }
        out
    }

    /// Only the `result` lines of [`render`](Self::render) — what must match
    /// between a baseline and a run that went through a recovery (processed
    /// counters reset when an instance is replaced, results may not).
    pub fn render_results(&self) -> String {
        let mut out = String::new();
        for f in &self.results {
            out.push_str(&format!("result {} {} {}\n", f.window, f.word, f.count));
        }
        out
    }
}

/// Run the `wordfreq` job in-process: `rounds` rounds of `rate` words, one
/// window tick per round at `(round + 1) * 1000` ms of virtual time — the
/// exact schedule the distributed coordinator drives over TCP.
pub fn run_baseline(rounds: u64, rate: u64) -> seep_core::Result<RunOutcome> {
    let mut handle = Job::builder(RuntimeConfig::default())
        .source("feed", || {
            build_operator(DEFAULT_JOB, "feed").expect("catalogue has feed")
        })
        .then_stateful("count", || {
            build_operator(DEFAULT_JOB, "count").expect("catalogue has count")
        })
        .sink("results", || {
            build_operator(DEFAULT_JOB, "results").expect("catalogue has results")
        })
        .deploy()?;
    for round in 0..rounds {
        for word in round_words(round, rate, VOCAB) {
            handle.inject_encoded("feed", Key::from_str_key(&word), &word)?;
        }
        handle.drain();
        handle.advance_to((round + 1) * 1_000);
        handle.drain();
    }

    let sink = handle.partitions("results")[0];
    let state = handle
        .with_operator(sink, |op| op.get_processing_state())
        .ok_or_else(|| seep_core::Error::Invariant("sink worker is gone".into()))?;
    let results = decode_sink_state(&state);

    let processed = ["feed", "count", "results"]
        .into_iter()
        .map(|name| {
            let total: u64 = handle
                .partitions(name)
                .into_iter()
                .map(|p| handle.metrics().processed_by(p))
                .sum();
            (name.to_string(), total)
        })
        .collect();
    Ok(RunOutcome { results, processed })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feed_is_deterministic_across_calls() {
        assert_eq!(round_words(3, 10, VOCAB), round_words(3, 10, VOCAB));
        assert_ne!(round_words(3, 10, VOCAB), round_words(4, 10, VOCAB));
        assert!(round_words(0, 5, VOCAB)
            .iter()
            .all(|w| w.starts_with("word-")));
    }

    #[test]
    fn sink_state_roundtrips() {
        let mut sink = FrequencySink::default();
        let mut out = Vec::new();
        for (word, window) in [("alpha", 0), ("beta", 0), ("alpha", 1)] {
            let freq = WordFrequency {
                word: word.into(),
                count: 2,
                window,
            };
            let t = Tuple::encode(window + 1, Key::from_str_key(word), &freq).unwrap();
            sink.process(StreamId(0), &t, &mut out);
        }
        assert_eq!(sink.results().len(), 3);

        let mut restored = FrequencySink::default();
        restored.set_processing_state(sink.get_processing_state());
        assert_eq!(restored.results(), sink.results());
        assert_eq!(
            decode_sink_state(&sink.get_processing_state()),
            sink.results()
        );
    }

    #[test]
    fn baseline_is_deterministic_and_counts_every_word() {
        let a = run_baseline(3, 20).unwrap();
        let b = run_baseline(3, 20).unwrap();
        assert_eq!(a, b);
        let counted: u64 = a.results.iter().map(|f| f.count).sum();
        assert_eq!(counted, 60, "every injected word lands in some window");
        let processed: BTreeMap<&str, u64> =
            a.processed.iter().map(|(n, c)| (n.as_str(), *c)).collect();
        assert_eq!(processed["count"], 60);
        assert_eq!(processed["results"] as usize, a.results.len());
        assert!(a.render().contains("result 0 "));
        assert!(a.render().starts_with(&a.render_results()));
    }

    #[test]
    fn unknown_job_or_operator_resolves_to_none() {
        assert!(build_operator("wordfreq", "feed").is_some());
        assert!(build_operator("wordfreq", "nope").is_none());
        assert!(build_operator("other", "feed").is_none());
    }
}
