//! The `seep-node` daemon: one binary, three modes.
//!
//! - `seep-node --coordinator --workers N ...` runs the coordinator.
//! - `seep-node --worker --name w1 --coordinator-addr HOST:PORT ...` runs a
//!   worker that registers with the coordinator and hosts operators.
//! - `seep-node --baseline --rounds R --rate T ...` runs the identical job
//!   in-process and renders the same output, for equivalence checking.

use std::path::PathBuf;
use std::process::ExitCode;

use seep_node::coordinator::{run_coordinator, CoordinatorConfig};
use seep_node::jobs;
use seep_node::worker::{run_worker, WorkerConfig, WorkerError};

const USAGE: &str = "\
seep-node — distribute a seep query over OS processes

USAGE:
  seep-node --coordinator [--listen ADDR] --workers N [--job NAME]
            [--rounds R] [--rate T] [--round-delay-ms MS] [--out FILE]
            [--port-file FILE] [--metrics-addr ADDR]
            [--metrics-port-file FILE] [--journal FILE]
            [--heartbeat-timeout-ms MS] [--hold-ms MS]
  seep-node --worker --name NAME --coordinator-addr ADDR [--data ADDR]
            [--slots N] [--heartbeat-ms MS] [--job NAME]
  seep-node --baseline [--rounds R] [--rate T] [--out FILE]
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("seep-node: {msg}");
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

struct Args {
    argv: Vec<String>,
    cursor: usize,
}

impl Args {
    fn next_flag(&mut self) -> Option<String> {
        let arg = self.argv.get(self.cursor)?.clone();
        self.cursor += 1;
        Some(arg)
    }

    fn value(&mut self, flag: &str) -> Result<String, String> {
        let v = self
            .argv
            .get(self.cursor)
            .ok_or_else(|| format!("{flag} needs a value"))?
            .clone();
        self.cursor += 1;
        Ok(v)
    }

    fn parse<T: std::str::FromStr>(&mut self, flag: &str) -> Result<T, String> {
        self.value(flag)?
            .parse()
            .map_err(|_| format!("{flag} has an invalid value"))
    }
}

fn main() -> ExitCode {
    let mut args = Args {
        argv: std::env::args().skip(1).collect(),
        cursor: 0,
    };
    match args.next_flag().as_deref() {
        Some("--coordinator") => coordinator_main(args),
        Some("--worker") => worker_main(args),
        Some("--baseline") => baseline_main(args),
        Some("--help") | Some("-h") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => fail(&format!("unknown mode {other:?}")),
        None => fail("a mode is required"),
    }
}

fn coordinator_main(mut args: Args) -> ExitCode {
    let mut cfg = CoordinatorConfig::default();
    while let Some(flag) = args.next_flag() {
        let parsed: Result<(), String> = (|| {
            match flag.as_str() {
                "--listen" => cfg.listen = args.value(&flag)?,
                "--workers" => cfg.workers = args.parse(&flag)?,
                "--job" => cfg.job = args.value(&flag)?,
                "--rounds" => cfg.rounds = args.parse(&flag)?,
                "--rate" => cfg.rate = args.parse(&flag)?,
                "--round-delay-ms" => cfg.round_delay_ms = args.parse(&flag)?,
                "--out" => cfg.out = Some(PathBuf::from(args.value(&flag)?)),
                "--port-file" => cfg.port_file = Some(PathBuf::from(args.value(&flag)?)),
                "--metrics-addr" => cfg.metrics_addr = Some(args.value(&flag)?),
                "--metrics-port-file" => {
                    cfg.metrics_port_file = Some(PathBuf::from(args.value(&flag)?))
                }
                "--journal" => cfg.journal_path = Some(PathBuf::from(args.value(&flag)?)),
                "--heartbeat-timeout-ms" => cfg.heartbeat_timeout_ms = args.parse(&flag)?,
                "--hold-ms" => cfg.hold_ms = args.parse(&flag)?,
                other => return Err(format!("unknown coordinator flag {other:?}")),
            }
            Ok(())
        })();
        if let Err(msg) = parsed {
            return fail(&msg);
        }
    }
    match run_coordinator(cfg) {
        Ok(outcome) => {
            print!("{}", outcome.render());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("seep-node: coordinator failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn worker_main(mut args: Args) -> ExitCode {
    let mut cfg = WorkerConfig::default();
    while let Some(flag) = args.next_flag() {
        let parsed: Result<(), String> = (|| {
            match flag.as_str() {
                "--name" => cfg.name = args.value(&flag)?,
                "--coordinator-addr" => cfg.coordinator = args.value(&flag)?,
                "--data" => cfg.data_listen = args.value(&flag)?,
                "--slots" => cfg.slots = args.parse(&flag)?,
                "--heartbeat-ms" => cfg.heartbeat_ms = args.parse(&flag)?,
                "--job" => cfg.job = args.value(&flag)?,
                other => return Err(format!("unknown worker flag {other:?}")),
            }
            Ok(())
        })();
        if let Err(msg) = parsed {
            return fail(&msg);
        }
    }
    if cfg.name.is_empty() {
        return fail("--name is required for a worker");
    }
    if cfg.coordinator.is_empty() {
        return fail("--coordinator-addr is required for a worker");
    }
    match run_worker(cfg) {
        Ok(()) => ExitCode::SUCCESS,
        Err(WorkerError::Rejected(reason)) => {
            eprintln!("seep-node: registration rejected: {reason}");
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("seep-node: worker failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn baseline_main(mut args: Args) -> ExitCode {
    let mut rounds = 5u64;
    let mut rate = 20u64;
    let mut out: Option<PathBuf> = None;
    while let Some(flag) = args.next_flag() {
        let parsed: Result<(), String> = (|| {
            match flag.as_str() {
                "--rounds" => rounds = args.parse(&flag)?,
                "--rate" => rate = args.parse(&flag)?,
                "--out" => out = Some(PathBuf::from(args.value(&flag)?)),
                other => return Err(format!("unknown baseline flag {other:?}")),
            }
            Ok(())
        })();
        if let Err(msg) = parsed {
            return fail(&msg);
        }
    }
    match jobs::run_baseline(rounds, rate) {
        Ok(outcome) => {
            let rendered = outcome.render();
            if let Some(path) = out {
                if let Err(e) = std::fs::write(&path, &rendered) {
                    eprintln!("seep-node: cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
            print!("{rendered}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("seep-node: baseline failed: {e}");
            ExitCode::FAILURE
        }
    }
}
