//! The coordinator ↔ worker control protocol.
//!
//! Bincode-encoded [`NodeMsg`] values in the same length-prefixed frames
//! ([`seep_net::frame`]) the data plane uses. The protocol is strictly
//! request/response from the coordinator's point of view — every command it
//! sends is answered by exactly one reply — with one exception: workers
//! push unsolicited [`NodeMsg::Heartbeat`] messages on the same connection,
//! which the coordinator absorbs while waiting for replies.
//!
//! Data-plane tuples never travel here: workers stream batches peer-to-peer
//! over [`seep_net::TcpTransport`]. The control plane only carries commands,
//! checkpoints and state collections.

use std::io::{self, Read, Write};

use serde::{Deserialize, Serialize};

use seep_core::{RoutingState, TimestampVec};
use seep_net::{write_frame, FrameReader};

/// One operator instance a worker is asked to host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeployInstance {
    /// Physical operator instance id (raw).
    pub op: u64,
    /// Logical operator id (raw).
    pub logical: u32,
    /// Logical operator name — the worker resolves the operator factory
    /// from this name and its `--job`.
    pub name: String,
    /// Whether the instance is a sink.
    pub is_sink: bool,
    /// Routing towards each logical downstream operator.
    pub routing: Vec<RoutingEntry>,
}

/// Routing state towards one logical downstream operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingEntry {
    /// Raw id of the logical downstream operator.
    pub downstream: u32,
    /// Key-range routing towards its partitions.
    pub routing: RoutingState,
}

/// Data-plane address of a remote instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeerRoute {
    /// Raw physical operator id.
    pub op: u64,
    /// `host:port` of the data-plane listener of the hosting worker.
    pub addr: String,
}

/// One source tuple to inject.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InjectEntry {
    /// Raw tuple key.
    pub key: u64,
    /// Encoded payload.
    pub payload: Vec<u8>,
}

/// Per-instance processed count, as reported by probes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpCount {
    /// Raw physical operator id.
    pub op: u64,
    /// Tuples processed by the instance since it was deployed.
    pub count: u64,
}

/// Counters for one data-plane connection, as reported by `Stats`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnStat {
    /// Peer address.
    pub peer: String,
    /// `"out"` or `"in"`.
    pub direction: String,
    /// Envelope payload bytes.
    pub bytes: u64,
    /// Complete frames.
    pub frames: u64,
    /// Data tuples carried.
    pub tuples: u64,
    /// Re-dials after connection failures.
    pub reconnects: u64,
}

/// A control-plane message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeMsg {
    /// Worker → coordinator: register this process as a VM.
    Hello {
        /// Worker identity (`--name`).
        name: String,
        /// Operator slots offered.
        slots: u64,
        /// Data-plane listen address peers should dial.
        data_addr: String,
    },
    /// Coordinator → worker: registration accepted.
    Welcome {
        /// The VM id assigned to the worker.
        vm: u64,
    },
    /// Coordinator → worker: registration refused (duplicate name, no slots).
    Reject {
        /// Human-readable refusal reason.
        reason: String,
    },
    /// Worker → coordinator: liveness signal (unsolicited).
    Heartbeat,
    /// Host the given instances and install remote routes.
    Deploy {
        /// Instances this worker must host.
        instances: Vec<DeployInstance>,
        /// Data-plane addresses of instances hosted elsewhere.
        peers: Vec<PeerRoute>,
    },
    /// Install (additional) remote routes.
    SetPeers {
        /// Data-plane addresses of instances hosted elsewhere.
        peers: Vec<PeerRoute>,
    },
    /// Inject source tuples at a locally hosted source instance.
    InjectMany {
        /// The source instance.
        op: u64,
        /// The tuples to emit.
        entries: Vec<InjectEntry>,
    },
    /// Trigger time-based operator behaviour on every local instance.
    Tick {
        /// Virtual time in milliseconds.
        now_ms: u64,
    },
    /// Request a quiescence signature.
    Probe,
    /// Reply to [`NodeMsg::Probe`]. The coordinator declares the data plane
    /// quiescent once the concatenation of every live worker's reply is
    /// unchanged over several consecutive probe rounds.
    ProbeReply {
        /// Tuples queued on local inbound channels.
        queued: u64,
        /// Output tuples in partially filled batches.
        pending: u64,
        /// Per-instance processed totals.
        processed: Vec<OpCount>,
        /// Data tuples sent over the TCP transport so far.
        sent_tuples: u64,
        /// Data tuples received over the TCP ingress so far.
        received_tuples: u64,
    },
    /// Take a checkpoint of a local instance.
    Capture {
        /// The instance to checkpoint.
        op: u64,
        /// Checkpoint sequence number.
        sequence: u64,
    },
    /// Reply to [`NodeMsg::Capture`]: the serialised checkpoint.
    Captured {
        /// The checkpointed instance.
        op: u64,
        /// `Checkpoint::to_bytes` output.
        bytes: Vec<u8>,
    },
    /// Trim a local instance's output buffer towards a downstream instance
    /// (Algorithm 1, line 4 — after the downstream checkpoint committed).
    TrimBuffer {
        /// The upstream instance whose buffer to trim.
        op: u64,
        /// The downstream instance the buffer feeds.
        downstream: u64,
        /// Trim up to and including this timestamp.
        ts: u64,
    },
    /// Pause or resume every local instance.
    Pause {
        /// `true` to pause, `false` to resume.
        on: bool,
    },
    /// Restore a local instance from a serialised checkpoint. Resets the
    /// instance's output clock to the checkpoint's emit clock so re-emitted
    /// tuples are recognised as duplicates downstream.
    Restore {
        /// The instance to restore.
        op: u64,
        /// `Checkpoint::to_bytes` output.
        bytes: Vec<u8>,
    },
    /// A restored instance replays its restored output buffers downstream
    /// (Algorithm 3, line 7); downstream duplicate filters discard what they
    /// already processed.
    ReplayRestored {
        /// The restored instance.
        op: u64,
        /// Fresh routing towards each logical downstream operator.
        routing: Vec<RoutingEntry>,
    },
    /// Update one upstream instance after a recovery: install the new
    /// routing towards the recovered logical operator, migrate tuples
    /// buffered for the replaced instances, replay everything `reflected`
    /// does not cover (Algorithm 3, lines 9–14).
    Rewire {
        /// The local upstream instance to update.
        at: u64,
        /// Raw id of the reconfigured logical downstream operator.
        logical: u32,
        /// The replaced (failed) instances.
        olds: Vec<u64>,
        /// New routing towards the logical operator's partitions.
        routing: RoutingState,
        /// The new partitions to replay buffered tuples to.
        new_targets: Vec<u64>,
        /// Timestamps already reflected in the restored checkpoint.
        reflected: TimestampVec,
    },
    /// Reply to replay commands: how many tuples were re-sent.
    Replayed {
        /// Tuples replayed.
        tuples: u64,
    },
    /// Fetch a local instance's processing state (result collection).
    CollectState {
        /// The instance to read.
        op: u64,
    },
    /// Reply to [`NodeMsg::CollectState`].
    StateBytes {
        /// The instance read.
        op: u64,
        /// Bincode-encoded `ProcessingState`.
        bytes: Vec<u8>,
    },
    /// Request data-plane connection counters.
    Stats,
    /// Reply to [`NodeMsg::Stats`].
    StatsReply {
        /// Transport and ingress connection counters.
        conns: Vec<ConnStat>,
    },
    /// Generic success reply.
    Ack,
    /// Generic failure reply.
    Error {
        /// What went wrong.
        what: String,
    },
    /// Coordinator → worker: exit cleanly.
    Shutdown,
}

/// Encode `msg` and write it as one frame.
pub fn write_msg<W: Write>(w: &mut W, msg: &NodeMsg) -> io::Result<()> {
    let bytes = bincode::serialize(msg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    write_frame(w, &bytes)
}

/// Decode one framed message payload.
pub fn decode_msg(frame: &[u8]) -> io::Result<NodeMsg> {
    bincode::deserialize(frame)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Blocking read of the next message from a stream (registration handshake).
/// Returns `Ok(None)` on clean EOF.
pub fn read_msg_blocking<R: Read>(r: &mut R) -> io::Result<Option<NodeMsg>> {
    match seep_net::read_frame(r)? {
        Some(frame) => Ok(Some(decode_msg(&frame)?)),
        None => Ok(None),
    }
}

/// Pull every decodable message out of readable (non-blocking) stream bytes.
///
/// Reads until the socket would block (or EOF), pushing bytes through
/// `reader` and decoding complete frames. Returns the decoded messages and
/// whether the stream is still open.
pub fn drain_msgs<R: Read>(
    stream: &mut R,
    reader: &mut FrameReader,
) -> io::Result<(Vec<NodeMsg>, bool)> {
    let mut open = true;
    let mut buf = [0u8; 64 * 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => {
                open = false;
                break;
            }
            Ok(n) => reader.push(&buf[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::TimedOut => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let mut msgs = Vec::new();
    while let Some(frame) = reader.next_frame()? {
        msgs.push(decode_msg(&frame)?);
    }
    Ok((msgs, open))
}

#[cfg(test)]
mod tests {
    use super::*;
    use seep_core::{KeyRange, OperatorId};

    #[test]
    fn messages_roundtrip_through_bincode() {
        let mut routing = RoutingState::new();
        routing.set_route(KeyRange::full(), OperatorId::new(7));
        let mut reflected = TimestampVec::new();
        reflected.advance(seep_core::StreamId(0), 41);
        let msgs = vec![
            NodeMsg::Hello {
                name: "w1".into(),
                slots: 4,
                data_addr: "127.0.0.1:9000".into(),
            },
            NodeMsg::Welcome { vm: 3 },
            NodeMsg::Heartbeat,
            NodeMsg::Deploy {
                instances: vec![DeployInstance {
                    op: 1,
                    logical: 0,
                    name: "feed".into(),
                    is_sink: false,
                    routing: vec![RoutingEntry {
                        downstream: 1,
                        routing: routing.clone(),
                    }],
                }],
                peers: vec![PeerRoute {
                    op: 2,
                    addr: "127.0.0.1:9001".into(),
                }],
            },
            NodeMsg::InjectMany {
                op: 1,
                entries: vec![InjectEntry {
                    key: 9,
                    payload: vec![1, 2, 3],
                }],
            },
            NodeMsg::ProbeReply {
                queued: 1,
                pending: 0,
                processed: vec![OpCount { op: 1, count: 10 }],
                sent_tuples: 5,
                received_tuples: 5,
            },
            NodeMsg::Rewire {
                at: 0,
                logical: 1,
                olds: vec![1],
                routing,
                new_targets: vec![4],
                reflected,
            },
            NodeMsg::Error {
                what: "nope".into(),
            },
        ];
        for msg in msgs {
            let bytes = bincode::serialize(&msg).unwrap();
            let back: NodeMsg = bincode::deserialize(&bytes).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn framed_write_and_drain_roundtrip() {
        let mut wire = Vec::new();
        write_msg(&mut wire, &NodeMsg::Heartbeat).unwrap();
        write_msg(&mut wire, &NodeMsg::Tick { now_ms: 1_000 }).unwrap();
        let mut reader = FrameReader::new();
        let mut cursor = std::io::Cursor::new(wire);
        let (msgs, open) = drain_msgs(&mut cursor, &mut reader).unwrap();
        assert!(!open, "cursor EOFs after the last byte");
        assert_eq!(
            msgs,
            vec![NodeMsg::Heartbeat, NodeMsg::Tick { now_ms: 1_000 }]
        );
    }
}
