//! The coordinator: owns the graph, placement, checkpoints and recovery.
//!
//! One coordinator process accepts worker registrations until the requested
//! cluster size is reached, deploys the job's execution graph across the
//! workers' slots, and then drives rounds of the same schedule the
//! in-process baseline uses — inject, quiesce, tick virtual time, quiesce,
//! checkpoint — entirely over the control protocol. Checkpoints are shipped
//! back and stored coordinator-side, making the coordinator the checkpoint
//! store of the deployment.
//!
//! Failure handling: a worker that misses heartbeats (or whose control
//! connection drops mid-command) is marked failed in the
//! [`RemoteVmRegistry`], and every instance it hosted is recovered through
//! the paper's R+SM sequence — pause, redeploy from the last checkpoint on a
//! surviving worker, replay the restored output buffer, rewire and replay
//! upstream buffers, resume — after which the interrupted step is retried.
//! Each recovery is journalled as a [`JournalKind::Recovery`] event and
//! recorded in [`Metrics`], so a real `kill -9` shows up on `/metrics`
//! exactly like a simulated VM crash.
//!
//! Known limits of the demo driver: sources are assumed reliable (the paper
//! delegates source durability upstream), so killing the worker hosting the
//! source mid-injection can lose that round's tuples; and only stateful
//! operators are recovered.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use seep_cloud::{RemoteVmRegistry, VmId};
use seep_core::graph::OperatorInstance;
use seep_core::{
    Checkpoint, ExecutionGraph, Key, LogicalOpId, OperatorId, OperatorKind, ProcessingState,
    StreamId, TimestampVec,
};
use seep_net::FrameReader;
use seep_runtime::metrics::{CheckpointRecord, RecoveryRecord};
use seep_runtime::obs::{ObsShared, SlotBinding, TransportConn};
use seep_runtime::{
    Journal, JournalEvent, JournalKind, Metrics, ObsServer, ObsSnapshot, PlanTrigger,
    ReconfigTiming,
};

use crate::jobs::{self, RunOutcome};
use crate::protocol::{
    drain_msgs, read_msg_blocking, write_msg, DeployInstance, InjectEntry, NodeMsg, PeerRoute,
    RoutingEntry,
};

/// Configuration of the coordinator process.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Control-plane listen address (port 0 picks an ephemeral port).
    pub listen: String,
    /// Number of workers to wait for before deploying.
    pub workers: usize,
    /// Job to deploy (must exist in [`jobs`]).
    pub job: String,
    /// Rounds to drive; each round injects `rate` words and advances
    /// virtual time by one second.
    pub rounds: u64,
    /// Source tuples injected per round.
    pub rate: u64,
    /// Wall-clock pause between rounds — gives fault-injection tests a
    /// window to kill workers mid-run.
    pub round_delay_ms: u64,
    /// Where to write the rendered [`RunOutcome`].
    pub out: Option<PathBuf>,
    /// File to write the bound control address to, for test orchestration.
    pub port_file: Option<PathBuf>,
    /// Prometheus scrape endpoint address, when observability is wanted.
    pub metrics_addr: Option<String>,
    /// File to write the bound scrape address to.
    pub metrics_port_file: Option<PathBuf>,
    /// JSONL journal sink path.
    pub journal_path: Option<PathBuf>,
    /// Heartbeats older than this mark a worker failed (ms).
    pub heartbeat_timeout_ms: u64,
    /// Keep serving `/metrics` this long after the run completes (ms).
    pub hold_ms: u64,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            listen: "127.0.0.1:0".into(),
            workers: 2,
            job: jobs::DEFAULT_JOB.into(),
            rounds: 5,
            rate: 20,
            round_delay_ms: 0,
            out: None,
            port_file: None,
            metrics_addr: None,
            metrics_port_file: None,
            journal_path: None,
            heartbeat_timeout_ms: 2_000,
            hold_ms: 0,
        }
    }
}

/// Why a coordinator step failed.
#[derive(Debug)]
enum CoordError {
    /// The worker's control connection is dead or its heartbeats timed
    /// out; recovery should run and the step be retried.
    WorkerDead(VmId),
    /// A non-recoverable protocol or invariant violation.
    Protocol(String),
    /// A local I/O failure.
    Io(io::Error),
}

impl From<io::Error> for CoordError {
    fn from(e: io::Error) -> Self {
        CoordError::Io(e)
    }
}

fn to_io(e: CoordError) -> io::Error {
    match e {
        CoordError::Io(e) => e,
        CoordError::Protocol(what) => io::Error::new(io::ErrorKind::InvalidData, what),
        CoordError::WorkerDead(vm) => io::Error::new(
            io::ErrorKind::ConnectionAborted,
            format!("worker vm{} died and recovery did not converge", vm.0),
        ),
    }
}

fn invalid(e: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

struct WorkerConn {
    stream: TcpStream,
    reader: FrameReader,
}

/// What one recovered instance needs journalled after the cluster resumes.
struct Recovered {
    logical: LogicalOpId,
    name: String,
    old_id: OperatorId,
    new_id: OperatorId,
    host: VmId,
    replayed: u64,
    restore_us: u64,
    replay_us: u64,
}

struct Coordinator {
    cfg: CoordinatorConfig,
    registry: RemoteVmRegistry,
    conns: BTreeMap<VmId, WorkerConn>,
    graph: ExecutionGraph,
    placement: BTreeMap<OperatorId, VmId>,
    /// Latest checkpoint per logical operator — the deployment's store.
    /// Keyed by logical id so a replaced-then-killed instance still finds
    /// its state.
    checkpoints: BTreeMap<LogicalOpId, Checkpoint>,
    /// Last per-instance processed totals, as reported by probes.
    processed: BTreeMap<OperatorId, u64>,
    metrics: Metrics,
    journal: Journal,
    obs: Arc<ObsShared>,
    epoch: Instant,
    last_tick: u64,
}

impl Coordinator {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Live workers in VM-id order.
    fn live_vms(&self) -> Vec<VmId> {
        self.registry.live().iter().map(|w| w.vm).collect()
    }

    /// Live workers sorted by name — the deterministic placement order.
    fn live_by_name(&self) -> Vec<VmId> {
        let mut vms: Vec<(String, VmId)> = self
            .registry
            .live()
            .iter()
            .map(|w| (w.name.clone(), w.vm))
            .collect();
        vms.sort();
        vms.into_iter().map(|(_, vm)| vm).collect()
    }

    fn occupancy(&self, vm: VmId) -> usize {
        self.placement.values().filter(|v| **v == vm).count()
    }

    fn free_slots(&self, vm: VmId) -> usize {
        self.registry
            .get(vm)
            .map(|w| w.slots.saturating_sub(self.occupancy(vm)))
            .unwrap_or(0)
    }

    /// One request/response exchange with a worker, absorbing heartbeats
    /// that interleave with the reply.
    fn rpc(&mut self, vm: VmId, msg: &NodeMsg) -> Result<NodeMsg, CoordError> {
        {
            let conn = self.conns.get_mut(&vm).ok_or(CoordError::WorkerDead(vm))?;
            if write_msg(&mut conn.stream, msg).is_err() {
                return Err(CoordError::WorkerDead(vm));
            }
        }
        let deadline = Instant::now() + Duration::from_secs(15);
        loop {
            let now = self.now_ms();
            let conn = self.conns.get_mut(&vm).ok_or(CoordError::WorkerDead(vm))?;
            let (msgs, open) = match drain_msgs(&mut conn.stream, &mut conn.reader) {
                Ok(r) => r,
                Err(_) => return Err(CoordError::WorkerDead(vm)),
            };
            let mut reply = None;
            let mut heartbeat = false;
            for m in msgs {
                if matches!(m, NodeMsg::Heartbeat) {
                    heartbeat = true;
                } else if reply.is_none() {
                    reply = Some(m);
                }
            }
            if heartbeat {
                self.registry.heartbeat(vm, now);
            }
            match reply {
                Some(NodeMsg::Error { what }) => {
                    return Err(CoordError::Protocol(format!("worker vm{}: {what}", vm.0)))
                }
                Some(r) => return Ok(r),
                None => {}
            }
            if !open || Instant::now() > deadline {
                return Err(CoordError::WorkerDead(vm));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    fn rpc_ack(&mut self, vm: VmId, msg: &NodeMsg) -> Result<(), CoordError> {
        match self.rpc(vm, msg)? {
            NodeMsg::Ack => Ok(()),
            other => Err(CoordError::Protocol(format!(
                "expected Ack from vm{}, got {other:?}",
                vm.0
            ))),
        }
    }

    /// Drain heartbeats (and notice closed connections or timeouts) for
    /// `ms` wall-clock milliseconds without issuing commands.
    fn pump(&mut self, ms: u64) -> Result<(), CoordError> {
        let until = Instant::now() + Duration::from_millis(ms);
        loop {
            let now = self.now_ms();
            let mut dead = None;
            for vm in self.live_vms() {
                let Some(conn) = self.conns.get_mut(&vm) else {
                    dead = Some(vm);
                    continue;
                };
                match drain_msgs(&mut conn.stream, &mut conn.reader) {
                    Ok((msgs, open)) => {
                        if msgs.iter().any(|m| matches!(m, NodeMsg::Heartbeat)) {
                            self.registry.heartbeat(vm, now);
                        }
                        if !open {
                            dead = Some(vm);
                        }
                    }
                    Err(_) => dead = Some(vm),
                }
            }
            if let Some(vm) = dead {
                return Err(CoordError::WorkerDead(vm));
            }
            if let Some(&vm) = self
                .registry
                .timed_out(self.now_ms(), self.cfg.heartbeat_timeout_ms)
                .first()
            {
                return Err(CoordError::WorkerDead(vm));
            }
            if Instant::now() >= until {
                return Ok(());
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Run `step`, recovering failed workers and retrying until it
    /// succeeds. Bounded: a cluster that keeps losing workers errors out.
    fn with_retry<T>(
        &mut self,
        mut step: impl FnMut(&mut Self) -> Result<T, CoordError>,
    ) -> io::Result<T> {
        let mut attempts = 0;
        loop {
            attempts += 1;
            if attempts > 8 {
                return Err(io::Error::other("too many worker failures; giving up"));
            }
            match step(self) {
                Ok(v) => return Ok(v),
                Err(CoordError::WorkerDead(vm)) => {
                    let mut dead = vm;
                    loop {
                        match self.recover(dead) {
                            Ok(()) => break,
                            Err(CoordError::WorkerDead(next)) => {
                                attempts += 1;
                                if attempts > 8 {
                                    return Err(io::Error::other(
                                        "too many worker failures; giving up",
                                    ));
                                }
                                dead = next;
                            }
                            Err(e) => return Err(to_io(e)),
                        }
                    }
                }
                Err(e) => return Err(to_io(e)),
            }
        }
    }

    fn routing_entries(&self, logical: LogicalOpId) -> Result<Vec<RoutingEntry>, CoordError> {
        self.graph
            .query()
            .downstream(logical)
            .into_iter()
            .map(|d| {
                Ok(RoutingEntry {
                    downstream: d.0,
                    routing: self
                        .graph
                        .routing(d)
                        .map_err(|e| CoordError::Protocol(e.to_string()))?
                        .clone(),
                })
            })
            .collect()
    }

    fn deploy_msg(&self, inst: &OperatorInstance) -> Result<DeployInstance, CoordError> {
        let meta = self
            .graph
            .query()
            .operator(inst.logical)
            .map_err(|e| CoordError::Protocol(e.to_string()))?;
        Ok(DeployInstance {
            op: inst.id.raw(),
            logical: inst.logical.0,
            name: meta.name.clone(),
            is_sink: meta.kind == OperatorKind::Sink,
            routing: self.routing_entries(inst.logical)?,
        })
    }

    /// Remote routes a worker needs: every instance hosted elsewhere.
    fn peers_for(&self, vm: VmId) -> Vec<PeerRoute> {
        self.placement
            .iter()
            .filter(|(_, host)| **host != vm)
            .filter_map(|(op, host)| {
                self.registry.get(*host).map(|w| PeerRoute {
                    op: op.raw(),
                    addr: w.data_addr.clone(),
                })
            })
            .collect()
    }

    fn host_of(&self, op: OperatorId) -> Result<VmId, CoordError> {
        self.placement
            .get(&op)
            .copied()
            .ok_or_else(|| CoordError::Protocol(format!("instance {op:?} is unplaced")))
    }

    /// Initial placement: round-robin over name-sorted workers, skipping
    /// full ones.
    fn place_all(&mut self) -> Result<(), CoordError> {
        let vms = self.live_by_name();
        let instances: Vec<OperatorId> = self.graph.instances().map(|i| i.id).collect();
        let mut next = 0usize;
        for op in instances {
            let mut placed = false;
            for k in 0..vms.len() {
                let vm = vms[(next + k) % vms.len()];
                if self.free_slots(vm) > 0 {
                    self.placement.insert(op, vm);
                    next += k + 1;
                    placed = true;
                    break;
                }
            }
            if !placed {
                return Err(CoordError::Protocol(format!(
                    "no free slot for instance {op:?}"
                )));
            }
        }
        Ok(())
    }

    fn deploy_all(&mut self) -> Result<(), CoordError> {
        for vm in self.live_vms() {
            let mine: Vec<OperatorInstance> = self
                .graph
                .instances()
                .filter(|i| self.placement.get(&i.id) == Some(&vm))
                .cloned()
                .collect();
            let instances: Vec<DeployInstance> = mine
                .iter()
                .map(|i| self.deploy_msg(i))
                .collect::<Result<_, _>>()?;
            let peers = self.peers_for(vm);
            self.rpc_ack(vm, &NodeMsg::Deploy { instances, peers })?;
        }
        Ok(())
    }

    /// Probe every live worker until the whole data plane reports the same
    /// fully-drained signature over three consecutive rounds.
    fn quiesce(&mut self) -> Result<(), CoordError> {
        let mut last_sig: Option<Vec<u64>> = None;
        let mut stable = 0;
        loop {
            if let Some(&vm) = self
                .registry
                .timed_out(self.now_ms(), self.cfg.heartbeat_timeout_ms)
                .first()
            {
                return Err(CoordError::WorkerDead(vm));
            }
            let mut sig = Vec::new();
            let mut in_flight = 0u64;
            for vm in self.live_vms() {
                match self.rpc(vm, &NodeMsg::Probe)? {
                    NodeMsg::ProbeReply {
                        queued,
                        pending,
                        processed,
                        sent_tuples,
                        received_tuples,
                    } => {
                        in_flight += queued + pending;
                        sig.extend([queued, pending, sent_tuples, received_tuples]);
                        for c in processed {
                            let op = OperatorId::new(c.op);
                            let prev = self.processed.get(&op).copied().unwrap_or(0);
                            if c.count > prev {
                                self.metrics.record_processed(op, c.count - prev);
                            }
                            self.processed.insert(op, c.count);
                            sig.extend([c.op, c.count]);
                        }
                    }
                    other => {
                        return Err(CoordError::Protocol(format!(
                            "expected ProbeReply, got {other:?}"
                        )))
                    }
                }
            }
            if in_flight == 0 && last_sig.as_ref() == Some(&sig) {
                stable += 1;
                if stable >= 3 {
                    return Ok(());
                }
            } else {
                stable = 0;
                last_sig = Some(sig);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    fn tick_all(&mut self, now_ms: u64) -> Result<(), CoordError> {
        for vm in self.live_vms() {
            self.rpc_ack(vm, &NodeMsg::Tick { now_ms })?;
        }
        Ok(())
    }

    /// Checkpoint every stateful and sink instance, store the checkpoint
    /// coordinator-side, and trim upstream output buffers to the reflected
    /// timestamps (the paper's checkpoint-then-trim protocol).
    fn capture_round(&mut self, round: u64) -> Result<(), CoordError> {
        let at_ms = (round + 1) * 1_000;
        let targets: Vec<OperatorInstance> = self
            .graph
            .instances()
            .filter(|i| {
                self.graph
                    .query()
                    .operator(i.logical)
                    .map(|o| matches!(o.kind, OperatorKind::Stateful | OperatorKind::Sink))
                    .unwrap_or(false)
            })
            .cloned()
            .collect();
        for inst in targets {
            let host = self.host_of(inst.id)?;
            let started = Instant::now();
            let bytes = match self.rpc(
                host,
                &NodeMsg::Capture {
                    op: inst.id.raw(),
                    sequence: round + 1,
                },
            )? {
                NodeMsg::Captured { bytes, .. } => bytes,
                other => {
                    return Err(CoordError::Protocol(format!(
                        "expected Captured, got {other:?}"
                    )))
                }
            };
            let cp = Checkpoint::from_bytes(&bytes)
                .map_err(|e| CoordError::Protocol(format!("undecodable checkpoint: {e}")))?;
            self.metrics.record_checkpoint(CheckpointRecord {
                operator: inst.id,
                at_ms,
                duration_us: started.elapsed().as_micros() as u64,
                size_bytes: cp.size_bytes(),
                stored_bytes: bytes.len(),
                incremental: false,
            });
            let reflected = cp.timestamps().clone();
            self.checkpoints.insert(inst.logical, cp);
            for up_logical in self.graph.query().upstream(inst.logical) {
                let Some(ts) = reflected.get(StreamId(up_logical.0)) else {
                    continue;
                };
                for up in self.graph.partitions(up_logical).to_vec() {
                    let up_host = self.host_of(up)?;
                    self.rpc_ack(
                        up_host,
                        &NodeMsg::TrimBuffer {
                            op: up.raw(),
                            downstream: inst.id.raw(),
                            ts,
                        },
                    )?;
                }
            }
        }
        Ok(())
    }

    /// Recover every instance stranded on a dead VM: the executor's R+SM
    /// sequence, driven over the control protocol.
    fn recover(&mut self, dead: VmId) -> Result<(), CoordError> {
        let t0 = Instant::now();
        self.registry.mark_failed(dead);
        self.conns.remove(&dead);

        let alive: BTreeSet<VmId> = self.live_vms().into_iter().collect();
        let failed: Vec<(OperatorId, LogicalOpId)> = self
            .graph
            .instances()
            .filter(|i| match self.placement.get(&i.id) {
                Some(vm) => !alive.contains(vm),
                None => false,
            })
            .map(|i| (i.id, i.logical))
            .collect();
        if failed.is_empty() {
            return Ok(());
        }

        for vm in self.live_vms() {
            self.rpc_ack(vm, &NodeMsg::Pause { on: true })?;
        }

        let mut recovered = Vec::new();
        for (old_id, logical) in failed {
            let meta = self
                .graph
                .query()
                .operator(logical)
                .map_err(|e| CoordError::Protocol(e.to_string()))?;
            if meta.kind != OperatorKind::Stateful {
                return Err(CoordError::Protocol(format!(
                    "cannot recover non-stateful operator {:?} lost with vm{}",
                    meta.name, dead.0
                )));
            }
            let name = meta.name.clone();
            let restore_started = Instant::now();
            let new_inst = self
                .graph
                .scale_out_instance(old_id, 1)
                .map_err(|e| CoordError::Protocol(e.to_string()))?
                .remove(0);
            self.placement.remove(&old_id);
            let host = self
                .live_by_name()
                .into_iter()
                .find(|vm| self.free_slots(*vm) > 0)
                .ok_or_else(|| {
                    CoordError::Protocol("no live worker with a free slot".to_string())
                })?;
            self.placement.insert(new_inst.id, host);

            let deploy = self.deploy_msg(&new_inst)?;
            let peers = self.peers_for(host);
            self.rpc_ack(
                host,
                &NodeMsg::Deploy {
                    instances: vec![deploy],
                    peers,
                },
            )?;
            let host_addr = self
                .registry
                .get(host)
                .map(|w| w.data_addr.clone())
                .unwrap_or_default();
            for vm in self.live_vms() {
                if vm != host {
                    self.rpc_ack(
                        vm,
                        &NodeMsg::SetPeers {
                            peers: vec![PeerRoute {
                                op: new_inst.id.raw(),
                                addr: host_addr.clone(),
                            }],
                        },
                    )?;
                }
            }

            let mut reflected = TimestampVec::new();
            if let Some(cp) = self.checkpoints.get(&logical) {
                reflected = cp.timestamps().clone();
                let bytes = cp
                    .to_bytes()
                    .map_err(|e| CoordError::Protocol(e.to_string()))?;
                self.rpc_ack(
                    host,
                    &NodeMsg::Restore {
                        op: new_inst.id.raw(),
                        bytes,
                    },
                )?;
            }
            let restore_us = restore_started.elapsed().as_micros() as u64;

            let replay_started = Instant::now();
            let routing_entries = self.routing_entries(logical)?;
            let mut replayed = match self.rpc(
                host,
                &NodeMsg::ReplayRestored {
                    op: new_inst.id.raw(),
                    routing: routing_entries,
                },
            )? {
                NodeMsg::Replayed { tuples } => tuples,
                other => {
                    return Err(CoordError::Protocol(format!(
                        "expected Replayed, got {other:?}"
                    )))
                }
            };

            let routing = self
                .graph
                .routing(logical)
                .map_err(|e| CoordError::Protocol(e.to_string()))?
                .clone();
            for up_logical in self.graph.query().upstream(logical) {
                for up in self.graph.partitions(up_logical).to_vec() {
                    let up_host = self.host_of(up)?;
                    replayed += match self.rpc(
                        up_host,
                        &NodeMsg::Rewire {
                            at: up.raw(),
                            logical: logical.0,
                            olds: vec![old_id.raw()],
                            routing: routing.clone(),
                            new_targets: vec![new_inst.id.raw()],
                            reflected: reflected.clone(),
                        },
                    )? {
                        NodeMsg::Replayed { tuples } => tuples,
                        other => {
                            return Err(CoordError::Protocol(format!(
                                "expected Replayed, got {other:?}"
                            )))
                        }
                    };
                }
            }
            let replay_us = replay_started.elapsed().as_micros() as u64;
            recovered.push(Recovered {
                logical,
                name,
                old_id,
                new_id: new_inst.id,
                host,
                replayed,
                restore_us,
                replay_us,
            });
        }

        for vm in self.live_vms() {
            self.rpc_ack(vm, &NodeMsg::Pause { on: false })?;
        }
        self.quiesce()?;
        if self.last_tick > 0 {
            self.tick_all(self.last_tick)?;
            self.quiesce()?;
        }

        let total_us = t0.elapsed().as_micros() as u64;
        let at_ms = self.now_ms();
        for r in recovered {
            let timing = ReconfigTiming {
                restore_us: r.restore_us,
                replay_us: r.replay_us,
                total_us,
                ..Default::default()
            };
            self.journal.append(JournalEvent {
                seq: 0,
                at_ms,
                kind: JournalKind::Recovery,
                trigger: PlanTrigger::Manual,
                logical: r.logical.0,
                operator: r.name,
                new_parallelism: 1,
                replayed_tuples: r.replayed as usize,
                timing,
                vacated: vec![SlotBinding {
                    operator: r.old_id.raw(),
                    vm: Some(dead.0),
                }],
                placed: vec![SlotBinding {
                    operator: r.new_id.raw(),
                    vm: Some(r.host.0),
                }],
                released_vms: vec![dead.0],
                acquired_vms: vec![],
                outcome: "ok".into(),
            });
            self.metrics.record_recovery(RecoveryRecord {
                operator: r.new_id,
                parallelism: 1,
                duration_ms: t0.elapsed().as_secs_f64() * 1_000.0,
                replayed_tuples: r.replayed as usize,
                strategy: "R+SM".into(),
                timing,
            });
        }
        // Best effort: surface the recovery on /metrics immediately.
        let _ = self.refresh_obs();
        Ok(())
    }

    /// Publish a fresh snapshot to the scrape endpoint: coordinator
    /// metrics plus every worker's transport counters and heartbeat lags.
    fn refresh_obs(&mut self) -> Result<(), CoordError> {
        let mut transport = Vec::new();
        for vm in self.live_vms() {
            let name = self
                .registry
                .get(vm)
                .map(|w| w.name.clone())
                .unwrap_or_default();
            match self.rpc(vm, &NodeMsg::Stats)? {
                NodeMsg::StatsReply { conns } => {
                    for c in conns {
                        transport.push(TransportConn {
                            peer: format!("{name}/{}", c.peer),
                            direction: c.direction,
                            bytes: c.bytes,
                            frames: c.frames,
                            tuples: c.tuples,
                            reconnects: c.reconnects,
                        });
                    }
                }
                other => {
                    return Err(CoordError::Protocol(format!(
                        "expected StatsReply, got {other:?}"
                    )))
                }
            }
        }
        let now = self.now_ms();
        let occupancy = self
            .live_vms()
            .into_iter()
            .map(|vm| (vm.0, self.occupancy(vm)))
            .filter(|(_, n)| *n > 0)
            .collect();
        let slots_per_vm = self
            .registry
            .live()
            .iter()
            .map(|w| w.slots)
            .max()
            .unwrap_or(1);
        self.obs.update(ObsSnapshot {
            now_ms: now,
            metrics: self.metrics.snapshot(),
            latency: self.metrics.latency_histogram(),
            occupancy,
            slots_per_vm,
            vms_running: self.registry.live_count(),
            journal_events: self.journal.total(),
            transport,
            heartbeat_lag: self.registry.heartbeat_lags(now),
            ..Default::default()
        });
        Ok(())
    }

    fn logical_by_name(&self, name: &str) -> Result<LogicalOpId, CoordError> {
        self.graph
            .query()
            .operators()
            .find(|o| o.name == name)
            .map(|o| o.id)
            .ok_or_else(|| CoordError::Protocol(format!("job has no operator {name:?}")))
    }

    /// Collect the sink state and assemble the run's outcome.
    fn collect_outcome(&mut self) -> Result<RunOutcome, CoordError> {
        let sink = self.logical_by_name("results")?;
        let sink_inst = self.graph.partitions(sink)[0];
        let host = self.host_of(sink_inst)?;
        let bytes = match self.rpc(
            host,
            &NodeMsg::CollectState {
                op: sink_inst.raw(),
            },
        )? {
            NodeMsg::StateBytes { bytes, .. } => bytes,
            other => {
                return Err(CoordError::Protocol(format!(
                    "expected StateBytes, got {other:?}"
                )))
            }
        };
        let state: ProcessingState = bincode::deserialize(&bytes)
            .map_err(|e| CoordError::Protocol(format!("undecodable sink state: {e}")))?;
        let results = jobs::decode_sink_state(&state);
        let processed = ["feed", "count", "results"]
            .into_iter()
            .map(|name| {
                let total = self
                    .logical_by_name(name)
                    .map(|lid| {
                        self.graph
                            .partitions(lid)
                            .iter()
                            .map(|op| self.processed.get(op).copied().unwrap_or(0))
                            .sum()
                    })
                    .unwrap_or(0);
                (name.to_string(), total)
            })
            .collect();
        Ok(RunOutcome { results, processed })
    }

    fn run(&mut self) -> io::Result<RunOutcome> {
        self.with_retry(|c| {
            c.place_all()?;
            c.deploy_all()
        })?;
        self.with_retry(|c| c.refresh_obs())?;

        let feed = self.logical_by_name("feed").map_err(to_io)?;
        for round in 0..self.cfg.rounds {
            let words = jobs::round_words(round, self.cfg.rate, jobs::VOCAB);
            let entries: Vec<InjectEntry> = words
                .iter()
                .map(|w| {
                    Ok(InjectEntry {
                        key: Key::from_str_key(w).0,
                        payload: bincode::serialize(w).map_err(invalid)?,
                    })
                })
                .collect::<io::Result<_>>()?;
            self.with_retry(|c| {
                let source = c.graph.partitions(feed)[0];
                let host = c.host_of(source)?;
                c.rpc_ack(
                    host,
                    &NodeMsg::InjectMany {
                        op: source.raw(),
                        entries: entries.clone(),
                    },
                )
            })?;
            self.with_retry(|c| c.quiesce())?;
            let now_ms = (round + 1) * 1_000;
            self.with_retry(|c| c.tick_all(now_ms))?;
            self.last_tick = now_ms;
            self.with_retry(|c| c.quiesce())?;
            self.with_retry(|c| c.capture_round(round))?;
            self.with_retry(|c| c.refresh_obs())?;
            if self.cfg.round_delay_ms > 0 {
                let delay = self.cfg.round_delay_ms;
                self.with_retry(|c| c.pump(delay))?;
            }
        }

        let outcome = self.with_retry(|c| c.collect_outcome())?;
        if let Some(path) = self.cfg.out.clone() {
            fs::write(path, outcome.render())?;
        }
        self.with_retry(|c| c.refresh_obs())?;
        if self.cfg.hold_ms > 0 {
            let hold = self.cfg.hold_ms;
            self.with_retry(|c| c.pump(hold))?;
        }
        for vm in self.live_vms() {
            if let Some(conn) = self.conns.get_mut(&vm) {
                let _ = write_msg(&mut conn.stream, &NodeMsg::Shutdown);
            }
        }
        Ok(outcome)
    }
}

/// Run a coordinator process to completion: accept registrations until the
/// cluster is full, deploy the job, drive the configured rounds (recovering
/// from worker failures), and return the collected outcome.
pub fn run_coordinator(cfg: CoordinatorConfig) -> io::Result<RunOutcome> {
    let listener = TcpListener::bind(&cfg.listen)?;
    let bound = listener.local_addr()?;
    if let Some(pf) = &cfg.port_file {
        fs::write(pf, bound.to_string())?;
    }

    let obs = Arc::new(ObsShared::default());
    let _obs_server = match &cfg.metrics_addr {
        Some(addr) => {
            let server = ObsServer::start(addr, obs.clone())?;
            if let Some(pf) = &cfg.metrics_port_file {
                fs::write(pf, server.addr().to_string())?;
            }
            Some(server)
        }
        None => None,
    };

    let journal = Journal::default();
    if let Some(path) = &cfg.journal_path {
        journal.attach_sink(path)?;
    }

    let epoch = Instant::now();
    let mut registry = RemoteVmRegistry::new();
    let mut conns = BTreeMap::new();
    while registry.live_count() < cfg.workers {
        let (mut stream, _) = listener.accept()?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        let now_ms = epoch.elapsed().as_millis() as u64;
        match read_msg_blocking(&mut stream)? {
            Some(NodeMsg::Hello {
                name,
                slots,
                data_addr,
            }) => match registry.register(&name, &data_addr, slots as usize, now_ms) {
                Ok(vm) => {
                    write_msg(&mut stream, &NodeMsg::Welcome { vm: vm.0 })?;
                    stream.set_read_timeout(Some(Duration::from_millis(10)))?;
                    conns.insert(
                        vm,
                        WorkerConn {
                            stream,
                            reader: FrameReader::new(),
                        },
                    );
                }
                Err(e) => {
                    let _ = write_msg(
                        &mut stream,
                        &NodeMsg::Reject {
                            reason: e.to_string(),
                        },
                    );
                }
            },
            _ => continue,
        }
    }

    let graph = ExecutionGraph::deploy(jobs::query().map_err(invalid)?).map_err(invalid)?;

    let mut coordinator = Coordinator {
        cfg,
        registry,
        conns,
        graph,
        placement: BTreeMap::new(),
        checkpoints: BTreeMap::new(),
        processed: BTreeMap::new(),
        metrics: Metrics::new(),
        journal,
        obs,
        epoch,
        last_tick: 0,
    };
    coordinator.run()
}
