//! The worker daemon: hosts operator instances in one OS process.
//!
//! A worker dials the coordinator, registers its identity and slot capacity
//! with a [`NodeMsg::Hello`], and then runs a single-threaded event loop:
//! drain control commands, poll the data-plane ingress, step every hosted
//! [`WorkerCore`], heartbeat. Tuples for remote instances leave through the
//! [`TcpTransport`] installed on the local [`Network`]; tuples arriving on
//! the [`TcpIngress`] are delivered onto the same network, so a hosted core
//! cannot tell whether its upstream is local or three processes away.
//!
//! The worker is deliberately dumb: it owns no graph, no placement and no
//! recovery logic. Every state transition — deploy, pause, restore, replay,
//! rewire — is a coordinator command, which is what lets the coordinator
//! re-run the in-process executor's recovery sequence verbatim over TCP.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use seep_core::{Checkpoint, Key, LogicalOpId, OperatorId, RoutingState, TimestampVec};
use seep_net::{FrameReader, Network, TcpIngress, TcpTransport, Transport};
use seep_runtime::worker::SharedClock;
use seep_runtime::{Metrics, WorkerCore};

use crate::jobs;
use crate::protocol::{
    drain_msgs, read_msg_blocking, write_msg, ConnStat, NodeMsg, OpCount, PeerRoute, RoutingEntry,
};

/// Configuration of one worker process.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Worker identity; duplicate live names are rejected by the coordinator.
    pub name: String,
    /// Coordinator control address to dial.
    pub coordinator: String,
    /// Data-plane listen address (port 0 picks an ephemeral port).
    pub data_listen: String,
    /// Operator slots offered.
    pub slots: usize,
    /// Heartbeat interval in milliseconds.
    pub heartbeat_ms: u64,
    /// Job name used to resolve operator factories.
    pub job: String,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            name: "worker".into(),
            coordinator: "127.0.0.1:7000".into(),
            data_listen: "127.0.0.1:0".into(),
            slots: 4,
            heartbeat_ms: 200,
            job: jobs::DEFAULT_JOB.into(),
        }
    }
}

/// Why a worker terminated abnormally.
#[derive(Debug)]
pub enum WorkerError {
    /// The coordinator refused the registration (duplicate name, no slots).
    Rejected(String),
    /// A socket or protocol failure.
    Io(io::Error),
}

impl From<io::Error> for WorkerError {
    fn from(e: io::Error) -> Self {
        WorkerError::Io(e)
    }
}

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerError::Rejected(reason) => write!(f, "registration rejected: {reason}"),
            WorkerError::Io(e) => write!(f, "{e}"),
        }
    }
}

/// Everything a worker process owns.
struct NodeState {
    job: String,
    network: Network,
    transport: std::sync::Arc<TcpTransport>,
    ingress: TcpIngress,
    cores: BTreeMap<u64, WorkerCore>,
    clocks: BTreeMap<u32, SharedClock>,
    metrics: Metrics,
    epoch: Instant,
    paused: bool,
}

impl NodeState {
    fn missing(op: u64) -> NodeMsg {
        NodeMsg::Error {
            what: format!("no instance {op} on this worker"),
        }
    }

    fn install_peers(&self, peers: &[PeerRoute]) {
        for peer in peers {
            self.network
                .set_remote_route(OperatorId::new(peer.op), peer.addr.clone());
        }
    }

    fn routing_map(entries: &[RoutingEntry]) -> BTreeMap<LogicalOpId, RoutingState> {
        entries
            .iter()
            .map(|e| (LogicalOpId(e.downstream), e.routing.clone()))
            .collect()
    }

    /// Handle one control command; `Ok` carries the reply, `Err(())` is the
    /// shutdown signal.
    fn handle(&mut self, msg: NodeMsg) -> Result<Option<NodeMsg>, ()> {
        let reply = match msg {
            NodeMsg::Deploy { instances, peers } => {
                self.install_peers(&peers);
                for inst in instances {
                    let Some(operator) = jobs::build_operator(&self.job, &inst.name) else {
                        return Ok(Some(NodeMsg::Error {
                            what: format!("job {:?} has no operator {:?}", self.job, inst.name),
                        }));
                    };
                    let receiver = self.network.register(OperatorId::new(inst.op));
                    let clock = self.clocks.entry(inst.logical).or_default().clone();
                    let mut core = WorkerCore::new(
                        OperatorId::new(inst.op),
                        LogicalOpId(inst.logical),
                        operator,
                        receiver,
                        Self::routing_map(&inst.routing),
                        clock,
                        inst.is_sink,
                        true,
                    );
                    core.set_paused(self.paused);
                    self.cores.insert(inst.op, core);
                }
                Some(NodeMsg::Ack)
            }
            NodeMsg::SetPeers { peers } => {
                self.install_peers(&peers);
                Some(NodeMsg::Ack)
            }
            NodeMsg::InjectMany { op, entries } => {
                let (network, metrics, epoch) = (&self.network, &self.metrics, self.epoch);
                match self.cores.get_mut(&op) {
                    None => Some(Self::missing(op)),
                    Some(core) => {
                        for entry in entries {
                            core.emit_source(
                                Key(entry.key),
                                entry.payload,
                                network,
                                metrics,
                                epoch,
                            );
                        }
                        Some(NodeMsg::Ack)
                    }
                }
            }
            NodeMsg::Tick { now_ms } => {
                let (network, metrics, epoch) = (&self.network, &self.metrics, self.epoch);
                for core in self.cores.values_mut() {
                    core.tick(now_ms, network, metrics, epoch);
                }
                Some(NodeMsg::Ack)
            }
            NodeMsg::Probe => {
                let queued: u64 = self.cores.values().map(|c| c.queued() as u64).sum();
                let pending: u64 = self.cores.values().map(|c| c.pending_tuples() as u64).sum();
                let processed = self
                    .cores
                    .iter()
                    .map(|(op, c)| OpCount {
                        op: *op,
                        count: c.processed(),
                    })
                    .collect();
                let sent_tuples = self.transport.connections().iter().map(|c| c.tuples).sum();
                let received_tuples = self.ingress.connections().iter().map(|c| c.tuples).sum();
                Some(NodeMsg::ProbeReply {
                    queued,
                    pending,
                    processed,
                    sent_tuples,
                    received_tuples,
                })
            }
            NodeMsg::Capture { op, sequence } => match self.cores.get(&op) {
                None => Some(Self::missing(op)),
                Some(core) => match core.take_checkpoint(sequence).to_bytes() {
                    Ok(bytes) => Some(NodeMsg::Captured { op, bytes }),
                    Err(e) => Some(NodeMsg::Error {
                        what: format!("checkpoint failed: {e}"),
                    }),
                },
            },
            NodeMsg::TrimBuffer { op, downstream, ts } => match self.cores.get_mut(&op) {
                None => Some(Self::missing(op)),
                Some(core) => {
                    core.buffer_mut().trim(OperatorId::new(downstream), ts);
                    Some(NodeMsg::Ack)
                }
            },
            NodeMsg::Pause { on } => {
                self.paused = on;
                let (network, metrics) = (&self.network, &self.metrics);
                for core in self.cores.values_mut() {
                    if on {
                        core.flush_pending(network, metrics);
                    }
                    core.set_paused(on);
                }
                Some(NodeMsg::Ack)
            }
            NodeMsg::Restore { op, bytes } => match self.cores.get_mut(&op) {
                None => Some(Self::missing(op)),
                Some(core) => match Checkpoint::from_bytes(&bytes) {
                    Ok(cp) => {
                        // Re-emitted tuples must carry the timestamps of the
                        // originals so downstream duplicate filters drop them.
                        core.clock().reset_to(cp.emit_clock);
                        core.restore(cp);
                        Some(NodeMsg::Ack)
                    }
                    Err(e) => Some(NodeMsg::Error {
                        what: format!("bad checkpoint: {e}"),
                    }),
                },
            },
            NodeMsg::ReplayRestored { op, routing } => {
                let (network, metrics) = (&self.network, &self.metrics);
                match self.cores.get_mut(&op) {
                    None => Some(Self::missing(op)),
                    Some(core) => {
                        for entry in &routing {
                            core.set_routing(LogicalOpId(entry.downstream), entry.routing.clone());
                        }
                        let mut tuples = 0u64;
                        for target in core.buffer().downstreams() {
                            tuples += core.replay_to(target, &TimestampVec::new(), network, metrics)
                                as u64;
                        }
                        Some(NodeMsg::Replayed { tuples })
                    }
                }
            }
            NodeMsg::Rewire {
                at,
                logical,
                olds,
                routing,
                new_targets,
                reflected,
            } => {
                let (network, metrics) = (&self.network, &self.metrics);
                match self.cores.get_mut(&at) {
                    None => Some(Self::missing(at)),
                    Some(core) => {
                        core.set_routing(LogicalOpId(logical), routing.clone());
                        for old in olds {
                            let old = OperatorId::new(old);
                            if let Some(buffered) = core.buffer_mut().remove_downstream(old) {
                                for tuple in buffered {
                                    if let Some(target) = routing.route(tuple.key) {
                                        core.buffer_mut().push(target, tuple);
                                    }
                                }
                            }
                        }
                        let mut tuples = 0u64;
                        for target in &new_targets {
                            tuples += core.replay_to(
                                OperatorId::new(*target),
                                &reflected,
                                network,
                                metrics,
                            ) as u64;
                        }
                        Some(NodeMsg::Replayed { tuples })
                    }
                }
            }
            NodeMsg::CollectState { op } => match self.cores.get(&op) {
                None => Some(Self::missing(op)),
                Some(core) => {
                    let state = core.operator().get_processing_state();
                    match bincode::serialize(&state) {
                        Ok(bytes) => Some(NodeMsg::StateBytes { op, bytes }),
                        Err(e) => Some(NodeMsg::Error {
                            what: format!("state serialisation failed: {e}"),
                        }),
                    }
                }
            },
            NodeMsg::Stats => {
                let conns = self
                    .transport
                    .connections()
                    .into_iter()
                    .chain(self.ingress.connections())
                    .map(|c| ConnStat {
                        peer: c.peer,
                        direction: c.direction.to_string(),
                        bytes: c.bytes,
                        frames: c.frames,
                        tuples: c.tuples,
                        reconnects: c.reconnects,
                    })
                    .collect();
                Some(NodeMsg::StatsReply { conns })
            }
            NodeMsg::Shutdown => return Err(()),
            other => Some(NodeMsg::Error {
                what: format!("unexpected command: {other:?}"),
            }),
        };
        Ok(reply)
    }
}

/// Run a worker process until the coordinator shuts it down (or its control
/// connection drops).
pub fn run_worker(config: WorkerConfig) -> Result<(), WorkerError> {
    let ingress = TcpIngress::bind(&config.data_listen)?;
    let data_addr = ingress.local_addr().to_string();

    let mut control = TcpStream::connect(&config.coordinator)?;
    control.set_nodelay(true).ok();
    write_msg(
        &mut control,
        &NodeMsg::Hello {
            name: config.name.clone(),
            slots: config.slots as u64,
            data_addr,
        },
    )?;
    match read_msg_blocking(&mut control)? {
        Some(NodeMsg::Welcome { .. }) => {}
        Some(NodeMsg::Reject { reason }) => return Err(WorkerError::Rejected(reason)),
        Some(other) => {
            return Err(WorkerError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected handshake reply: {other:?}"),
            )))
        }
        None => {
            return Err(WorkerError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "coordinator closed the connection during registration",
            )))
        }
    }
    // Short read timeout: the event loop multiplexes control reads with
    // data-plane polling and stepping, while writes stay blocking.
    control.set_read_timeout(Some(Duration::from_millis(1)))?;

    let network = Network::new(262_144);
    let transport = std::sync::Arc::new(TcpTransport::new());
    network.set_transport(transport.clone());
    let mut state = NodeState {
        job: config.job,
        network,
        transport,
        ingress,
        cores: BTreeMap::new(),
        clocks: BTreeMap::new(),
        metrics: Metrics::new(),
        epoch: Instant::now(),
        paused: false,
    };

    let mut reader = FrameReader::new();
    let mut last_heartbeat = Instant::now();
    let heartbeat_every = Duration::from_millis(config.heartbeat_ms.max(1));
    loop {
        let (msgs, open) = drain_msgs(&mut control, &mut reader)?;
        let had_msgs = !msgs.is_empty();
        for msg in msgs {
            match state.handle(msg) {
                Ok(Some(reply)) => write_msg(&mut control, &reply)?,
                Ok(None) => {}
                Err(()) => {
                    let _ = write_msg(&mut control, &NodeMsg::Ack);
                    return Ok(());
                }
            }
        }
        if !open {
            // Coordinator gone: nothing left to host for.
            return Ok(());
        }

        let (network, metrics, epoch) = (&state.network, &state.metrics, state.epoch);
        let delivered = state.ingress.poll(&mut |env| {
            let _ = network.send(env);
        });
        let mut stepped = 0;
        for core in state.cores.values_mut() {
            stepped += core.step(network, metrics, epoch, 256);
        }

        if last_heartbeat.elapsed() >= heartbeat_every {
            write_msg(&mut control, &NodeMsg::Heartbeat)?;
            control.flush().ok();
            last_heartbeat = Instant::now();
        }
        if !had_msgs && delivered == 0 && stepped == 0 {
            std::thread::sleep(Duration::from_micros(500));
        }
    }
}
