//! Checkpoints of operator state (§3.2).
//!
//! A checkpoint captures a consistent copy of an operator's processing state
//! (with the timestamp vector of the most recent reflected input tuples) and
//! its buffer state. Checkpoints are taken asynchronously every checkpointing
//! interval `c` and backed up to an upstream VM; recovery restores the most
//! recent checkpoint and replays the tuples that are not yet reflected in it.
//!
//! Incremental checkpoints carry only the key/value entries that changed
//! since the previous checkpoint, reducing checkpoint size for operators with
//! large, slowly changing state.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::operator::OperatorId;
use crate::state::{BufferState, ProcessingState};
use crate::tuple::{Key, TimestampVec};

/// Metadata describing a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointMeta {
    /// The operator instance the checkpoint belongs to.
    pub operator: OperatorId,
    /// Monotonically increasing sequence number per operator.
    pub sequence: u64,
}

/// A full checkpoint of an operator: `(θ_o, τ_o, β_o)` as returned by
/// `checkpoint-state(o)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Checkpoint identity.
    pub meta: CheckpointMeta,
    /// Processing state θ_o including the timestamp vector τ_o.
    pub processing: ProcessingState,
    /// Buffer state β_o (output tuples not yet checkpointed downstream).
    pub buffer: BufferState,
    /// Value of the operator's logical output clock when the checkpoint was
    /// taken. A restored operator resets its clock to this value (§3.2) so
    /// that re-emitted tuples carry the same timestamps as before the failure
    /// and downstream operators can discard them as duplicates.
    #[serde(default)]
    pub emit_clock: crate::tuple::Timestamp,
    /// Decayed per-key tuple counters observed by the worker up to the
    /// checkpoint. When present, [`sample_keys`](Self::sample_keys) weights
    /// its sample by this observed traffic instead of the state-footprint
    /// heuristic. Empty for checkpoints taken before traffic tracking (or by
    /// operators that saw no tuples).
    #[serde(default)]
    pub traffic: crate::traffic::TrafficStats,
}

impl Checkpoint {
    /// Build a checkpoint from its parts.
    pub fn new(
        operator: OperatorId,
        sequence: u64,
        processing: ProcessingState,
        buffer: BufferState,
    ) -> Self {
        Checkpoint {
            meta: CheckpointMeta { operator, sequence },
            processing,
            buffer,
            emit_clock: 0,
            traffic: crate::traffic::TrafficStats::new(),
        }
    }

    /// Attach the operator's logical output-clock value.
    pub fn with_emit_clock(mut self, clock: crate::tuple::Timestamp) -> Self {
        self.emit_clock = clock;
        self
    }

    /// Attach the worker's observed per-key traffic counters.
    pub fn with_traffic(mut self, traffic: crate::traffic::TrafficStats) -> Self {
        self.traffic = traffic;
        self
    }

    /// An empty checkpoint for a freshly deployed (or stateless) operator.
    pub fn empty(operator: OperatorId) -> Self {
        Checkpoint::new(operator, 0, ProcessingState::empty(), BufferState::new())
    }

    /// The timestamp vector of the most recent input tuples reflected in the
    /// checkpointed processing state.
    pub fn timestamps(&self) -> &TimestampVec {
        self.processing.timestamps()
    }

    /// Serialise the checkpoint to bytes (used when backing up to another VM).
    pub fn to_bytes(&self) -> crate::Result<Vec<u8>> {
        Ok(bincode::serialize(self)?)
    }

    /// Deserialise a checkpoint from bytes.
    pub fn from_bytes(bytes: &[u8]) -> crate::Result<Self> {
        Ok(bincode::deserialize(bytes)?)
    }

    /// Approximate size of the checkpoint in bytes, used by cost models and
    /// the overhead experiments (§6.3).
    pub fn size_bytes(&self) -> usize {
        self.processing.size_bytes() + self.buffer.size_bytes()
    }

    /// A load-weighted sample of at most `max` keys from the checkpoint, for
    /// distribution-guided key splits during reconfiguration: hot keys are
    /// repeated in proportion to their share of the load, so
    /// [`KeyRange::split_by_distribution`] balances load rather than
    /// distinct-key counts.
    ///
    /// When the checkpoint carries [`traffic`](Self::traffic) counters the
    /// sample is weighted by **observed tuple traffic** (with exponential
    /// decay applied at the worker, so stale hot spots fade); otherwise it
    /// falls back to the state-footprint heuristic, which tracks load for
    /// windowed operators but not for constant-size per-key state.
    ///
    /// [`KeyRange::split_by_distribution`]: crate::key::KeyRange::split_by_distribution
    pub fn sample_keys(&self, max: usize) -> Vec<Key> {
        if !self.traffic.is_empty() {
            self.traffic.weighted_sample(max)
        } else {
            self.processing.weighted_key_sample(max)
        }
    }

    /// Apply an incremental checkpoint on top of this checkpoint, producing
    /// the state the increment was derived from.
    pub fn apply_increment(&mut self, inc: &IncrementalCheckpoint) {
        assert_eq!(inc.meta.operator, self.meta.operator, "operator mismatch");
        for (k, v) in &inc.changed {
            self.processing.insert(*k, v.clone());
        }
        for k in &inc.removed {
            self.processing.remove(*k);
        }
        *self.processing.timestamps_mut() = inc.timestamps.clone();
        self.buffer = inc.buffer.clone();
        self.meta.sequence = inc.meta.sequence;
        self.emit_clock = inc.emit_clock;
        self.traffic = inc.traffic.clone();
    }
}

/// An incremental checkpoint: only the entries that changed (or were removed)
/// since the base checkpoint, plus the new timestamp vector and buffer state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncrementalCheckpoint {
    /// Checkpoint identity (sequence follows the base checkpoint's sequence).
    pub meta: CheckpointMeta,
    /// Sequence number of the base checkpoint this increment applies to.
    pub base_sequence: u64,
    /// Entries added or modified since the base.
    pub changed: Vec<(Key, Bytes)>,
    /// Keys removed since the base.
    pub removed: Vec<Key>,
    /// New timestamp vector.
    pub timestamps: TimestampVec,
    /// New buffer state (buffers change every interval, so they are carried
    /// in full; they are trimmed aggressively and stay small).
    pub buffer: BufferState,
    /// Value of the operator's logical output clock when this increment was
    /// taken. Carried so a checkpoint materialised from a delta chain resets
    /// a restored operator's clock to the *current* value, not the one
    /// frozen in the last full checkpoint — otherwise post-recovery output
    /// would reuse old timestamps and be dropped as duplicates downstream.
    #[serde(default)]
    pub emit_clock: crate::tuple::Timestamp,
    /// Current per-key traffic counters. Carried in full like the buffer
    /// state (decay rewrites every counter each interval, so there is no
    /// stable base to diff against) so delta-chain materialisation samples
    /// the *current* traffic, not the last full checkpoint's.
    #[serde(default)]
    pub traffic: crate::traffic::TrafficStats,
}

impl IncrementalCheckpoint {
    /// Compute the increment that transforms `base` into `current`.
    pub fn diff(base: &Checkpoint, current: &Checkpoint) -> Self {
        let (changed, removed) = current.processing.diff_from(&base.processing);
        IncrementalCheckpoint {
            meta: current.meta,
            base_sequence: base.meta.sequence,
            changed,
            removed,
            timestamps: current.processing.timestamps().clone(),
            buffer: current.buffer.clone(),
            emit_clock: current.emit_clock,
            traffic: current.traffic.clone(),
        }
    }

    /// Approximate serialised size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.changed
            .iter()
            .map(|(_, v)| std::mem::size_of::<Key>() + v.len())
            .sum::<usize>()
            + self.removed.len() * std::mem::size_of::<Key>()
            + self.buffer.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::{Key, StreamId, Tuple};

    fn base_checkpoint() -> Checkpoint {
        let mut st = ProcessingState::empty();
        st.insert(Key(1), vec![1]);
        st.insert(Key(2), vec![2]);
        st.advance_ts(StreamId(0), 10);
        let mut buf = BufferState::new();
        buf.push(OperatorId::new(9), Tuple::new(11, Key(1), vec![0]));
        Checkpoint::new(OperatorId::new(5), 1, st, buf)
    }

    #[test]
    fn roundtrip_serialisation() {
        let cp = base_checkpoint();
        let bytes = cp.to_bytes().unwrap();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, cp);
        assert!(Checkpoint::from_bytes(&[1, 2, 3]).is_err());
    }

    #[test]
    fn empty_checkpoint_has_no_state() {
        let cp = Checkpoint::empty(OperatorId::new(1));
        assert_eq!(cp.size_bytes(), 0);
        assert!(cp.processing.is_empty());
        assert!(cp.buffer.is_empty());
        assert_eq!(cp.meta.sequence, 0);
    }

    #[test]
    fn sample_keys_reflects_state_weights() {
        let mut st = ProcessingState::empty();
        st.insert(Key(10), vec![0u8; 400]);
        st.insert(Key(20), vec![0u8; 40]);
        let cp = Checkpoint::new(OperatorId::new(1), 1, st, BufferState::new());
        let sample = cp.sample_keys(50);
        assert!(!sample.is_empty() && sample.len() <= 50);
        let hot = sample.iter().filter(|k| **k == Key(10)).count();
        let cold = sample.iter().filter(|k| **k == Key(20)).count();
        assert!(hot > cold, "hot key must dominate the sample");
        assert!(Checkpoint::empty(OperatorId::new(2))
            .sample_keys(10)
            .is_empty());
    }

    #[test]
    fn timestamps_come_from_processing_state() {
        let cp = base_checkpoint();
        assert_eq!(cp.timestamps().get(StreamId(0)), Some(10));
    }

    #[test]
    fn incremental_diff_and_apply_roundtrip() {
        let base = base_checkpoint();
        let mut current = base.clone();
        current.meta.sequence = 2;
        current.emit_clock = 77;
        current.processing.insert(Key(2), vec![22]); // modified
        current.processing.insert(Key(3), vec![3]); // added
        current.processing.remove(Key(1)); // removed
        current.processing.advance_ts(StreamId(0), 20);
        current.buffer = BufferState::new();

        let inc = IncrementalCheckpoint::diff(&base, &current);
        assert_eq!(inc.base_sequence, 1);
        assert_eq!(inc.changed.len(), 2);
        assert_eq!(inc.removed, vec![Key(1)]);
        assert!(inc.size_bytes() < current.size_bytes() + base.size_bytes());

        let mut rebuilt = base.clone();
        rebuilt.apply_increment(&inc);
        assert_eq!(rebuilt.processing, current.processing);
        assert_eq!(rebuilt.buffer, current.buffer);
        assert_eq!(rebuilt.meta.sequence, 2);
        assert_eq!(
            rebuilt.emit_clock, 77,
            "emit clock must track the increment, not the base"
        );
    }

    #[test]
    fn increment_smaller_than_full_for_small_changes() {
        // A large state with a single changed entry: the increment must be
        // far smaller than a full checkpoint.
        let mut st = ProcessingState::empty();
        for i in 0..1000u64 {
            st.insert(Key(i), vec![0u8; 64]);
        }
        let base = Checkpoint::new(OperatorId::new(1), 1, st.clone(), BufferState::new());
        let mut st2 = st;
        st2.insert(Key(5), vec![1u8; 64]);
        let current = Checkpoint::new(OperatorId::new(1), 2, st2, BufferState::new());
        let inc = IncrementalCheckpoint::diff(&base, &current);
        assert!(inc.size_bytes() * 10 < current.size_bytes());
    }

    #[test]
    #[should_panic(expected = "operator mismatch")]
    fn apply_increment_checks_operator() {
        let base = base_checkpoint();
        let other = Checkpoint::empty(OperatorId::new(42));
        let inc = IncrementalCheckpoint::diff(&other, &other);
        let mut cp = base;
        cp.apply_increment(&inc);
    }
}
