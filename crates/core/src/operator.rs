//! Operator model (§2.2): deterministic operator functions over tuples, with
//! explicit access to processing state.
//!
//! A *stateful* operator implements [`StatefulOperator`], whose
//! [`get_processing_state`](StatefulOperator::get_processing_state) /
//! [`set_processing_state`](StatefulOperator::set_processing_state) methods
//! expose its internal state to the SPS as key/value pairs (§3.1). Stateless
//! operators (filter, map) can be wrapped in [`StatelessFn`], whose processing
//! state is always empty.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::batch::BatchOutput;
use crate::state::ProcessingState;
use crate::tuple::{Key, StreamId, Timestamp, Tuple};

/// Identifier of a *physical* operator instance in the execution graph.
///
/// When a logical operator is scaled out to parallelisation level π, each of
/// the π partitioned operators has its own `OperatorId`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct OperatorId(pub u64);

impl OperatorId {
    /// Create an operator id from a raw integer.
    pub fn new(id: u64) -> Self {
        OperatorId(id)
    }

    /// The raw integer identifier.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for OperatorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// An output tuple produced by an operator before the runtime assigns it a
/// timestamp from the operator's logical clock.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputTuple {
    /// Partitioning key of the output tuple.
    pub key: Key,
    /// Serialised payload.
    pub payload: bytes::Bytes,
}

impl OutputTuple {
    /// Create an output tuple from raw parts.
    pub fn new(key: Key, payload: impl Into<bytes::Bytes>) -> Self {
        OutputTuple {
            key,
            payload: payload.into(),
        }
    }

    /// Create an output tuple by serialising a typed payload.
    pub fn encode<T: Serialize>(key: Key, value: &T) -> crate::Result<Self> {
        Ok(OutputTuple::new(key, bincode::serialize(value)?))
    }

    /// Attach a timestamp, turning this into a full [`Tuple`].
    pub fn with_ts(self, ts: Timestamp) -> Tuple {
        Tuple {
            ts,
            key: self.key,
            payload: self.payload,
        }
    }
}

/// A deterministic stream operator with externally managed state.
///
/// The contract mirrors the paper's operator function
/// `f_o : (I_o, τ_o, θ_o, σ_o) → (O_o, τ_o, θ_o, σ_o)`:
///
/// * [`process`](Self::process) consumes one input tuple (the runtime calls it
///   for each tuple of the batch `I_o[τ_o]`) and appends any output tuples to
///   `out`. Operators must be deterministic and must not have externally
///   visible side effects.
/// * [`get_processing_state`](Self::get_processing_state) returns a consistent
///   copy of the operator's processing state θ_o as key/value pairs. The
///   runtime pairs it with the timestamp vector it maintains for the operator.
/// * [`set_processing_state`](Self::set_processing_state) replaces the
///   internal state from a (possibly partitioned) checkpoint.
/// * [`on_tick`](Self::on_tick) lets windowed operators emit periodic results
///   (e.g. "word frequencies every 30 s"); the runtime invokes it on a timer.
pub trait StatefulOperator: Send {
    /// Process one input tuple arriving on `stream`, appending outputs to `out`.
    fn process(&mut self, stream: StreamId, tuple: &Tuple, out: &mut Vec<OutputTuple>);

    /// Process a run of consecutive input tuples from `stream`, attributing
    /// each output to the index of the input that produced it.
    ///
    /// The default loops [`process`](Self::process) over the batch, so every
    /// operator is batch-capable with per-tuple semantics. Hot operators
    /// override this with a hand-rolled loop that skips the per-tuple scratch
    /// allocation and dispatch bookkeeping; overrides must produce exactly
    /// the outputs the default would (the `batch_equivalence` suite holds
    /// them to it).
    fn process_batch(&mut self, stream: StreamId, tuples: &[Tuple], out: &mut BatchOutput) {
        let mut scratch = Vec::new();
        for (index, tuple) in tuples.iter().enumerate() {
            self.process(stream, tuple, &mut scratch);
            out.absorb(index, &mut scratch);
        }
    }

    /// Take a consistent copy of the processing state as key/value pairs.
    fn get_processing_state(&self) -> ProcessingState;

    /// Replace the processing state from a checkpoint (or a partition of one).
    fn set_processing_state(&mut self, state: ProcessingState);

    /// Whether the operator carries processing state. Stateless operators can
    /// skip checkpointing entirely.
    fn is_stateful(&self) -> bool {
        true
    }

    /// Periodic trigger for windowed / time-driven output. `now_ms` is the
    /// runtime's notion of elapsed milliseconds. Default: no-op.
    fn on_tick(&mut self, _now_ms: u64, _out: &mut Vec<OutputTuple>) {}

    /// A short human-readable name used in logs and metrics.
    fn name(&self) -> &str {
        "operator"
    }

    /// When this instance executes several fused logical stages in one
    /// physical operator (see [`crate::fused::FusedOperator`]), the
    /// per-stage attribution counts; `None` for ordinary operators. The
    /// runtime uses this to keep health and metrics reported per *logical*
    /// operator even after fusion.
    fn fusion_stages(&self) -> Option<Vec<crate::fused::FusionStageStats>> {
        None
    }
}

/// Adapter turning a pure function into a stateless operator.
///
/// The processing state of a stateless operator is the empty set (`θ_o = ∅`,
/// §2.2), so checkpoints of a `StatelessFn` are trivially empty and recovery
/// only needs to replay buffered tuples.
pub struct StatelessFn<F> {
    name: String,
    f: F,
}

impl<F> StatelessFn<F>
where
    F: FnMut(StreamId, &Tuple, &mut Vec<OutputTuple>) + Send,
{
    /// Wrap a function as a stateless operator.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        StatelessFn {
            name: name.into(),
            f,
        }
    }
}

impl<F> StatefulOperator for StatelessFn<F>
where
    F: FnMut(StreamId, &Tuple, &mut Vec<OutputTuple>) + Send,
{
    fn process(&mut self, stream: StreamId, tuple: &Tuple, out: &mut Vec<OutputTuple>) {
        (self.f)(stream, tuple, out);
    }

    fn get_processing_state(&self) -> ProcessingState {
        ProcessingState::empty()
    }

    fn set_processing_state(&mut self, _state: ProcessingState) {}

    fn is_stateful(&self) -> bool {
        false
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Boxed trait objects act as operators themselves, so factories may return
/// either a concrete operator or an already-erased `Box<dyn StatefulOperator>`
/// interchangeably.
impl StatefulOperator for Box<dyn StatefulOperator> {
    fn process(&mut self, stream: StreamId, tuple: &Tuple, out: &mut Vec<OutputTuple>) {
        (**self).process(stream, tuple, out)
    }

    // Forwarding matters: without it, a boxed operator would fall back to the
    // trait default and silently bypass the inner operator's batch override.
    fn process_batch(&mut self, stream: StreamId, tuples: &[Tuple], out: &mut BatchOutput) {
        (**self).process_batch(stream, tuples, out)
    }

    fn get_processing_state(&self) -> ProcessingState {
        (**self).get_processing_state()
    }

    fn set_processing_state(&mut self, state: ProcessingState) {
        (**self).set_processing_state(state)
    }

    fn is_stateful(&self) -> bool {
        (**self).is_stateful()
    }

    fn on_tick(&mut self, now_ms: u64, out: &mut Vec<OutputTuple>) {
        (**self).on_tick(now_ms, out)
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn fusion_stages(&self) -> Option<Vec<crate::fused::FusionStageStats>> {
        (**self).fusion_stages()
    }
}

/// Factory that builds fresh instances of an operator, used when the SPS
/// deploys new partitioned operators onto new VMs during scale out or
/// recovery. The fresh instance starts with empty state; the SPS then calls
/// [`StatefulOperator::set_processing_state`] with the partitioned checkpoint.
///
/// Any `Fn() -> O` closure where `O: StatefulOperator` is a factory, so
/// operator constructors can be passed directly — e.g.
/// `builder.then_stateful("count", || WindowedWordCount::new(30_000))` with
/// the job API, no boxing or `as Arc<dyn OperatorFactory>` casts required.
/// For operators that are `Clone`, [`CloneFactory`] turns a prototype value
/// into a factory.
pub trait OperatorFactory: Send + Sync {
    /// Build a fresh operator instance.
    fn build(&self) -> Box<dyn StatefulOperator>;

    /// Name of the operators this factory builds.
    fn name(&self) -> &str {
        "operator"
    }
}

impl<F, O> OperatorFactory for F
where
    F: Fn() -> O + Send + Sync,
    O: StatefulOperator + 'static,
{
    fn build(&self) -> Box<dyn StatefulOperator> {
        Box::new(self())
    }
}

/// Factory that clones a prototype operator value for every build.
///
/// This is the "factory from a [`StatefulOperator`] value" adapter: operators
/// that are `Clone` (most pure-state operators are) can be handed to the job
/// API directly as `CloneFactory::new(op)` instead of a construction closure.
pub struct CloneFactory<O> {
    prototype: O,
}

impl<O> CloneFactory<O>
where
    O: StatefulOperator + Clone + Sync + 'static,
{
    /// Wrap a prototype operator; every [`OperatorFactory::build`] clones it.
    pub fn new(prototype: O) -> Self {
        CloneFactory { prototype }
    }
}

impl<O> OperatorFactory for CloneFactory<O>
where
    O: StatefulOperator + Clone + Sync + 'static,
{
    fn build(&self) -> Box<dyn StatefulOperator> {
        Box::new(self.prototype.clone())
    }

    fn name(&self) -> &str {
        self.prototype.name()
    }
}

/// Conversion into a shared operator factory, accepted wherever the job API
/// takes a factory. Implemented by every [`OperatorFactory`] (closures
/// included, via the blanket impl) and by `Arc<dyn OperatorFactory>` itself,
/// so both fresh closures and pre-shared factories can be passed without
/// casts.
pub trait IntoOperatorFactory {
    /// Convert into a shared factory handle.
    fn into_factory(self) -> Arc<dyn OperatorFactory>;
}

impl<F> IntoOperatorFactory for F
where
    F: OperatorFactory + 'static,
{
    fn into_factory(self) -> Arc<dyn OperatorFactory> {
        Arc::new(self)
    }
}

impl IntoOperatorFactory for Arc<dyn OperatorFactory> {
    fn into_factory(self) -> Arc<dyn OperatorFactory> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stateless_fn_forwards_tuples() {
        let mut op = StatelessFn::new("identity", |_s, t: &Tuple, out: &mut Vec<OutputTuple>| {
            out.push(OutputTuple::new(t.key, t.payload.clone()));
        });
        let mut out = Vec::new();
        let t = Tuple::new(1, Key(42), vec![1, 2, 3]);
        op.process(StreamId(0), &t, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].key, Key(42));
        assert!(!op.is_stateful());
        assert!(op.get_processing_state().is_empty());
        assert_eq!(op.name(), "identity");
    }

    #[test]
    fn output_tuple_with_ts_builds_tuple() {
        let o = OutputTuple::new(Key(1), vec![9]);
        let t = o.with_ts(33);
        assert_eq!(t.ts, 33);
        assert_eq!(t.key, Key(1));
        assert_eq!(&t.payload[..], &[9]);
    }

    #[test]
    fn output_tuple_encode() {
        let o = OutputTuple::encode(Key(1), &("hi".to_string(), 3u32)).unwrap();
        let t = o.with_ts(1);
        let (s, n): (String, u32) = t.decode().unwrap();
        assert_eq!(s, "hi");
        assert_eq!(n, 3);
    }

    #[test]
    fn factory_from_closure() {
        let factory = || -> Box<dyn StatefulOperator> {
            Box::new(StatelessFn::new(
                "noop",
                |_, _, _: &mut Vec<OutputTuple>| {},
            ))
        };
        let op = OperatorFactory::build(&factory);
        assert!(!op.is_stateful());
    }

    #[test]
    fn factory_from_concrete_closure_needs_no_boxing() {
        // A closure returning a concrete operator type is a factory directly.
        let factory = || StatelessFn::new("noop", |_, _, _: &mut Vec<OutputTuple>| {});
        let op = OperatorFactory::build(&factory);
        assert!(!op.is_stateful());
        assert_eq!(op.name(), "noop");
    }

    #[test]
    fn boxed_operator_forwards_through_stateful_impl() {
        let mut boxed: Box<dyn StatefulOperator> = Box::new(StatelessFn::new(
            "fwd",
            |_s, t: &Tuple, out: &mut Vec<OutputTuple>| {
                out.push(OutputTuple::new(t.key, t.payload.clone()));
            },
        ));
        let mut out = Vec::new();
        StatefulOperator::process(
            &mut boxed,
            StreamId(0),
            &Tuple::new(1, Key(5), vec![7]),
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(StatefulOperator::name(&boxed), "fwd");
        assert!(!StatefulOperator::is_stateful(&boxed));
        assert!(StatefulOperator::get_processing_state(&boxed).is_empty());
    }

    #[derive(Clone)]
    struct Proto {
        state: ProcessingState,
    }

    impl StatefulOperator for Proto {
        fn process(&mut self, _s: StreamId, _t: &Tuple, _o: &mut Vec<OutputTuple>) {}
        fn get_processing_state(&self) -> ProcessingState {
            self.state.clone()
        }
        fn set_processing_state(&mut self, state: ProcessingState) {
            self.state = state;
        }
        fn name(&self) -> &str {
            "proto"
        }
    }

    #[test]
    fn clone_factory_clones_the_prototype() {
        let mut state = ProcessingState::empty();
        state.insert(Key(1), vec![9]);
        let factory = CloneFactory::new(Proto { state });
        assert_eq!(factory.name(), "proto");
        let a = factory.build();
        let b = factory.build();
        assert_eq!(a.get_processing_state().len(), 1);
        assert_eq!(b.get_processing_state().len(), 1);
    }

    #[test]
    fn into_factory_accepts_closures_and_shared_factories() {
        let from_closure =
            (|| StatelessFn::new("a", |_, _, _: &mut Vec<OutputTuple>| {})).into_factory();
        assert!(!from_closure.build().is_stateful());
        // An already-shared factory passes through unchanged.
        let shared: Arc<dyn OperatorFactory> = from_closure.clone();
        let same = shared.into_factory();
        assert!(Arc::ptr_eq(&from_closure, &same));
    }

    #[test]
    fn default_process_batch_loops_process_with_attribution() {
        let mut op = StatelessFn::new("dup", |_s, t: &Tuple, out: &mut Vec<OutputTuple>| {
            out.push(OutputTuple::new(t.key, t.payload.clone()));
            out.push(OutputTuple::new(t.key, t.payload.clone()));
        });
        let tuples = vec![
            Tuple::new(1, Key(1), vec![1]),
            Tuple::new(2, Key(2), vec![2]),
        ];
        let mut out = BatchOutput::new();
        op.process_batch(StreamId(0), &tuples, &mut out);
        let items = out.into_items();
        assert_eq!(items.len(), 4);
        assert_eq!(items[0].0, 0);
        assert_eq!(items[1].0, 0);
        assert_eq!(items[2].0, 1);
        assert_eq!(items[3].0, 1);
        assert_eq!(items[3].1.key, Key(2));
    }

    struct Batchy;

    impl StatefulOperator for Batchy {
        fn process(&mut self, _s: StreamId, t: &Tuple, out: &mut Vec<OutputTuple>) {
            out.push(OutputTuple::new(t.key, vec![0]));
        }
        fn process_batch(&mut self, _s: StreamId, tuples: &[Tuple], out: &mut BatchOutput) {
            for (i, t) in tuples.iter().enumerate() {
                out.set_source(i);
                out.push(OutputTuple::new(t.key, vec![1]));
            }
        }
        fn get_processing_state(&self) -> ProcessingState {
            ProcessingState::empty()
        }
        fn set_processing_state(&mut self, _state: ProcessingState) {}
    }

    #[test]
    fn boxed_operator_forwards_batch_override() {
        let mut boxed: Box<dyn StatefulOperator> = Box::new(Batchy);
        let tuples = vec![Tuple::new(1, Key(3), vec![])];
        let mut out = BatchOutput::new();
        StatefulOperator::process_batch(&mut boxed, StreamId(0), &tuples, &mut out);
        // The override's payload marker, not the per-tuple default's.
        assert_eq!(&out.items()[0].1.payload[..], &[1]);
    }

    #[test]
    fn operator_id_display_and_order() {
        let a = OperatorId::new(1);
        let b = OperatorId::new(2);
        assert!(a < b);
        assert_eq!(a.to_string(), "op1");
        assert_eq!(a.raw(), 1);
    }
}
