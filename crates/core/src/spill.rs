//! State spilling (§3.3): temporarily storing operator state on disk to free
//! memory under overload, and the more general *persist* operation backing
//! state with external storage.
//!
//! The paper lists spill/persist among the additional primitives that the
//! state-management interface can support beyond the minimum set. The
//! implementation here writes serialised checkpoints to a spool directory and
//! reads them back on demand; the runtime can use it to bound the memory
//! footprint of backup stores holding many large checkpoints.

use std::fs;
use std::path::{Path, PathBuf};

use crate::checkpoint::Checkpoint;
use crate::error::{Error, Result};
use crate::operator::OperatorId;

/// Policy hook deciding when in-memory state must be spilled to disk.
///
/// Tiered checkpoint stores (`seep-store`) consult the policy after every
/// admission to their hot tier; anything beyond the returned excess is
/// demoted to the cold tier.
pub trait SpillPolicy: Send + Sync {
    /// Given the hot-set size in bytes, how many bytes must be spilled to
    /// respect the policy? Zero means the hot set fits.
    fn excess_bytes(&self, hot_bytes: usize) -> usize;
}

/// Keep the hot set under a fixed byte budget.
#[derive(Debug, Clone, Copy)]
pub struct MemoryBudget {
    /// Maximum bytes of checkpoints kept in memory.
    pub max_hot_bytes: usize,
}

impl MemoryBudget {
    /// A budget of `max_hot_bytes` bytes.
    pub fn new(max_hot_bytes: usize) -> Self {
        MemoryBudget { max_hot_bytes }
    }
}

impl SpillPolicy for MemoryBudget {
    fn excess_bytes(&self, hot_bytes: usize) -> usize {
        hot_bytes.saturating_sub(self.max_hot_bytes)
    }
}

/// A directory-backed spill area for operator checkpoints.
#[derive(Debug)]
pub struct SpillStore {
    dir: PathBuf,
}

impl SpillStore {
    /// Open (creating if necessary) a spill store rooted at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| Error::Spill(e.to_string()))?;
        Ok(SpillStore { dir })
    }

    fn path_for(&self, operator: OperatorId) -> PathBuf {
        self.dir.join(format!("op-{}.ckpt", operator.raw()))
    }

    /// Spill a checkpoint to disk, replacing any previous spill for the same
    /// operator. Returns the number of bytes written.
    pub fn spill(&self, checkpoint: &Checkpoint) -> Result<usize> {
        let bytes = checkpoint.to_bytes()?;
        let path = self.path_for(checkpoint.meta.operator);
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, &bytes).map_err(|e| Error::Spill(e.to_string()))?;
        fs::rename(&tmp, &path).map_err(|e| Error::Spill(e.to_string()))?;
        Ok(bytes.len())
    }

    /// Load a spilled checkpoint back into memory.
    pub fn restore(&self, operator: OperatorId) -> Result<Checkpoint> {
        let path = self.path_for(operator);
        let bytes = fs::read(&path).map_err(|_| Error::NoBackup(operator))?;
        Checkpoint::from_bytes(&bytes)
    }

    /// Remove a spilled checkpoint. Returns whether one existed.
    pub fn evict(&self, operator: OperatorId) -> bool {
        fs::remove_file(self.path_for(operator)).is_ok()
    }

    /// Operators with a spilled checkpoint present on disk.
    pub fn spilled(&self) -> Vec<OperatorId> {
        let mut out = Vec::new();
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return out;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(id) = name
                .strip_prefix("op-")
                .and_then(|s| s.strip_suffix(".ckpt"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                out.push(OperatorId::new(id));
            }
        }
        out.sort();
        out
    }

    /// Total bytes currently spilled.
    pub fn size_bytes(&self) -> u64 {
        self.spilled()
            .iter()
            .filter_map(|op| fs::metadata(self.path_for(*op)).ok())
            .map(|m| m.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{BufferState, ProcessingState};
    use crate::tuple::Key;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("seep-spill-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn checkpoint(op: u64) -> Checkpoint {
        let mut st = ProcessingState::empty();
        st.insert(Key(op), vec![0u8; 128]);
        Checkpoint::new(OperatorId::new(op), 1, st, BufferState::new())
    }

    #[test]
    fn spill_restore_roundtrip() {
        let store = SpillStore::open(temp_dir("roundtrip")).unwrap();
        let cp = checkpoint(7);
        let written = store.spill(&cp).unwrap();
        assert!(written > 128);
        let back = store.restore(OperatorId::new(7)).unwrap();
        assert_eq!(back, cp);
        assert_eq!(store.spilled(), vec![OperatorId::new(7)]);
        assert!(store.size_bytes() >= written as u64);
    }

    #[test]
    fn evict_removes_spilled_state() {
        let store = SpillStore::open(temp_dir("evict")).unwrap();
        store.spill(&checkpoint(3)).unwrap();
        assert!(store.evict(OperatorId::new(3)));
        assert!(!store.evict(OperatorId::new(3)));
        assert!(matches!(
            store.restore(OperatorId::new(3)),
            Err(Error::NoBackup(_))
        ));
        assert!(store.spilled().is_empty());
    }

    #[test]
    fn spill_replaces_previous_version() {
        let store = SpillStore::open(temp_dir("replace")).unwrap();
        let mut cp = checkpoint(5);
        store.spill(&cp).unwrap();
        cp.meta.sequence = 9;
        store.spill(&cp).unwrap();
        assert_eq!(store.restore(OperatorId::new(5)).unwrap().meta.sequence, 9);
        assert_eq!(store.spilled().len(), 1);
    }

    #[test]
    fn missing_restore_is_no_backup_error() {
        let store = SpillStore::open(temp_dir("missing")).unwrap();
        assert!(matches!(
            store.restore(OperatorId::new(1)),
            Err(Error::NoBackup(_))
        ));
    }
}
