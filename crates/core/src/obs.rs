//! Observability primitives shared by the runtime's ops plane: a fixed
//! log-scale latency histogram, the per-operator health states and a bounded
//! event ring.
//!
//! The paper evaluates the elastic operator exclusively through observed
//! series — latency percentiles, throughput, recovery time, VM allocation —
//! so the exporter needs an aggregation that survives unbounded run lengths.
//! [`LatencyHistogram`] buckets latency samples into a fixed 1–2.5–5
//! log-scale ladder (Prometheus-style cumulative export, `+Inf` included),
//! which keeps memory constant and lets a scraper reconstruct p50/p95/p99
//! within one bucket's resolution. [`EventRing`] is the bounded in-memory
//! backing of the reconfiguration journal: the newest `capacity` events are
//! retained, the total count keeps growing.

use serde::{Deserialize, Serialize};

/// Upper bounds (inclusive, in µs) of the latency histogram buckets: a
/// 1–2.5–5 ladder from 10 µs to 10 s. Samples above the last bound land in
/// the implicit `+Inf` bucket.
pub const LATENCY_BUCKET_BOUNDS_US: [u64; 19] = [
    10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000,
    500_000, 1_000_000, 2_500_000, 5_000_000, 10_000_000,
];

/// A latency histogram with fixed log-scale buckets
/// ([`LATENCY_BUCKET_BOUNDS_US`] plus `+Inf`).
///
/// Constant-size regardless of how many samples are recorded — the backing
/// store for the Prometheus exposition's `_bucket`/`_sum`/`_count` series
/// and for percentile estimates that do not require retaining raw samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Per-bucket (non-cumulative) counts; the last slot is `+Inf`.
    counts: [u64; LATENCY_BUCKET_BOUNDS_US.len() + 1],
    sum_us: u64,
    count: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: [0; LATENCY_BUCKET_BOUNDS_US.len() + 1],
            sum_us: 0,
            count: 0,
        }
    }

    /// Record one latency sample in microseconds.
    pub fn record_us(&mut self, us: u64) {
        let idx = LATENCY_BUCKET_BOUNDS_US
            .iter()
            .position(|le| us <= *le)
            .unwrap_or(LATENCY_BUCKET_BOUNDS_US.len());
        self.counts[idx] += 1;
        self.sum_us += us;
        self.count += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (µs).
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// Forget every sample (used between experiment phases).
    pub fn reset(&mut self) {
        *self = Self::new();
    }

    /// Estimate the latency at percentile `p` (0–100) in µs by walking the
    /// cumulative bucket counts and interpolating linearly within the bucket
    /// the rank falls into. Returns 0 for an empty histogram; a rank in the
    /// `+Inf` bucket reports the last finite bound.
    pub fn percentile_us(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (p.clamp(0.0, 100.0) / 100.0) * self.count as f64;
        let mut cumulative = 0u64;
        for (i, n) in self.counts.iter().enumerate() {
            let next = cumulative + n;
            if (next as f64) >= rank && *n > 0 {
                let lo = if i == 0 {
                    0.0
                } else {
                    LATENCY_BUCKET_BOUNDS_US[i - 1] as f64
                };
                let hi = match LATENCY_BUCKET_BOUNDS_US.get(i) {
                    Some(le) => *le as f64,
                    // +Inf bucket: report its lower bound, the last finite le.
                    None => return lo,
                };
                let into = (rank - cumulative as f64).max(0.0) / *n as f64;
                return lo + (hi - lo) * into.min(1.0);
            }
            cumulative = next;
        }
        LATENCY_BUCKET_BOUNDS_US[LATENCY_BUCKET_BOUNDS_US.len() - 1] as f64
    }

    /// A serialisable copy of the bucket state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds_us: LATENCY_BUCKET_BOUNDS_US.to_vec(),
            counts: self.counts.to_vec(),
            sum_us: self.sum_us,
            count: self.count,
        }
    }
}

/// A point-in-time copy of a [`LatencyHistogram`], as rendered by the
/// Prometheus exporter.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Finite bucket upper bounds (µs), ascending.
    pub bounds_us: Vec<u64>,
    /// Per-bucket (non-cumulative) counts; one more entry than `bounds_us`,
    /// the last being the `+Inf` bucket.
    pub counts: Vec<u64>,
    /// Sum of all samples (µs).
    pub sum_us: u64,
    /// Total samples.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Cumulative counts per bucket (Prometheus `_bucket` semantics): entry
    /// `i` counts every sample ≤ `bounds_us[i]`, the final entry (`+Inf`)
    /// equals [`count`](Self::count).
    pub fn cumulative(&self) -> Vec<u64> {
        let mut total = 0u64;
        self.counts
            .iter()
            .map(|n| {
                total += n;
                total
            })
            .collect()
    }
}

/// Health of one operator instance, derived by the runtime from worker queue
/// depth, utilisation reports, failure flags and in-flight reconfiguration
/// plans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthState {
    /// Processing normally.
    #[default]
    Ok,
    /// Inbound queue depth exceeds the configured backpressure watermark.
    Backpressured,
    /// A reconfiguration plan touched the operator at the current virtual
    /// instant (scale out/in, rebalance or consolidate); catch-up may still
    /// be in progress.
    Reconfiguring,
    /// The operator's VM has crashed and no recovery has replaced it yet.
    Failed,
    /// The operator was just restored by a recovery plan at the current
    /// virtual instant.
    Recovering,
}

impl HealthState {
    /// Lowercase label used by the Prometheus exposition and the journal.
    pub fn label(self) -> &'static str {
        match self {
            HealthState::Ok => "ok",
            HealthState::Backpressured => "backpressured",
            HealthState::Reconfiguring => "reconfiguring",
            HealthState::Failed => "failed",
            HealthState::Recovering => "recovering",
        }
    }

    /// Every state, in severity order (for exposition completeness checks).
    pub fn all() -> [HealthState; 5] {
        [
            HealthState::Ok,
            HealthState::Backpressured,
            HealthState::Reconfiguring,
            HealthState::Recovering,
            HealthState::Failed,
        ]
    }
}

/// A bounded ring of events: the newest `capacity` entries are retained
/// while the total number of pushes keeps counting. The in-memory backing of
/// the reconfiguration journal.
#[derive(Debug, Clone)]
pub struct EventRing<T> {
    capacity: usize,
    items: std::collections::VecDeque<T>,
    total: u64,
}

impl<T: Clone> EventRing<T> {
    /// An empty ring retaining at most `capacity` events (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        EventRing {
            capacity: capacity.max(1),
            items: std::collections::VecDeque::new(),
            total: 0,
        }
    }

    /// Append an event, evicting the oldest when full. Returns the event's
    /// zero-based sequence number over the ring's lifetime.
    pub fn push(&mut self, item: T) -> u64 {
        if self.items.len() == self.capacity {
            self.items.pop_front();
        }
        self.items.push_back(item);
        let seq = self.total;
        self.total += 1;
        seq
    }

    /// The retained events, oldest first.
    pub fn items(&self) -> Vec<T> {
        self.items.iter().cloned().collect()
    }

    /// Number of retained events (≤ capacity).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total events pushed over the ring's lifetime (including evicted).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Maximum retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_strictly_increasing() {
        for w in LATENCY_BUCKET_BOUNDS_US.windows(2) {
            assert!(w[0] < w[1], "bounds must ascend: {w:?}");
        }
    }

    #[test]
    fn histogram_counts_and_sum_track_samples() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.percentile_us(99.0), 0.0, "empty histogram reads zero");
        for us in [5u64, 10, 11, 100_000, 20_000_000] {
            h.record_us(us);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum_us(), 5 + 10 + 11 + 100_000 + 20_000_000);
        let snap = h.snapshot();
        assert_eq!(snap.counts.iter().sum::<u64>(), 5);
        // 5 and 10 land in the first bucket (le=10), 11 in le=25, the
        // 20 s outlier in +Inf.
        assert_eq!(snap.counts[0], 2);
        assert_eq!(snap.counts[1], 1);
        assert_eq!(*snap.counts.last().unwrap(), 1);
        let cumulative = snap.cumulative();
        assert_eq!(*cumulative.last().unwrap(), snap.count);
        for w in cumulative.windows(2) {
            assert!(w[0] <= w[1], "cumulative buckets must be monotone");
        }
    }

    #[test]
    fn percentiles_are_within_one_bucket_of_exact() {
        let mut h = LatencyHistogram::new();
        // 1..=100 ms uniformly.
        for i in 1..=100u64 {
            h.record_us(i * 1_000);
        }
        let p50 = h.percentile_us(50.0) / 1_000.0;
        let p95 = h.percentile_us(95.0) / 1_000.0;
        let p99 = h.percentile_us(99.0) / 1_000.0;
        // The bucket ladder around 50 ms is 25→50→100 ms, so the estimate
        // must land inside the bucket holding the exact value.
        assert!((25.0..=100.0).contains(&p50), "p50 estimate {p50}");
        assert!((50.0..=250.0).contains(&p95), "p95 estimate {p95}");
        assert!((50.0..=250.0).contains(&p99), "p99 estimate {p99}");
        assert!(p50 <= p95 && p95 <= p99, "percentiles must be ordered");
    }

    #[test]
    fn histogram_reset_forgets_everything() {
        let mut h = LatencyHistogram::new();
        h.record_us(1_000);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum_us(), 0);
        assert_eq!(h.snapshot().counts.iter().sum::<u64>(), 0);
    }

    #[test]
    fn health_state_labels_are_distinct() {
        let labels: Vec<&str> = HealthState::all().iter().map(|s| s.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        assert_eq!(HealthState::default(), HealthState::Ok);
    }

    #[test]
    fn event_ring_evicts_oldest_and_keeps_total() {
        let mut ring = EventRing::new(3);
        assert!(ring.is_empty());
        for i in 0..5u32 {
            assert_eq!(ring.push(i), u64::from(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total(), 5);
        assert_eq!(ring.items(), vec![2, 3, 4]);
        assert_eq!(ring.capacity(), 3);
        assert_eq!(EventRing::<u32>::new(0).capacity(), 1, "clamped");
    }
}
