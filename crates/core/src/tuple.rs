//! Data model: streams, tuples, keys and logical timestamps (§2.2 of the paper).
//!
//! A stream is an infinite series of tuples. A tuple `t = (τ, k, p)` carries a
//! logical timestamp `τ` assigned by the emitting operator's monotonically
//! increasing [`crate::clock::LogicalClock`], a key field `k` used to
//! partition state and streams, and an opaque payload `p`.

use std::collections::BTreeMap;
use std::fmt;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Logical timestamp assigned by the emitting operator's logical clock.
///
/// Timestamps are only comparable within one stream; they order the tuples of
/// that stream and let downstream operators detect duplicates after replay.
pub type Timestamp = u64;

/// Identifier of a stream in the execution graph.
///
/// Streams are identified by the *logical* upstream operator that produces
/// them, so all partitions of an upstream operator feed the same stream id.
/// This matches the paper's timestamp vector `τ_o = (τ_1, ..., τ_n)`, which
/// has one entry per input stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StreamId(pub u32);

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Tuple key used to partition state and route tuples.
///
/// Keys are not unique and are typically computed as a hash of the payload
/// (§2.2). The key space is the full `u64` range, which the routing state
/// divides into [`crate::key::KeyRange`]s.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Key(pub u64);

impl Key {
    /// Build a key by hashing arbitrary bytes with a stable FNV-1a hash.
    ///
    /// A stable (non-randomised) hash is required so that the same logical key
    /// always maps to the same partition across VMs and across restarts.
    pub fn from_bytes(data: &[u8]) -> Self {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        for &b in data {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        Key(hash)
    }

    /// Build a key from a string (hashes its UTF-8 bytes).
    pub fn from_str_key(s: &str) -> Self {
        Self::from_bytes(s.as_bytes())
    }

    /// Build a key directly from an integer domain value (e.g. a vehicle id).
    ///
    /// The value is mixed with a finaliser so that dense integer domains
    /// spread across the key space, which keeps even key-range splits balanced.
    pub fn from_u64(v: u64) -> Self {
        // SplitMix64 finaliser.
        let mut z = v.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        Key(z ^ (z >> 31))
    }

    /// The raw 64-bit key value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

impl From<u64> for Key {
    fn from(v: u64) -> Self {
        Key(v)
    }
}

/// A stream tuple `t = (τ, k, p)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tuple {
    /// Logical timestamp assigned by the emitting operator.
    pub ts: Timestamp,
    /// Partitioning key.
    pub key: Key,
    /// Opaque payload; operators agree on its encoding out of band.
    #[serde(with = "serde_bytes_compat")]
    pub payload: Bytes,
}

/// `Bytes` does not implement serde out of the box in the configuration we
/// use, so (de)serialise it through a `Vec<u8>` view.
mod serde_bytes_compat {
    use bytes::Bytes;
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(b: &Bytes, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bytes(b)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Bytes, D::Error> {
        let v = Vec::<u8>::deserialize(d)?;
        Ok(Bytes::from(v))
    }
}

impl Tuple {
    /// Create a tuple from raw parts.
    pub fn new(ts: Timestamp, key: Key, payload: impl Into<Bytes>) -> Self {
        Tuple {
            ts,
            key,
            payload: payload.into(),
        }
    }

    /// Create a tuple by serialising a typed payload with `bincode`.
    pub fn encode<T: Serialize>(ts: Timestamp, key: Key, value: &T) -> crate::Result<Self> {
        let bytes = bincode::serialize(value)?;
        Ok(Tuple::new(ts, key, bytes))
    }

    /// Decode the payload back into a typed value.
    pub fn decode<T: for<'de> Deserialize<'de>>(&self) -> crate::Result<T> {
        Ok(bincode::deserialize(&self.payload)?)
    }

    /// Approximate in-memory size of the tuple in bytes (used by cost models
    /// and buffer accounting).
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Timestamp>() + std::mem::size_of::<Key>() + self.payload.len()
    }
}

/// A vector of per-input-stream timestamps (`τ_o` in the paper).
///
/// It records, for each input stream, the timestamp of the most recent tuple
/// that is reflected in an operator's processing state. It is attached to
/// every checkpoint so the SPS knows which buffered tuples still have to be
/// replayed after a restore and which are duplicates.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimestampVec {
    entries: BTreeMap<StreamId, Timestamp>,
}

impl TimestampVec {
    /// An empty timestamp vector (no tuple processed from any stream yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that tuples up to and including `ts` from `stream` are reflected
    /// in the state. Advancing never moves a timestamp backwards.
    pub fn advance(&mut self, stream: StreamId, ts: Timestamp) {
        let entry = self.entries.entry(stream).or_insert(0);
        if ts > *entry {
            *entry = ts;
        }
    }

    /// Force-set the timestamp for a stream, e.g. when restoring from a
    /// checkpoint (may move backwards).
    pub fn set(&mut self, stream: StreamId, ts: Timestamp) {
        self.entries.insert(stream, ts);
    }

    /// The most recent reflected timestamp for `stream`, or `None` if no tuple
    /// from that stream is reflected.
    pub fn get(&self, stream: StreamId) -> Option<Timestamp> {
        self.entries.get(&stream).copied()
    }

    /// Iterate over `(stream, timestamp)` pairs in stream order.
    pub fn iter(&self) -> impl Iterator<Item = (StreamId, Timestamp)> + '_ {
        self.entries.iter().map(|(s, t)| (*s, *t))
    }

    /// Number of streams tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no stream is tracked yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merge another timestamp vector, keeping the maximum per stream.
    /// Used when merging operator state for scale in.
    pub fn merge_max(&mut self, other: &TimestampVec) {
        for (s, t) in other.iter() {
            self.advance(s, t);
        }
    }

    /// Pointwise minimum of two vectors over the union of their streams;
    /// streams present in only one vector take timestamp 0 (nothing reflected).
    /// Used to decide how far upstream buffers can safely be trimmed when
    /// several downstream partitions back up to the same upstream operator.
    pub fn min_with(&self, other: &TimestampVec) -> TimestampVec {
        let mut out = TimestampVec::new();
        for (s, t) in self.iter() {
            let o = other.get(s).unwrap_or(0);
            out.set(s, t.min(o));
        }
        for (s, _) in other.iter() {
            if self.get(s).is_none() {
                out.set(s, 0);
            }
        }
        out
    }
}

impl FromIterator<(StreamId, Timestamp)> for TimestampVec {
    fn from_iter<I: IntoIterator<Item = (StreamId, Timestamp)>>(iter: I) -> Self {
        TimestampVec {
            entries: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_hash_is_stable() {
        assert_eq!(Key::from_str_key("first"), Key::from_str_key("first"));
        assert_ne!(Key::from_str_key("first"), Key::from_str_key("second"));
        assert_eq!(Key::from_u64(42), Key::from_u64(42));
        assert_ne!(Key::from_u64(42), Key::from_u64(43));
    }

    #[test]
    fn integer_keys_spread_across_key_space() {
        // Dense vehicle ids must not all land in the bottom of the key space,
        // otherwise even key-range splits would be useless.
        let keys: Vec<u64> = (0..1000u64).map(|v| Key::from_u64(v).raw()).collect();
        let below_mid = keys.iter().filter(|&&k| k < u64::MAX / 2).count();
        assert!(below_mid > 300 && below_mid < 700, "skewed: {below_mid}");
    }

    #[test]
    fn tuple_encode_decode_roundtrip() {
        #[derive(Serialize, Deserialize, PartialEq, Debug)]
        struct Payload {
            word: String,
            n: u32,
        }
        let p = Payload {
            word: "first".into(),
            n: 3,
        };
        let t = Tuple::encode(7, Key::from_str_key("first"), &p).unwrap();
        assert_eq!(t.ts, 7);
        let back: Payload = t.decode().unwrap();
        assert_eq!(back, p);
        assert!(t.size_bytes() > p.word.len());
    }

    #[test]
    fn tuple_serde_roundtrip_via_bincode() {
        let t = Tuple::new(1, Key::from_u64(9), vec![1, 2, 3]);
        let bytes = bincode::serialize(&t).unwrap();
        let back: Tuple = bincode::deserialize(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn timestamp_vec_advance_is_monotonic() {
        let mut tv = TimestampVec::new();
        assert!(tv.is_empty());
        tv.advance(StreamId(0), 5);
        tv.advance(StreamId(0), 3);
        assert_eq!(tv.get(StreamId(0)), Some(5));
        tv.advance(StreamId(0), 9);
        assert_eq!(tv.get(StreamId(0)), Some(9));
        assert_eq!(tv.get(StreamId(1)), None);
        assert_eq!(tv.len(), 1);
    }

    #[test]
    fn timestamp_vec_set_can_rewind() {
        let mut tv = TimestampVec::new();
        tv.advance(StreamId(0), 10);
        tv.set(StreamId(0), 4);
        assert_eq!(tv.get(StreamId(0)), Some(4));
    }

    #[test]
    fn timestamp_vec_merge_and_min() {
        let a: TimestampVec = [(StreamId(0), 10), (StreamId(1), 2)].into_iter().collect();
        let b: TimestampVec = [(StreamId(0), 4), (StreamId(2), 7)].into_iter().collect();

        let mut merged = a.clone();
        merged.merge_max(&b);
        assert_eq!(merged.get(StreamId(0)), Some(10));
        assert_eq!(merged.get(StreamId(1)), Some(2));
        assert_eq!(merged.get(StreamId(2)), Some(7));

        let min = a.min_with(&b);
        assert_eq!(min.get(StreamId(0)), Some(4));
        assert_eq!(min.get(StreamId(1)), Some(0));
        assert_eq!(min.get(StreamId(2)), Some(0));
    }
}
