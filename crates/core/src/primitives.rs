//! The state-management primitives of §3.2 (Algorithms 1 and 2).
//!
//! These functions tie together the operator trait, the three kinds of state
//! and the backup stores. The runtime (`seep-runtime`) and the simulator
//! (`seep-sim`) drive them; keeping them here, free of any threading or
//! networking concerns, makes them easy to test exhaustively.
//!
//! | Paper primitive | This module |
//! |---|---|
//! | `checkpoint-state(o)` | [`checkpoint_state`] |
//! | `backup-state(o)` (Algorithm 1) | [`BackupCoordinator::backup_state`] |
//! | `restore-state(o, θ, τ, β, ρ)` | [`restore_state`] |
//! | `replay-buffer-state(u, o)` | [`replay_buffer_state`] |
//! | `trim(o, τ)` | [`BufferState::trim`] |
//! | `partition-processing-state(o, π)` (Algorithm 2) | [`partition_checkpoint`] |
//! | `partition-routing-state(u, o, π)` | [`RoutingState::repartition`] |
//! | `partition-buffer-state(u)` | [`BufferState::repartition`] |

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::backup::{select_backup_operator, BackupStore};
use crate::checkpoint::Checkpoint;
use crate::error::{Error, Result};
use crate::key::KeyRange;
use crate::operator::{OperatorId, StatefulOperator};
use crate::state::{BufferState, RoutingState};
use crate::tuple::{StreamId, Timestamp, TimestampVec, Tuple};

/// Take a consistent checkpoint of an operator: `checkpoint-state(o) →
/// (θ_o, τ_o, β_o)`.
///
/// `sequence` is the checkpoint sequence number assigned by the caller (the
/// checkpointing coordinator increments it per operator). The timestamp
/// vector τ_o is whatever the operator recorded in its processing state via
/// [`crate::state::ProcessingState::advance_ts`]; the runtime keeps it up to
/// date as it feeds tuples to the operator.
pub fn checkpoint_state(
    operator_id: OperatorId,
    sequence: u64,
    operator: &dyn StatefulOperator,
    buffer: &BufferState,
) -> Checkpoint {
    let processing = operator.get_processing_state();
    Checkpoint::new(operator_id, sequence, processing, buffer.clone())
}

/// Restore a checkpoint into a fresh operator instance:
/// `restore-state(o, θ, τ, β, ρ)` (Algorithm 1, lines 8–9).
///
/// Sets the operator's processing state and returns the pieces the runtime
/// must install around it: the buffer state the restored operator starts
/// with, the timestamp vector it reflects (used to (a) reset the logical
/// clock so duplicates are detectable downstream and (b) discard replayed
/// tuples that are already reflected), and the routing state `ρ` passed
/// through for the runtime's dispatcher.
pub struct RestoredState {
    /// Buffer state the restored operator resumes with.
    pub buffer: BufferState,
    /// Timestamp vector reflected in the restored processing state.
    pub timestamps: TimestampVec,
    /// Routing state towards the operator's downstream partitions.
    pub routing: RoutingState,
}

/// See [`RestoredState`].
pub fn restore_state(
    operator: &mut dyn StatefulOperator,
    checkpoint: Checkpoint,
    routing: RoutingState,
) -> RestoredState {
    let timestamps = checkpoint.processing.timestamps().clone();
    operator.set_processing_state(checkpoint.processing);
    RestoredState {
        buffer: checkpoint.buffer,
        timestamps,
        routing,
    }
}

/// Replay the tuples buffered by upstream operator `u` towards operator `o`:
/// `replay-buffer-state(u, o)` (Algorithm 1, line 10).
///
/// Only tuples **newer** than the timestamp reflected in the restored state
/// are returned; older tuples are duplicates of work already captured by the
/// checkpoint. `stream` is the stream id of `u`'s output as seen by `o`.
pub fn replay_buffer_state(
    upstream_buffer: &BufferState,
    target: OperatorId,
    stream: StreamId,
    reflected: &TimestampVec,
) -> Vec<Tuple> {
    let floor: Timestamp = reflected.get(stream).unwrap_or(0);
    upstream_buffer
        .iter_for(target)
        .filter(|t| t.ts > floor)
        .cloned()
        .collect()
}

/// Partition a checkpoint into π partitions (Algorithm 2,
/// `partition-processing-state(o, π)`):
///
/// * the processing state is split by key range (line 5),
/// * the timestamp vector is copied to every partition (line 6),
/// * the buffer state goes to the first partition, the rest start empty
///   (line 7).
///
/// `new_operators` pairs each new partitioned operator with the key range it
/// owns and must have the same length as the number of partitions.
pub fn partition_checkpoint(
    checkpoint: &Checkpoint,
    new_operators: &[(OperatorId, KeyRange)],
) -> Result<Vec<Checkpoint>> {
    if new_operators.is_empty() {
        return Err(Error::InvalidParallelism(0));
    }
    let ranges: Vec<KeyRange> = new_operators.iter().map(|(_, r)| *r).collect();
    let states = checkpoint.processing.partition_by_ranges(&ranges);
    let buffers = checkpoint.buffer.assign_to_first(new_operators.len());
    Ok(new_operators
        .iter()
        .zip(states)
        .zip(buffers)
        .map(|(((op, _), processing), buffer)| Checkpoint::new(*op, 0, processing, buffer))
        .collect())
}

/// Registry mapping each operator to the [`BackupStore`] hosted on its VM.
///
/// In the real system every VM hosts a backup store for the downstream
/// operators that picked it; the registry is how the coordinator reaches the
/// store of a given upstream operator.
pub type BackupRegistry = HashMap<OperatorId, Arc<dyn BackupStore>>;

/// Coordinates `backup-state(o)` (Algorithm 1): selects the backup operator,
/// stores the checkpoint there, releases the previous backup when the choice
/// changes, and reports how far upstream buffers can be trimmed.
pub struct BackupCoordinator {
    stores: Mutex<BackupRegistry>,
    /// `backup(o)`: the upstream operator currently holding o's checkpoint.
    assignments: Mutex<HashMap<OperatorId, OperatorId>>,
}

impl Default for BackupCoordinator {
    fn default() -> Self {
        Self::new()
    }
}

impl BackupCoordinator {
    /// Create a coordinator with no registered stores.
    pub fn new() -> Self {
        BackupCoordinator {
            stores: Mutex::new(HashMap::new()),
            assignments: Mutex::new(HashMap::new()),
        }
    }

    /// Register the backup store hosted alongside `operator`.
    pub fn register_store(&self, operator: OperatorId, store: Arc<dyn BackupStore>) {
        self.stores.lock().insert(operator, store);
    }

    /// Remove the store hosted alongside `operator` (when its VM is released).
    pub fn unregister_store(&self, operator: OperatorId) {
        self.stores.lock().remove(&operator);
    }

    /// The upstream operator currently holding `operator`'s checkpoint, if any.
    pub fn backup_of(&self, operator: OperatorId) -> Option<OperatorId> {
        self.assignments.lock().get(&operator).copied()
    }

    /// Explicitly set `backup(o)` (used when partitioning assigns initial
    /// backups for new partitions, Algorithm 2 line 8).
    pub fn set_backup_of(&self, operator: OperatorId, backup: OperatorId) {
        self.assignments.lock().insert(operator, backup);
    }

    /// Forget the assignment for `operator` (when it is removed from the graph).
    pub fn clear_backup_of(&self, operator: OperatorId) {
        self.assignments.lock().remove(&operator);
    }

    /// The store hosted alongside `operator`.
    pub fn store_of(&self, operator: OperatorId) -> Result<Arc<dyn BackupStore>> {
        self.stores
            .lock()
            .get(&operator)
            .cloned()
            .ok_or(Error::UnknownOperator(operator))
    }

    /// `backup-state(o)` (Algorithm 1): store `checkpoint` at the upstream
    /// operator selected by hashing, release the previous backup if the
    /// selection changed, and return the chosen backup operator together with
    /// the timestamp vector up to which upstream output buffers may now be
    /// trimmed (line 4).
    pub fn backup_state(
        &self,
        operator: OperatorId,
        upstreams: &[OperatorId],
        checkpoint: Checkpoint,
    ) -> Result<BackupOutcome> {
        let chosen = select_backup_operator(operator, upstreams)
            .ok_or_else(|| Error::Invariant(format!("operator {operator} has no upstream")))?;
        let trim_to = checkpoint.processing.timestamps().clone();
        let store = self.store_of(chosen)?;
        store.store(operator, checkpoint);

        let previous = {
            let mut assignments = self.assignments.lock();
            assignments.insert(operator, chosen)
        };
        // Algorithm 1, lines 5-6: release the old backup if it moved.
        if let Some(prev) = previous {
            if prev != chosen {
                if let Ok(prev_store) = self.store_of(prev) {
                    prev_store.delete(operator);
                }
            }
        }
        Ok(BackupOutcome {
            backup_operator: chosen,
            trim_to,
        })
    }

    /// Retrieve the latest backed-up checkpoint of `operator`
    /// (`retrieve-backup(backup(o), o)`).
    pub fn retrieve(&self, operator: OperatorId) -> Result<Checkpoint> {
        let backup = self
            .backup_of(operator)
            .ok_or(Error::NoBackup(operator))?;
        self.store_of(backup)?.retrieve(operator)
    }

    /// Store partitioned checkpoints as the initial backups of the new
    /// partitions (Algorithm 2, line 8) and drop the replaced operator's
    /// backup. Each partition's backup lands on the store chosen by the same
    /// hash rule over `upstreams`.
    pub fn store_partitioned(
        &self,
        replaced: OperatorId,
        upstreams: &[OperatorId],
        partitions: &[Checkpoint],
    ) -> Result<()> {
        for cp in partitions {
            let chosen = select_backup_operator(cp.meta.operator, upstreams)
                .ok_or_else(|| Error::Invariant("no upstream for partition backup".into()))?;
            self.store_of(chosen)?.store(cp.meta.operator, cp.clone());
            self.assignments.lock().insert(cp.meta.operator, chosen);
        }
        // Afterwards backup(o) is removed safely from the system (line 8).
        if let Some(old_backup) = self.backup_of(replaced) {
            if let Ok(store) = self.store_of(old_backup) {
                store.delete(replaced);
            }
        }
        self.clear_backup_of(replaced);
        Ok(())
    }
}

/// Result of a successful `backup-state(o)` call.
#[derive(Debug, Clone)]
pub struct BackupOutcome {
    /// The upstream operator now holding the checkpoint (`backup(o)`).
    pub backup_operator: OperatorId,
    /// Upstream buffers towards `o` may be trimmed up to these timestamps.
    pub trim_to: TimestampVec,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backup::InMemoryBackupStore;
    use crate::operator::{OutputTuple, StatelessFn};
    use crate::state::ProcessingState;
    use crate::tuple::Key;

    /// A tiny stateful counter operator used by the primitive tests.
    struct Counter {
        counts: std::collections::BTreeMap<Key, u64>,
    }

    impl Counter {
        fn new() -> Self {
            Counter {
                counts: Default::default(),
            }
        }
    }

    impl StatefulOperator for Counter {
        fn process(&mut self, _s: StreamId, t: &Tuple, _out: &mut Vec<OutputTuple>) {
            *self.counts.entry(t.key).or_insert(0) += 1;
        }

        fn get_processing_state(&self) -> ProcessingState {
            let mut st = ProcessingState::empty();
            for (k, v) in &self.counts {
                st.insert_encoded(*k, v).unwrap();
            }
            st
        }

        fn set_processing_state(&mut self, state: ProcessingState) {
            self.counts.clear();
            for (k, _) in state.iter() {
                let v: u64 = state.get_decoded(k).unwrap().unwrap();
                self.counts.insert(k, v);
            }
        }

        fn name(&self) -> &str {
            "counter"
        }
    }

    fn feed(op: &mut Counter, keys: &[u64]) {
        let mut out = Vec::new();
        for (i, &k) in keys.iter().enumerate() {
            op.process(StreamId(0), &Tuple::new(i as u64 + 1, Key(k), vec![]), &mut out);
        }
    }

    #[test]
    fn checkpoint_and_restore_roundtrip() {
        let mut op = Counter::new();
        feed(&mut op, &[1, 2, 2, 3]);
        let mut buffer = BufferState::new();
        buffer.push(OperatorId::new(9), Tuple::new(4, Key(3), vec![]));

        let cp = checkpoint_state(OperatorId::new(5), 1, &op, &buffer);
        assert_eq!(cp.meta.operator, OperatorId::new(5));
        assert_eq!(cp.processing.len(), 3);
        assert_eq!(cp.buffer.len(), 1);

        let mut fresh = Counter::new();
        let restored = restore_state(&mut fresh, cp, RoutingState::single(OperatorId::new(9)));
        assert_eq!(fresh.counts.get(&Key(2)), Some(&2));
        assert_eq!(restored.buffer.len(), 1);
        assert_eq!(restored.routing.targets(), vec![OperatorId::new(9)]);
    }

    #[test]
    fn stateless_checkpoint_is_empty() {
        let op = StatelessFn::new("noop", |_, _, _: &mut Vec<OutputTuple>| {});
        let cp = checkpoint_state(OperatorId::new(1), 1, &op, &BufferState::new());
        assert!(cp.processing.is_empty());
    }

    #[test]
    fn replay_skips_tuples_reflected_in_checkpoint() {
        let target = OperatorId::new(3);
        let mut buffer = BufferState::new();
        for ts in 1..=10 {
            buffer.push(target, Tuple::new(ts, Key(ts), vec![]));
        }
        let mut reflected = TimestampVec::new();
        reflected.advance(StreamId(7), 6);
        let replayed = replay_buffer_state(&buffer, target, StreamId(7), &reflected);
        assert_eq!(replayed.len(), 4);
        assert_eq!(replayed[0].ts, 7);
        // A stream not present in the vector replays everything.
        let replayed_all = replay_buffer_state(&buffer, target, StreamId(8), &TimestampVec::new());
        assert_eq!(replayed_all.len(), 10);
    }

    #[test]
    fn partition_checkpoint_splits_state_and_assigns_buffer_to_first() {
        let mut op = Counter::new();
        feed(&mut op, &[1, 5, 9, 1_000_000]);
        let mut buffer = BufferState::new();
        buffer.push(OperatorId::new(42), Tuple::new(9, Key(5), vec![]));
        let mut cp = checkpoint_state(OperatorId::new(5), 3, &op, &buffer);
        cp.processing.advance_ts(StreamId(0), 4);

        let ranges = KeyRange::full().split_even(2).unwrap();
        let new_ops = [
            (OperatorId::new(10), ranges[0]),
            (OperatorId::new(11), ranges[1]),
        ];
        let parts = partition_checkpoint(&cp, &new_ops).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].meta.operator, OperatorId::new(10));
        let total: usize = parts.iter().map(|p| p.processing.len()).sum();
        assert_eq!(total, 4);
        // Buffer goes to the first partition only.
        assert_eq!(parts[0].buffer.len(), 1);
        assert!(parts[1].buffer.is_empty());
        // Timestamps copied to both partitions.
        for p in &parts {
            assert_eq!(p.processing.timestamps().get(StreamId(0)), Some(4));
        }
        assert!(partition_checkpoint(&cp, &[]).is_err());
    }

    fn coordinator_with_stores(ops: &[u64]) -> BackupCoordinator {
        let coord = BackupCoordinator::new();
        for &o in ops {
            coord.register_store(OperatorId::new(o), Arc::new(InMemoryBackupStore::new()));
        }
        coord
    }

    #[test]
    fn backup_state_stores_at_hashed_upstream_and_reports_trim() {
        let coord = coordinator_with_stores(&[1, 2]);
        let ups = [OperatorId::new(1), OperatorId::new(2)];
        let mut op = Counter::new();
        feed(&mut op, &[7, 8]);
        let mut cp = checkpoint_state(OperatorId::new(5), 1, &op, &BufferState::new());
        cp.processing.advance_ts(StreamId(1), 33);

        let outcome = coord
            .backup_state(OperatorId::new(5), &ups, cp.clone())
            .unwrap();
        assert!(ups.contains(&outcome.backup_operator));
        assert_eq!(outcome.trim_to.get(StreamId(1)), Some(33));
        assert_eq!(coord.backup_of(OperatorId::new(5)), Some(outcome.backup_operator));
        let retrieved = coord.retrieve(OperatorId::new(5)).unwrap();
        assert_eq!(retrieved.processing.len(), 2);
    }

    #[test]
    fn backup_state_releases_previous_backup_when_upstreams_change() {
        let coord = coordinator_with_stores(&[1, 2, 3]);
        let op5 = OperatorId::new(5);
        let cp = Checkpoint::empty(op5);

        // First backup with only upstream 1 available.
        let first = coord
            .backup_state(op5, &[OperatorId::new(1)], cp.clone())
            .unwrap();
        assert_eq!(first.backup_operator, OperatorId::new(1));

        // Upstream repartitioned: now ops 2 and 3 are upstream. The new choice
        // must land on one of them and the old backup must be deleted.
        let second = coord
            .backup_state(op5, &[OperatorId::new(2), OperatorId::new(3)], cp)
            .unwrap();
        assert_ne!(second.backup_operator, OperatorId::new(1));
        let old_store = coord.store_of(OperatorId::new(1)).unwrap();
        assert!(old_store.retrieve(op5).is_err(), "old backup not released");
        assert!(coord.retrieve(op5).is_ok());
    }

    #[test]
    fn backup_state_without_upstreams_is_an_error() {
        let coord = coordinator_with_stores(&[1]);
        let err = coord.backup_state(OperatorId::new(5), &[], Checkpoint::empty(OperatorId::new(5)));
        assert!(err.is_err());
    }

    #[test]
    fn backup_state_to_unregistered_store_is_an_error() {
        let coord = coordinator_with_stores(&[]);
        let err = coord.backup_state(
            OperatorId::new(5),
            &[OperatorId::new(1)],
            Checkpoint::empty(OperatorId::new(5)),
        );
        assert!(matches!(err, Err(Error::UnknownOperator(_))));
    }

    #[test]
    fn store_partitioned_sets_initial_backups_and_drops_old() {
        let coord = coordinator_with_stores(&[1, 2]);
        let ups = [OperatorId::new(1), OperatorId::new(2)];
        let old = OperatorId::new(5);
        coord.backup_state(old, &ups, Checkpoint::empty(old)).unwrap();

        let parts = vec![
            Checkpoint::empty(OperatorId::new(10)),
            Checkpoint::empty(OperatorId::new(11)),
        ];
        coord.store_partitioned(old, &ups, &parts).unwrap();
        assert!(coord.retrieve(OperatorId::new(10)).is_ok());
        assert!(coord.retrieve(OperatorId::new(11)).is_ok());
        assert!(coord.backup_of(old).is_none());
        assert!(matches!(coord.retrieve(old), Err(Error::NoBackup(_))));
    }

    #[test]
    fn unregister_store_makes_backups_unreachable() {
        let coord = coordinator_with_stores(&[1]);
        let op = OperatorId::new(5);
        coord
            .backup_state(op, &[OperatorId::new(1)], Checkpoint::empty(op))
            .unwrap();
        coord.unregister_store(OperatorId::new(1));
        assert!(coord.retrieve(op).is_err());
    }
}
