//! The state-management primitives of §3.2 (Algorithms 1 and 2).
//!
//! These functions tie together the operator trait, the three kinds of state
//! and the backup stores. The runtime (`seep-runtime`) and the simulator
//! (`seep-sim`) drive them; keeping them here, free of any threading or
//! networking concerns, makes them easy to test exhaustively.
//!
//! | Paper primitive | Where it lives |
//! |---|---|
//! | `checkpoint-state(o)` | [`checkpoint_state`] |
//! | `backup-state(o)` (Algorithm 1) | `seep-store`'s `BackupCoordinator::backup_state` |
//! | `restore-state(o, θ, τ, β, ρ)` | [`restore_state`] |
//! | `replay-buffer-state(u, o)` | [`replay_buffer_state`] |
//! | `trim(o, τ)` | [`BufferState::trim`] |
//! | `partition-processing-state(o, π)` (Algorithm 2) | [`partition_checkpoint`] |
//! | `partition-routing-state(u, o, π)` | [`RoutingState::repartition`] |
//! | `partition-buffer-state(u)` | [`BufferState::repartition`] |

use crate::checkpoint::Checkpoint;
use crate::error::{Error, Result};
use crate::key::KeyRange;
use crate::operator::{OperatorId, StatefulOperator};
use crate::state::{BufferState, RoutingState};
use crate::tuple::{StreamId, Timestamp, TimestampVec, Tuple};

/// Take a consistent checkpoint of an operator: `checkpoint-state(o) →
/// (θ_o, τ_o, β_o)`.
///
/// `sequence` is the checkpoint sequence number assigned by the caller (the
/// checkpointing coordinator increments it per operator). The timestamp
/// vector τ_o is whatever the operator recorded in its processing state via
/// [`crate::state::ProcessingState::advance_ts`]; the runtime keeps it up to
/// date as it feeds tuples to the operator.
pub fn checkpoint_state(
    operator_id: OperatorId,
    sequence: u64,
    operator: &dyn StatefulOperator,
    buffer: &BufferState,
) -> Checkpoint {
    let processing = operator.get_processing_state();
    Checkpoint::new(operator_id, sequence, processing, buffer.clone())
}

/// Restore a checkpoint into a fresh operator instance:
/// `restore-state(o, θ, τ, β, ρ)` (Algorithm 1, lines 8–9).
///
/// Sets the operator's processing state and returns the pieces the runtime
/// must install around it: the buffer state the restored operator starts
/// with, the timestamp vector it reflects (used to (a) reset the logical
/// clock so duplicates are detectable downstream and (b) discard replayed
/// tuples that are already reflected), and the routing state `ρ` passed
/// through for the runtime's dispatcher.
pub struct RestoredState {
    /// Buffer state the restored operator resumes with.
    pub buffer: BufferState,
    /// Timestamp vector reflected in the restored processing state.
    pub timestamps: TimestampVec,
    /// Routing state towards the operator's downstream partitions.
    pub routing: RoutingState,
}

/// See [`RestoredState`].
pub fn restore_state(
    operator: &mut dyn StatefulOperator,
    checkpoint: Checkpoint,
    routing: RoutingState,
) -> RestoredState {
    let timestamps = checkpoint.processing.timestamps().clone();
    operator.set_processing_state(checkpoint.processing);
    RestoredState {
        buffer: checkpoint.buffer,
        timestamps,
        routing,
    }
}

/// Replay the tuples buffered by upstream operator `u` towards operator `o`:
/// `replay-buffer-state(u, o)` (Algorithm 1, line 10).
///
/// Only tuples **newer** than the timestamp reflected in the restored state
/// are returned; older tuples are duplicates of work already captured by the
/// checkpoint. `stream` is the stream id of `u`'s output as seen by `o`.
pub fn replay_buffer_state(
    upstream_buffer: &BufferState,
    target: OperatorId,
    stream: StreamId,
    reflected: &TimestampVec,
) -> Vec<Tuple> {
    let floor: Timestamp = reflected.get(stream).unwrap_or(0);
    upstream_buffer
        .iter_for(target)
        .filter(|t| t.ts > floor)
        .cloned()
        .collect()
}

/// Partition a checkpoint into π partitions (Algorithm 2,
/// `partition-processing-state(o, π)`):
///
/// * the processing state is split by key range (line 5),
/// * the timestamp vector is copied to every partition (line 6),
/// * the buffer state goes to the first partition, the rest start empty
///   (line 7).
///
/// `new_operators` pairs each new partitioned operator with the key range it
/// owns and must have the same length as the number of partitions.
pub fn partition_checkpoint(
    checkpoint: &Checkpoint,
    new_operators: &[(OperatorId, KeyRange)],
) -> Result<Vec<Checkpoint>> {
    if new_operators.is_empty() {
        return Err(Error::InvalidParallelism(0));
    }
    let ranges: Vec<KeyRange> = new_operators.iter().map(|(_, r)| *r).collect();
    let states = checkpoint.processing.partition_by_ranges(&ranges);
    let buffers = checkpoint.buffer.assign_to_first(new_operators.len());
    let traffic = checkpoint.traffic.partition_by_ranges(&ranges);
    Ok(new_operators
        .iter()
        .zip(states)
        .zip(buffers)
        .zip(traffic)
        .map(|((((op, _), processing), buffer), traffic)| {
            Checkpoint::new(*op, 0, processing, buffer).with_traffic(traffic)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{OutputTuple, StatelessFn};
    use crate::state::ProcessingState;
    use crate::tuple::Key;

    /// A tiny stateful counter operator used by the primitive tests.
    struct Counter {
        counts: std::collections::BTreeMap<Key, u64>,
    }

    impl Counter {
        fn new() -> Self {
            Counter {
                counts: Default::default(),
            }
        }
    }

    impl StatefulOperator for Counter {
        fn process(&mut self, _s: StreamId, t: &Tuple, _out: &mut Vec<OutputTuple>) {
            *self.counts.entry(t.key).or_insert(0) += 1;
        }

        fn get_processing_state(&self) -> ProcessingState {
            let mut st = ProcessingState::empty();
            for (k, v) in &self.counts {
                st.insert_encoded(*k, v).unwrap();
            }
            st
        }

        fn set_processing_state(&mut self, state: ProcessingState) {
            self.counts.clear();
            for (k, _) in state.iter() {
                let v: u64 = state.get_decoded(k).unwrap().unwrap();
                self.counts.insert(k, v);
            }
        }

        fn name(&self) -> &str {
            "counter"
        }
    }

    fn feed(op: &mut Counter, keys: &[u64]) {
        let mut out = Vec::new();
        for (i, &k) in keys.iter().enumerate() {
            op.process(
                StreamId(0),
                &Tuple::new(i as u64 + 1, Key(k), vec![]),
                &mut out,
            );
        }
    }

    #[test]
    fn checkpoint_and_restore_roundtrip() {
        let mut op = Counter::new();
        feed(&mut op, &[1, 2, 2, 3]);
        let mut buffer = BufferState::new();
        buffer.push(OperatorId::new(9), Tuple::new(4, Key(3), vec![]));

        let cp = checkpoint_state(OperatorId::new(5), 1, &op, &buffer);
        assert_eq!(cp.meta.operator, OperatorId::new(5));
        assert_eq!(cp.processing.len(), 3);
        assert_eq!(cp.buffer.len(), 1);

        let mut fresh = Counter::new();
        let restored = restore_state(&mut fresh, cp, RoutingState::single(OperatorId::new(9)));
        assert_eq!(fresh.counts.get(&Key(2)), Some(&2));
        assert_eq!(restored.buffer.len(), 1);
        assert_eq!(restored.routing.targets(), vec![OperatorId::new(9)]);
    }

    #[test]
    fn stateless_checkpoint_is_empty() {
        let op = StatelessFn::new("noop", |_, _, _: &mut Vec<OutputTuple>| {});
        let cp = checkpoint_state(OperatorId::new(1), 1, &op, &BufferState::new());
        assert!(cp.processing.is_empty());
    }

    #[test]
    fn replay_skips_tuples_reflected_in_checkpoint() {
        let target = OperatorId::new(3);
        let mut buffer = BufferState::new();
        for ts in 1..=10 {
            buffer.push(target, Tuple::new(ts, Key(ts), vec![]));
        }
        let mut reflected = TimestampVec::new();
        reflected.advance(StreamId(7), 6);
        let replayed = replay_buffer_state(&buffer, target, StreamId(7), &reflected);
        assert_eq!(replayed.len(), 4);
        assert_eq!(replayed[0].ts, 7);
        // A stream not present in the vector replays everything.
        let replayed_all = replay_buffer_state(&buffer, target, StreamId(8), &TimestampVec::new());
        assert_eq!(replayed_all.len(), 10);
    }

    #[test]
    fn partition_checkpoint_splits_state_and_assigns_buffer_to_first() {
        let mut op = Counter::new();
        feed(&mut op, &[1, 5, 9, 1_000_000]);
        let mut buffer = BufferState::new();
        buffer.push(OperatorId::new(42), Tuple::new(9, Key(5), vec![]));
        let mut cp = checkpoint_state(OperatorId::new(5), 3, &op, &buffer);
        cp.processing.advance_ts(StreamId(0), 4);

        let ranges = KeyRange::full().split_even(2).unwrap();
        let new_ops = [
            (OperatorId::new(10), ranges[0]),
            (OperatorId::new(11), ranges[1]),
        ];
        let parts = partition_checkpoint(&cp, &new_ops).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].meta.operator, OperatorId::new(10));
        let total: usize = parts.iter().map(|p| p.processing.len()).sum();
        assert_eq!(total, 4);
        // Buffer goes to the first partition only.
        assert_eq!(parts[0].buffer.len(), 1);
        assert!(parts[1].buffer.is_empty());
        // Timestamps copied to both partitions.
        for p in &parts {
            assert_eq!(p.processing.timestamps().get(StreamId(0)), Some(4));
        }
        assert!(partition_checkpoint(&cp, &[]).is_err());
    }
}
