//! Per-key traffic statistics for skew detection.
//!
//! The checkpoint sample used by distribution-guided key splits originally
//! weighted keys by their **state footprint** — a proxy that works for
//! windowed aggregations (hot keys accumulate more state) but misrepresents
//! operators whose per-key state is constant-size. [`TrafficStats`] carries
//! the signal directly: the worker counts the tuples it processes per key and
//! decays the counters exponentially at every utilisation report, so old hot
//! spots fade instead of pinning the boundaries forever. Checkpoints embed a
//! copy, which travels through backups, merges and partitioning like the rest
//! of the operator state, and [`crate::Checkpoint::sample_keys`] prefers it
//! over the footprint heuristic whenever counts are available.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::key::KeyRange;
use crate::tuple::Key;

/// Decayed per-key tuple counters observed by a worker.
///
/// Counts are kept in fixed-point (`count << 8`) so repeated halving keeps
/// resolution for lukewarm keys; entries that decay to zero are dropped.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficStats {
    counts: BTreeMap<Key, u64>,
}

/// Fixed-point scale of one observed tuple.
const ONE: u64 = 1 << 8;

impl TrafficStats {
    /// Empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one processed tuple for `key`.
    pub fn record(&mut self, key: Key) {
        *self.counts.entry(key).or_insert(0) += ONE;
    }

    /// Halve every counter (one decay step), dropping entries that reach
    /// zero. Called once per utilisation-report interval, this gives a
    /// half-life of one interval: a key must keep receiving traffic to stay
    /// hot in the sample.
    pub fn decay(&mut self) {
        self.counts.retain(|_, c| {
            *c >>= 1;
            *c > 0
        });
    }

    /// Number of keys with a live counter.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no traffic has been recorded (or everything decayed away).
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The decayed count (in tuple units, rounded down) for `key`.
    pub fn count(&self, key: Key) -> u64 {
        self.counts.get(&key).copied().unwrap_or(0) / ONE
    }

    /// Merge another partition's counters into this one (scale in and the
    /// pooled sample of an N-way rebalance).
    pub fn merge(&mut self, other: &TrafficStats) {
        for (k, c) in &other.counts {
            *self.counts.entry(*k).or_insert(0) += c;
        }
    }

    /// Split the counters into one `TrafficStats` per key range, mirroring
    /// [`crate::state::ProcessingState::partition_by_ranges`]: each key goes
    /// to the first range containing it, keys covered by none are dropped.
    pub fn partition_by_ranges(&self, ranges: &[KeyRange]) -> Vec<TrafficStats> {
        let mut parts: Vec<TrafficStats> = ranges.iter().map(|_| TrafficStats::new()).collect();
        for (key, count) in &self.counts {
            if let Some(idx) = ranges.iter().position(|r| r.contains(*key)) {
                parts[idx].counts.insert(*key, *count);
            }
        }
        parts
    }

    /// A traffic-weighted key sample of at most `max` entries for
    /// [`KeyRange::split_by_distribution`], shaped like
    /// [`crate::state::ProcessingState::weighted_key_sample`]: every key
    /// appears at least once and hot keys are repeated in proportion to their
    /// share of the observed traffic. With more distinct keys than slots a
    /// uniform stride sub-sample is returned instead.
    ///
    /// [`KeyRange::split_by_distribution`]: crate::key::KeyRange::split_by_distribution
    pub fn weighted_sample(&self, max: usize) -> Vec<Key> {
        let pairs: Vec<(Key, u64)> = self.counts.iter().map(|(k, c)| (*k, *c)).collect();
        crate::key::weighted_multiset_sample(&pairs, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(counts: &[(u64, u64)]) -> TrafficStats {
        let mut t = TrafficStats::new();
        for &(k, n) in counts {
            for _ in 0..n {
                t.record(Key(k));
            }
        }
        t
    }

    #[test]
    fn record_and_count() {
        let t = stats_with(&[(1, 3), (2, 1)]);
        assert_eq!(t.count(Key(1)), 3);
        assert_eq!(t.count(Key(2)), 1);
        assert_eq!(t.count(Key(9)), 0);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn decay_halves_and_eventually_drops() {
        let mut t = stats_with(&[(1, 4), (2, 1)]);
        t.decay();
        assert_eq!(t.count(Key(1)), 2);
        // The fixed-point representation keeps sub-tuple residue alive for a
        // while, then drops the key entirely.
        for _ in 0..16 {
            t.decay();
        }
        assert!(t.is_empty(), "fully decayed keys are forgotten");
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = stats_with(&[(1, 2), (2, 1)]);
        let b = stats_with(&[(2, 3), (3, 1)]);
        a.merge(&b);
        assert_eq!(a.count(Key(1)), 2);
        assert_eq!(a.count(Key(2)), 4);
        assert_eq!(a.count(Key(3)), 1);
    }

    #[test]
    fn partition_respects_ranges_and_drops_uncovered() {
        let t = stats_with(&[(1, 1), (50, 2), (200, 3)]);
        let parts = t.partition_by_ranges(&[KeyRange::new(0, 9), KeyRange::new(10, 99)]);
        assert_eq!(parts[0].count(Key(1)), 1);
        assert_eq!(parts[1].count(Key(50)), 2);
        assert_eq!(parts[0].len() + parts[1].len(), 2, "key 200 dropped");
    }

    #[test]
    fn weighted_sample_repeats_hot_keys() {
        let t = stats_with(&[(1, 90), (2, 5), (3, 5)]);
        let sample = t.weighted_sample(100);
        assert!(sample.len() <= 100);
        let hot = sample.iter().filter(|k| **k == Key(1)).count();
        let cold = sample.iter().filter(|k| **k == Key(2)).count();
        assert!(hot > cold * 5, "hot key under-sampled: {hot} vs {cold}");
        for k in [Key(1), Key(2), Key(3)] {
            assert!(sample.contains(&k), "every key appears at least once");
        }
        // Degenerate inputs.
        assert!(TrafficStats::new().weighted_sample(10).is_empty());
        assert!(t.weighted_sample(0).is_empty());
        // More distinct keys than slots: stride sub-sample, no duplicates.
        let mut wide = TrafficStats::new();
        for k in 0..500u64 {
            wide.record(Key(k));
        }
        let sub = wide.weighted_sample(64);
        assert!(sub.len() <= 64 && sub.len() >= 32);
        let mut dedup = sub.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), sub.len());
    }

    #[test]
    fn serde_roundtrip() {
        let t = stats_with(&[(1, 2), (7, 9)]);
        let bytes = bincode::serialize(&t).unwrap();
        let back: TrafficStats = bincode::deserialize(&bytes).unwrap();
        assert_eq!(back, t);
    }
}
