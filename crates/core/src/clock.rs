//! Logical clocks (§2.2).
//!
//! Each operator assigns logical timestamps to the tuples it emits using a
//! monotonically increasing logical clock. After a restore, the clock is reset
//! to the timestamp recorded in the checkpoint so that downstream operators
//! can recognise re-emitted tuples as duplicates and discard them (§3.2,
//! *restore state*).

use serde::{Deserialize, Serialize};

use crate::tuple::Timestamp;

/// A monotonically increasing logical clock.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogicalClock {
    last: Timestamp,
}

impl LogicalClock {
    /// A clock that has not ticked yet (next tick returns 1).
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock resumed from a checkpointed timestamp: the next tick returns
    /// `last + 1`, re-generating the timestamps of any tuples emitted after
    /// the checkpoint was taken so duplicates are detectable downstream.
    pub fn resume_from(last: Timestamp) -> Self {
        LogicalClock { last }
    }

    /// Advance the clock and return the new timestamp.
    pub fn tick(&mut self) -> Timestamp {
        self.last += 1;
        self.last
    }

    /// The most recently issued timestamp (0 if none yet).
    pub fn last(&self) -> Timestamp {
        self.last
    }

    /// Reset the clock to `ts` (used by `restore-state`; may move backwards).
    pub fn reset_to(&mut self, ts: Timestamp) {
        self.last = ts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_strictly_increasing() {
        let mut c = LogicalClock::new();
        assert_eq!(c.last(), 0);
        let a = c.tick();
        let b = c.tick();
        assert_eq!(a, 1);
        assert_eq!(b, 2);
        assert!(b > a);
        assert_eq!(c.last(), 2);
    }

    #[test]
    fn resume_continues_from_checkpoint() {
        let mut c = LogicalClock::resume_from(41);
        assert_eq!(c.tick(), 42);
    }

    #[test]
    fn reset_rewinds_for_duplicate_detection() {
        let mut c = LogicalClock::new();
        for _ in 0..10 {
            c.tick();
        }
        // Restore from a checkpoint taken at ts=4: the clock replays 5, 6, ...
        c.reset_to(4);
        assert_eq!(c.tick(), 5);
    }
}
