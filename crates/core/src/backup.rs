//! Backup placement (§3.2, Algorithm 1).
//!
//! Each operator's checkpoints are backed up to one of its upstream operators,
//! chosen with a hash so that the backup load is spread across all upstream
//! partitions: `backup(o) = up(o)[hash(id(o)) mod |up(o)|]`. The upstream VM
//! that holds the backup is the one that later partitions it during scale out
//! or restores it during recovery.
//!
//! Where the backed-up checkpoints actually live is the job of the
//! `seep-store` crate: its `CheckpointStore` trait abstracts the storage
//! backend (in-memory, log-structured on disk, or tiered) and its
//! `BackupCoordinator` drives Algorithm 1 against the selection made here.

use crate::operator::OperatorId;

/// Select the upstream operator that stores `operator`'s checkpoints
/// (Algorithm 1, line 2: `i = hash(id(o)) mod |up(o)|`).
///
/// Returns `None` when the operator has no upstream operators (sources back
/// up nowhere; they are assumed not to fail, §2.2).
pub fn select_backup_operator(
    operator: OperatorId,
    upstreams: &[OperatorId],
) -> Option<OperatorId> {
    if upstreams.is_empty() {
        return None;
    }
    // Mix the id so consecutive operator ids do not all pick the same slot
    // when |up(o)| is small.
    let mut h = operator.raw().wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    let idx = (h % upstreams.len() as u64) as usize;
    Some(upstreams[idx])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backup_selection_is_deterministic_and_in_range() {
        let ups = vec![OperatorId::new(1), OperatorId::new(2), OperatorId::new(3)];
        let a = select_backup_operator(OperatorId::new(10), &ups).unwrap();
        let b = select_backup_operator(OperatorId::new(10), &ups).unwrap();
        assert_eq!(a, b);
        assert!(ups.contains(&a));
    }

    #[test]
    fn no_upstreams_means_no_backup() {
        assert!(select_backup_operator(OperatorId::new(10), &[]).is_none());
        assert!(select_backup_operator(OperatorId::new(0), &[]).is_none());
        assert!(select_backup_operator(OperatorId::new(u64::MAX), &[]).is_none());
    }

    #[test]
    fn single_upstream_is_always_chosen() {
        let ups = [OperatorId::new(42)];
        for o in 0..100u64 {
            assert_eq!(
                select_backup_operator(OperatorId::new(o), &ups),
                Some(OperatorId::new(42))
            );
        }
        assert_eq!(
            select_backup_operator(OperatorId::new(u64::MAX), &ups),
            Some(OperatorId::new(42))
        );
    }

    #[test]
    fn backup_selection_spreads_load() {
        // With many downstream operators and 4 upstream partitions, every
        // upstream should receive at least one backup assignment.
        let ups: Vec<OperatorId> = (0..4).map(OperatorId::new).collect();
        let mut counts = [0usize; 4];
        for o in 100..200u64 {
            let chosen = select_backup_operator(OperatorId::new(o), &ups).unwrap();
            counts[chosen.raw() as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 5), "unbalanced: {counts:?}");
    }

    #[test]
    fn spread_over_many_upstreams_is_roughly_uniform() {
        // 16 upstream partitions, 1600 downstream operators: each upstream
        // should hold close to 100 backups; a hash that collapses to a few
        // slots would show extreme counts.
        let ups: Vec<OperatorId> = (0..16).map(OperatorId::new).collect();
        let mut counts = vec![0usize; 16];
        for o in 1_000..2_600u64 {
            let chosen = select_backup_operator(OperatorId::new(o), &ups).unwrap();
            counts[chosen.raw() as usize] += 1;
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(min >= 50, "some upstream is starved: {counts:?}");
        assert!(max <= 200, "some upstream is overloaded: {counts:?}");
    }

    #[test]
    fn consecutive_operator_ids_do_not_collapse_to_one_slot() {
        // The raw ids 0..8 are consecutive; with 2 upstreams a naive
        // `id % 2` would alternate but a broken mix could map them all to
        // slot 0. Require both slots to be used.
        let ups = [OperatorId::new(100), OperatorId::new(200)];
        let chosen: std::collections::BTreeSet<OperatorId> = (0..8)
            .map(|o| select_backup_operator(OperatorId::new(o), &ups).unwrap())
            .collect();
        assert_eq!(chosen.len(), 2, "both upstreams must be selected");
    }

    #[test]
    fn selection_depends_only_on_position_not_identity() {
        // The paper's rule hashes the downstream id against the *list* of
        // upstreams; replacing an upstream id keeps the chosen index stable.
        let a = [OperatorId::new(1), OperatorId::new(2)];
        let b = [OperatorId::new(7), OperatorId::new(9)];
        for o in 0..50u64 {
            let ia = a
                .iter()
                .position(|u| Some(*u) == select_backup_operator(OperatorId::new(o), &a))
                .unwrap();
            let ib = b
                .iter()
                .position(|u| Some(*u) == select_backup_operator(OperatorId::new(o), &b))
                .unwrap();
            assert_eq!(ia, ib);
        }
    }
}
