//! Backup placement and backup stores (§3.2, Algorithm 1).
//!
//! Each operator's checkpoints are backed up to one of its upstream operators,
//! chosen with a hash so that the backup load is spread across all upstream
//! partitions: `backup(o) = up(o)[hash(id(o)) mod |up(o)|]`. The upstream VM
//! that holds the backup is the one that later partitions it during scale out
//! or restores it during recovery.
//!
//! [`BackupStore`] abstracts where backed-up checkpoints live; the in-memory
//! implementation is used by the threaded runtime (each upstream worker owns
//! one) and by the simulator.

use std::collections::HashMap;

use parking_lot::RwLock;

use crate::checkpoint::{Checkpoint, IncrementalCheckpoint};
use crate::error::{Error, Result};
use crate::operator::OperatorId;

/// Select the upstream operator that stores `operator`'s checkpoints
/// (Algorithm 1, line 2: `i = hash(id(o)) mod |up(o)|`).
///
/// Returns `None` when the operator has no upstream operators (sources back
/// up nowhere; they are assumed not to fail, §2.2).
pub fn select_backup_operator(
    operator: OperatorId,
    upstreams: &[OperatorId],
) -> Option<OperatorId> {
    if upstreams.is_empty() {
        return None;
    }
    // Mix the id so consecutive operator ids do not all pick the same slot
    // when |up(o)| is small.
    let mut h = operator.raw().wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    let idx = (h % upstreams.len() as u64) as usize;
    Some(upstreams[idx])
}

/// Storage for backed-up operator checkpoints.
///
/// One logical store exists per *backup operator* (the upstream VM holding
/// the checkpoints of its downstream operators). Keys are the operator whose
/// state is stored, so a single upstream can hold backups for several
/// downstream partitions.
pub trait BackupStore: Send + Sync {
    /// Store (replacing any previous) the checkpoint of `owner`.
    fn store(&self, owner: OperatorId, checkpoint: Checkpoint);

    /// Apply an incremental checkpoint on top of the stored base. Returns an
    /// error if no base checkpoint is stored or the sequences do not line up.
    fn apply_increment(&self, owner: OperatorId, inc: &IncrementalCheckpoint) -> Result<()>;

    /// Retrieve a copy of the stored checkpoint of `owner`.
    fn retrieve(&self, owner: OperatorId) -> Result<Checkpoint>;

    /// Delete the stored checkpoint of `owner` (e.g. when the backup operator
    /// changes after repartitioning — Algorithm 1, lines 5–6). Returns whether
    /// a checkpoint was present.
    fn delete(&self, owner: OperatorId) -> bool;

    /// Operators that currently have a checkpoint stored here.
    fn owners(&self) -> Vec<OperatorId>;

    /// Total bytes of stored checkpoints (for overhead accounting).
    fn size_bytes(&self) -> usize;
}

/// A thread-safe in-memory backup store.
#[derive(Debug, Default)]
pub struct InMemoryBackupStore {
    inner: RwLock<HashMap<OperatorId, Checkpoint>>,
}

impl InMemoryBackupStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of checkpoints stored.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

impl BackupStore for InMemoryBackupStore {
    fn store(&self, owner: OperatorId, checkpoint: Checkpoint) {
        self.inner.write().insert(owner, checkpoint);
    }

    fn apply_increment(&self, owner: OperatorId, inc: &IncrementalCheckpoint) -> Result<()> {
        let mut map = self.inner.write();
        let base = map.get_mut(&owner).ok_or(Error::NoBackup(owner))?;
        if base.meta.sequence != inc.base_sequence {
            return Err(Error::Invariant(format!(
                "incremental checkpoint base {} does not match stored sequence {}",
                inc.base_sequence, base.meta.sequence
            )));
        }
        base.apply_increment(inc);
        Ok(())
    }

    fn retrieve(&self, owner: OperatorId) -> Result<Checkpoint> {
        self.inner
            .read()
            .get(&owner)
            .cloned()
            .ok_or(Error::NoBackup(owner))
    }

    fn delete(&self, owner: OperatorId) -> bool {
        self.inner.write().remove(&owner).is_some()
    }

    fn owners(&self) -> Vec<OperatorId> {
        let mut v: Vec<OperatorId> = self.inner.read().keys().copied().collect();
        v.sort();
        v
    }

    fn size_bytes(&self) -> usize {
        self.inner.read().values().map(Checkpoint::size_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{BufferState, ProcessingState};
    use crate::tuple::{Key, StreamId};

    fn checkpoint(op: u64, seq: u64) -> Checkpoint {
        let mut st = ProcessingState::empty();
        st.insert(Key(op), vec![op as u8]);
        st.advance_ts(StreamId(0), seq);
        Checkpoint::new(OperatorId::new(op), seq, st, BufferState::new())
    }

    #[test]
    fn backup_selection_is_deterministic_and_in_range() {
        let ups = vec![OperatorId::new(1), OperatorId::new(2), OperatorId::new(3)];
        let a = select_backup_operator(OperatorId::new(10), &ups).unwrap();
        let b = select_backup_operator(OperatorId::new(10), &ups).unwrap();
        assert_eq!(a, b);
        assert!(ups.contains(&a));
        assert!(select_backup_operator(OperatorId::new(10), &[]).is_none());
    }

    #[test]
    fn backup_selection_spreads_load() {
        // With many downstream operators and 4 upstream partitions, every
        // upstream should receive at least one backup assignment.
        let ups: Vec<OperatorId> = (0..4).map(OperatorId::new).collect();
        let mut counts = [0usize; 4];
        for o in 100..200u64 {
            let chosen = select_backup_operator(OperatorId::new(o), &ups).unwrap();
            counts[chosen.raw() as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 5), "unbalanced: {counts:?}");
    }

    #[test]
    fn store_retrieve_delete() {
        let store = InMemoryBackupStore::new();
        assert!(store.is_empty());
        let cp = checkpoint(7, 1);
        store.store(OperatorId::new(7), cp.clone());
        assert_eq!(store.len(), 1);
        assert_eq!(store.retrieve(OperatorId::new(7)).unwrap(), cp);
        assert!(store.size_bytes() > 0);
        assert_eq!(store.owners(), vec![OperatorId::new(7)]);
        assert!(store.delete(OperatorId::new(7)));
        assert!(!store.delete(OperatorId::new(7)));
        assert!(matches!(
            store.retrieve(OperatorId::new(7)),
            Err(Error::NoBackup(_))
        ));
    }

    #[test]
    fn newer_checkpoint_replaces_older() {
        let store = InMemoryBackupStore::new();
        store.store(OperatorId::new(7), checkpoint(7, 1));
        store.store(OperatorId::new(7), checkpoint(7, 2));
        assert_eq!(store.retrieve(OperatorId::new(7)).unwrap().meta.sequence, 2);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn incremental_backup_applies_on_base() {
        let store = InMemoryBackupStore::new();
        let base = checkpoint(7, 1);
        store.store(OperatorId::new(7), base.clone());

        let mut current = base.clone();
        current.meta.sequence = 2;
        current.processing.insert(Key(99), vec![9]);
        let inc = IncrementalCheckpoint::diff(&base, &current);

        store.apply_increment(OperatorId::new(7), &inc).unwrap();
        let stored = store.retrieve(OperatorId::new(7)).unwrap();
        assert_eq!(stored.meta.sequence, 2);
        assert!(stored.processing.get(Key(99)).is_some());

        // Wrong base sequence is rejected.
        assert!(store.apply_increment(OperatorId::new(7), &inc).is_err());
        // Unknown owner is rejected.
        assert!(store.apply_increment(OperatorId::new(8), &inc).is_err());
    }
}
