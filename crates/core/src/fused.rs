//! Operator fusion: several stateless logical operators executed in-stack as
//! one physical operator.
//!
//! The paper's model (§2.2) makes the *operator* the unit of state
//! management, but a chain of stateless transforms carries no state to
//! manage — every hop between them pays channel serialisation, dedup
//! admission and clock bookkeeping for nothing. [`FusedOperator`] collapses
//! such a chain into one physical operator whose
//! [`process_batch`](crate::StatefulOperator::process_batch) runs every stage
//! in a plain call stack: tuples cross **zero** channels, zero duplicate
//! filters and zero clock bumps between fused stages.
//!
//! Fusion is a *physical* concern and must stay invisible to the logical
//! plane, so the combinator keeps enough accounting to attribute metrics
//! back to the logical stages it swallowed:
//!
//! * per-instance stage counts ([`FusionStageStats`], surfaced through
//!   [`StatefulOperator::fusion_stages`])
//!   let health reports expand one fused instance into one row per logical
//!   operator, and
//! * cumulative per-stage emission counters shared across all partitions of
//!   the fused unit ([`FusedFactory::cumulative_emitted`]) stand in for the
//!   emit clocks the interior stages no longer have.
//!
//! Interior stages must be pure stateless transforms of `(key, payload)`:
//! they never observe the interior tuples' logical timestamps (the fused
//! unit's output clock stamps only the final stage's outputs, exactly as the
//! unfused chain's last operator would).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::batch::BatchOutput;
use crate::operator::{OperatorFactory, OutputTuple, StatefulOperator};
use crate::state::ProcessingState;
use crate::tuple::{StreamId, Tuple};

/// Per-stage attribution counts of one fused operator *instance*.
///
/// `processed` counts the inputs the stage consumed in this instance;
/// `emitted` the outputs it produced. For the head stage `processed` equals
/// the instance's admitted input count; for every later stage it equals the
/// previous stage's `emitted` (the chain runs in-stack, nothing is dropped
/// between stages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionStageStats {
    /// Name of the logical operator this stage executes.
    pub name: String,
    /// Inputs consumed by this stage in this instance.
    pub processed: u64,
    /// Outputs produced by this stage in this instance.
    pub emitted: u64,
}

struct FusedStage {
    name: String,
    op: Box<dyn StatefulOperator>,
    /// Inputs consumed by this stage in this instance.
    processed: u64,
    /// Outputs produced by this stage in this instance.
    emitted: u64,
    /// Outputs produced by this stage across *all* partitions of the fused
    /// unit, cumulative over the deployment's lifetime (owned by the
    /// [`FusedFactory`], shared into every instance it builds).
    cumulative: Arc<AtomicU64>,
}

impl FusedStage {
    fn note_emitted(&mut self, n: usize) {
        self.emitted += n as u64;
        self.cumulative.fetch_add(n as u64, Ordering::Relaxed);
    }
}

/// A chain of stateless operators run in-stack as one physical operator.
///
/// Built by [`FusedFactory`]; the runtime treats it like any other stateless
/// operator (empty processing state, checkpoints are trivial), so fused
/// units scale out, migrate, consolidate and recover exactly like the
/// operators they replace.
pub struct FusedOperator {
    label: String,
    stages: Vec<FusedStage>,
    /// Stream id of the last input seen; reused when periodic tick output of
    /// an early stage is fed through the remaining stages.
    last_stream: StreamId,
}

impl FusedOperator {
    /// The number of fused stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Feed `cur` (outputs of stage `from - 1`) through stages `from..`,
    /// appending the survivors of the final stage to `out`. Interior tuples
    /// reuse `ts`; the timestamp is never observable (stateless transforms
    /// ignore it and the runtime re-stamps the final outputs from the fused
    /// unit's clock).
    fn run_tail(
        &mut self,
        from: usize,
        ts: u64,
        mut cur: Vec<OutputTuple>,
        out: &mut Vec<OutputTuple>,
    ) {
        for k in from..self.stages.len() {
            if cur.is_empty() {
                return;
            }
            let stage = &mut self.stages[k];
            stage.processed += cur.len() as u64;
            let mut next = Vec::with_capacity(cur.len());
            for o in cur.drain(..) {
                let t = o.with_ts(ts);
                stage.op.process(self.last_stream, &t, &mut next);
            }
            stage.note_emitted(next.len());
            cur = next;
        }
        out.append(&mut cur);
    }
}

impl StatefulOperator for FusedOperator {
    fn process(&mut self, stream: StreamId, tuple: &Tuple, out: &mut Vec<OutputTuple>) {
        self.last_stream = stream;
        let head = &mut self.stages[0];
        head.processed += 1;
        let mut cur = Vec::new();
        head.op.process(stream, tuple, &mut cur);
        head.note_emitted(cur.len());
        self.run_tail(1, tuple.ts, cur, out);
    }

    fn process_batch(&mut self, stream: StreamId, tuples: &[Tuple], out: &mut BatchOutput) {
        self.last_stream = stream;
        let last = self.stages.len() - 1;

        let head = &mut self.stages[0];
        head.processed += tuples.len() as u64;
        let mut head_out = BatchOutput::new();
        head.op.process_batch(stream, tuples, &mut head_out);
        head.note_emitted(head_out.len());

        // The chain threads `(origin, tuple)` pairs so every final output is
        // attributed to the index of the *original* input that produced it —
        // that attribution is what keeps per-tuple latency accounting exact
        // across the fused unit.
        let mut cur: Vec<Tuple> = Vec::with_capacity(head_out.len());
        let mut origin: Vec<usize> = Vec::with_capacity(head_out.len());
        for (src, o) in head_out.into_items() {
            let ts = tuples[src].ts;
            origin.push(src);
            cur.push(o.with_ts(ts));
        }

        for k in 1..=last {
            if cur.is_empty() {
                return;
            }
            let stage = &mut self.stages[k];
            stage.processed += cur.len() as u64;
            let mut stage_out = BatchOutput::new();
            stage.op.process_batch(stream, &cur, &mut stage_out);
            stage.note_emitted(stage_out.len());
            if k == last {
                for (i, o) in stage_out.into_items() {
                    out.set_source(origin[i]);
                    out.push(o);
                }
            } else {
                let mut next = Vec::with_capacity(stage_out.len());
                let mut next_origin = Vec::with_capacity(stage_out.len());
                for (i, o) in stage_out.into_items() {
                    let ts = cur[i].ts;
                    next_origin.push(origin[i]);
                    next.push(o.with_ts(ts));
                }
                cur = next;
                origin = next_origin;
            }
        }
    }

    fn get_processing_state(&self) -> ProcessingState {
        // Every stage is stateless, so the fused unit's processing state is
        // the empty set — checkpoints and partitioned restores are trivial.
        ProcessingState::empty()
    }

    fn set_processing_state(&mut self, _state: ProcessingState) {}

    fn is_stateful(&self) -> bool {
        false
    }

    fn on_tick(&mut self, now_ms: u64, out: &mut Vec<OutputTuple>) {
        for k in 0..self.stages.len() {
            let mut local = Vec::new();
            self.stages[k].op.on_tick(now_ms, &mut local);
            if local.is_empty() {
                continue;
            }
            self.stages[k].note_emitted(local.len());
            // Periodic output of stage k flows through the rest of the chain
            // like any other emission. Tick outputs carry no input timestamp;
            // interior ts 0 is as unobservable as any other.
            self.run_tail(k + 1, 0, local, out);
        }
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn fusion_stages(&self) -> Option<Vec<FusionStageStats>> {
        Some(
            self.stages
                .iter()
                .map(|s| FusionStageStats {
                    name: s.name.clone(),
                    processed: s.processed,
                    emitted: s.emitted,
                })
                .collect(),
        )
    }
}

/// Factory building [`FusedOperator`] instances for one fused unit.
///
/// The factory owns the per-stage cumulative emission counters and shares
/// them into every instance it builds, so partitions created later — by
/// scale out, rebalancing, consolidation or recovery — keep adding to the
/// same logical totals.
pub struct FusedFactory {
    label: String,
    stages: Vec<(String, Arc<dyn OperatorFactory>, Arc<AtomicU64>)>,
}

impl FusedFactory {
    /// A factory fusing `members` (name + factory per logical stage, in
    /// chain order). At least two stages are required — fusing one operator
    /// is the operator itself.
    ///
    /// `label` is the fused unit's physical operator name; by convention it
    /// contains every member name (e.g. `"fused:a+b"`) so journal entries
    /// addressing the unit stay greppable by logical operator.
    pub fn new(label: impl Into<String>, members: Vec<(String, Arc<dyn OperatorFactory>)>) -> Self {
        assert!(members.len() >= 2, "a fused unit needs at least two stages");
        FusedFactory {
            label: label.into(),
            stages: members
                .into_iter()
                .map(|(name, factory)| (name, factory, Arc::new(AtomicU64::new(0))))
                .collect(),
        }
    }

    /// A conventional label for a fused chain: `fused:a+b+c`.
    pub fn label_for(members: &[&str]) -> String {
        format!("fused:{}", members.join("+"))
    }

    /// Names of the fused stages, in chain order.
    pub fn member_names(&self) -> Vec<&str> {
        self.stages.iter().map(|(n, _, _)| n.as_str()).collect()
    }

    /// The cumulative emission counter of stage `index`: outputs produced by
    /// that stage across all partitions of the unit over the deployment's
    /// lifetime. This is the attribution source for the emit clock of an
    /// interior fused stage.
    pub fn cumulative_emitted(&self, index: usize) -> Arc<AtomicU64> {
        self.stages[index].2.clone()
    }
}

impl OperatorFactory for FusedFactory {
    fn build(&self) -> Box<dyn StatefulOperator> {
        Box::new(FusedOperator {
            label: self.label.clone(),
            stages: self
                .stages
                .iter()
                .map(|(name, factory, cumulative)| FusedStage {
                    name: name.clone(),
                    op: factory.build(),
                    processed: 0,
                    emitted: 0,
                    cumulative: cumulative.clone(),
                })
                .collect(),
            last_stream: StreamId(0),
        })
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{IntoOperatorFactory, StatelessFn};
    use crate::tuple::Key;

    fn passthrough(name: &str) -> Arc<dyn OperatorFactory> {
        let name = name.to_string();
        (move || {
            StatelessFn::new(name.clone(), |_, t: &Tuple, out: &mut Vec<OutputTuple>| {
                out.push(OutputTuple::new(t.key, t.payload.clone()));
            })
        })
        .into_factory()
    }

    /// Emits one tuple per input byte, keyed by the byte value.
    fn expander(name: &str) -> Arc<dyn OperatorFactory> {
        let name = name.to_string();
        (move || {
            StatelessFn::new(name.clone(), |_, t: &Tuple, out: &mut Vec<OutputTuple>| {
                for &b in t.payload.iter() {
                    out.push(OutputTuple::new(Key(u64::from(b)), vec![b]));
                }
            })
        })
        .into_factory()
    }

    #[test]
    fn fused_chain_matches_sequential_stages() {
        let factory = FusedFactory::new(
            "fused:expand+keep",
            vec![
                ("expand".into(), expander("expand")),
                ("keep".into(), passthrough("keep")),
            ],
        );
        let mut fused = factory.build();
        let tuple = Tuple::new(7, Key(1), vec![2, 3, 4]);
        let mut out = Vec::new();
        fused.process(StreamId(0), &tuple, &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].key, Key(2));
        assert_eq!(out[2].key, Key(4));
        assert!(!fused.is_stateful());
        assert!(fused.get_processing_state().is_empty());
        assert_eq!(fused.name(), "fused:expand+keep");
    }

    #[test]
    fn batch_attribution_maps_back_to_original_inputs() {
        let factory = FusedFactory::new(
            "fused:expand+keep",
            vec![
                ("expand".into(), expander("expand")),
                ("keep".into(), passthrough("keep")),
            ],
        );
        let mut fused = factory.build();
        let tuples = vec![
            Tuple::new(1, Key(1), vec![10, 11]),
            Tuple::new(2, Key(2), vec![]),
            Tuple::new(3, Key(3), vec![12]),
        ];
        let mut out = BatchOutput::new();
        fused.process_batch(StreamId(0), &tuples, &mut out);
        let items = out.into_items();
        // Input 0 expands to two outputs, input 1 to none, input 2 to one —
        // each output attributed to the input that produced it.
        let sources: Vec<usize> = items.iter().map(|(s, _)| *s).collect();
        assert_eq!(sources, vec![0, 0, 2]);
    }

    #[test]
    fn stage_stats_and_cumulative_counters_attribute_per_member() {
        let factory = FusedFactory::new(
            "fused:expand+keep",
            vec![
                ("expand".into(), expander("expand")),
                ("keep".into(), passthrough("keep")),
            ],
        );
        let expand_emitted = factory.cumulative_emitted(0);
        let keep_emitted = factory.cumulative_emitted(1);

        // Two partitions of the same unit share the cumulative counters.
        let mut a = factory.build();
        let mut b = factory.build();
        let mut out = BatchOutput::new();
        a.process_batch(StreamId(0), &[Tuple::new(1, Key(1), vec![1, 2])], &mut out);
        let mut scratch = Vec::new();
        b.process(StreamId(0), &Tuple::new(2, Key(2), vec![3]), &mut scratch);

        assert_eq!(expand_emitted.load(Ordering::Relaxed), 3);
        assert_eq!(keep_emitted.load(Ordering::Relaxed), 3);

        let stats = a.fusion_stages().expect("fused instances report stages");
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].name, "expand");
        assert_eq!(stats[0].processed, 1);
        assert_eq!(stats[0].emitted, 2);
        assert_eq!(stats[1].processed, 2);
        assert_eq!(stats[1].emitted, 2);
    }

    #[test]
    fn tick_output_flows_through_later_stages() {
        struct Ticker;
        impl StatefulOperator for Ticker {
            fn process(&mut self, _: StreamId, _: &Tuple, _: &mut Vec<OutputTuple>) {}
            fn get_processing_state(&self) -> ProcessingState {
                ProcessingState::empty()
            }
            fn set_processing_state(&mut self, _: ProcessingState) {}
            fn is_stateful(&self) -> bool {
                false
            }
            fn on_tick(&mut self, now_ms: u64, out: &mut Vec<OutputTuple>) {
                out.push(OutputTuple::new(Key(now_ms), vec![now_ms as u8]));
            }
        }
        let factory = FusedFactory::new(
            "fused:tick+expand",
            vec![
                ("tick".into(), (|| Ticker).into_factory()),
                ("expand".into(), expander("expand")),
            ],
        );
        let mut fused = factory.build();
        let mut out = Vec::new();
        fused.on_tick(9, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].key, Key(9));
        let stats = fused.fusion_stages().unwrap();
        assert_eq!(stats[0].emitted, 1);
        assert_eq!(stats[1].processed, 1);
    }

    #[test]
    fn label_convention_contains_member_names() {
        assert_eq!(FusedFactory::label_for(&["a", "b", "c"]), "fused:a+b+c");
    }

    #[test]
    #[should_panic(expected = "at least two stages")]
    fn single_stage_fusion_is_rejected() {
        let _ = FusedFactory::new("fused:x", vec![("x".into(), passthrough("x"))]);
    }
}
