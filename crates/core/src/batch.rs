//! Tuple batches: the unit of transport and processing on the batched data
//! plane.
//!
//! The paper's per-tuple model (§2.2) stays the *semantic* contract — a batch
//! is nothing more than a run of consecutive tuples from one producer, sent
//! in one envelope and processed in one operator call. Batching amortises the
//! per-tuple costs of the hot path (channel serialisation, dedup probes,
//! clock bumps, dispatch bookkeeping) without changing any observable
//! behaviour: a batch size of 1 reproduces the seed per-tuple path exactly,
//! and `tests/batch_equivalence.rs` holds every batch size to the same sink
//! outputs, counts and emit clocks as the per-tuple run.

use serde::{Deserialize, Serialize};

use crate::operator::OutputTuple;
use crate::tuple::{Timestamp, Tuple};

/// A run of consecutive tuples from one producer towards one receiver.
///
/// Tuples in a batch carry strictly increasing timestamps (the producer
/// assigns them from one contiguous logical-clock block), which is what lets
/// the receiver's duplicate filter admit or reject the whole batch with a
/// single watermark comparison. `emitted_at_us[i]` is the source emit time of
/// `tuples[i]`, preserved per tuple so sink latency stays per-tuple-accurate
/// at any batch size.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TupleBatch {
    /// The tuples, in producer emit order.
    pub tuples: Vec<Tuple>,
    /// Per-tuple source emit times (µs since the runtime epoch; 0 = unknown),
    /// parallel to `tuples`.
    pub emitted_at_us: Vec<u64>,
}

impl TupleBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty batch with room for `capacity` tuples.
    pub fn with_capacity(capacity: usize) -> Self {
        TupleBatch {
            tuples: Vec::with_capacity(capacity),
            emitted_at_us: Vec::with_capacity(capacity),
        }
    }

    /// Append one tuple with its source emit time.
    pub fn push(&mut self, tuple: Tuple, emitted_at_us: u64) {
        self.tuples.push(tuple);
        self.emitted_at_us.push(emitted_at_us);
    }

    /// Number of tuples in the batch.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the batch holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Timestamp of the first tuple, if any.
    pub fn first_ts(&self) -> Option<Timestamp> {
        self.tuples.first().map(|t| t.ts)
    }

    /// Timestamp of the last tuple, if any.
    pub fn last_ts(&self) -> Option<Timestamp> {
        self.tuples.last().map(|t| t.ts)
    }
}

/// Outputs of a [`process_batch`](crate::operator::StatefulOperator::process_batch)
/// call, each attributed to the index of the input tuple that produced it.
///
/// The attribution is what keeps end-to-end latency per-tuple-accurate on the
/// batched plane: the runtime maps an output back to its input's source emit
/// time when forwarding, exactly as the per-tuple path threads
/// `emitted_at_us` through `process`.
#[derive(Debug, Default)]
pub struct BatchOutput {
    items: Vec<(usize, OutputTuple)>,
    source: usize,
}

impl BatchOutput {
    /// An empty output set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the input-tuple index subsequent [`push`](Self::push) calls are
    /// attributed to.
    pub fn set_source(&mut self, index: usize) {
        self.source = index;
    }

    /// Append an output attributed to the current source index.
    pub fn push(&mut self, output: OutputTuple) {
        self.items.push((self.source, output));
    }

    /// Drain `scratch`, attributing every output to input index `source`.
    /// This is how the default per-tuple fallback adapts `process` output.
    pub fn absorb(&mut self, source: usize, scratch: &mut Vec<OutputTuple>) {
        for output in scratch.drain(..) {
            self.items.push((source, output));
        }
    }

    /// Number of outputs.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no outputs were produced.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Borrow the `(input index, output)` pairs in emit order.
    pub fn items(&self) -> &[(usize, OutputTuple)] {
        &self.items
    }

    /// Consume into the `(input index, output)` pairs in emit order.
    pub fn into_items(self) -> Vec<(usize, OutputTuple)> {
        self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Key;

    #[test]
    fn batch_push_and_bounds() {
        let mut b = TupleBatch::with_capacity(2);
        assert!(b.is_empty());
        assert_eq!(b.first_ts(), None);
        b.push(Tuple::new(3, Key(1), vec![1]), 10);
        b.push(Tuple::new(4, Key(2), vec![2]), 0);
        assert_eq!(b.len(), 2);
        assert_eq!(b.first_ts(), Some(3));
        assert_eq!(b.last_ts(), Some(4));
        assert_eq!(b.emitted_at_us, vec![10, 0]);
    }

    #[test]
    fn batch_roundtrips_through_bincode() {
        let mut b = TupleBatch::new();
        b.push(Tuple::new(1, Key(9), vec![7, 8]), 42);
        let bytes = bincode::serialize(&b).unwrap();
        let back: TupleBatch = bincode::deserialize(&bytes).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn batch_output_attributes_sources() {
        let mut out = BatchOutput::new();
        out.set_source(0);
        out.push(OutputTuple::new(Key(1), vec![1]));
        out.set_source(2);
        out.push(OutputTuple::new(Key(2), vec![2]));
        let mut scratch = vec![OutputTuple::new(Key(3), vec![3])];
        out.absorb(5, &mut scratch);
        assert!(scratch.is_empty());
        assert_eq!(out.len(), 3);
        let items = out.into_items();
        assert_eq!(items[0].0, 0);
        assert_eq!(items[1].0, 2);
        assert_eq!(items[2].0, 5);
    }
}
