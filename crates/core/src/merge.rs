//! Scale in: merging the state of two partitioned operators (§3.3).
//!
//! The paper lists *merge* as an additional primitive beyond the minimum set:
//! when resources are under-utilised, the state of two partitions of the same
//! logical operator can be merged so one of the VMs can be released. The
//! merged operator owns the union of the two key ranges, the union of the
//! processing-state entries, the concatenation of the buffered tuples and the
//! pointwise-maximum timestamp vector.

use crate::checkpoint::Checkpoint;
use crate::error::{Error, Result};
use crate::key::KeyRange;
use crate::operator::OperatorId;
use crate::state::RoutingState;

/// Merge the checkpoints of two partitions of the same logical operator into
/// a single checkpoint owned by `merged_operator`.
///
/// The two key ranges must be adjacent (`a.hi + 1 == b.lo` in either order) so
/// the merged operator owns a contiguous interval; otherwise routing state
/// could no longer be expressed as one entry per partition. Returns the merged
/// checkpoint and the merged key range. The merged checkpoint's emit clock is
/// the maximum of the two inputs', so a restore can resume the logical output
/// clock without reusing timestamps either partition already emitted.
///
/// ```
/// use seep_core::merge::merge_checkpoints;
/// use seep_core::state::{BufferState, ProcessingState};
/// use seep_core::{Checkpoint, Key, KeyRange, OperatorId};
///
/// // Two partitions of one logical operator, each owning half the key space.
/// let halves = KeyRange::full().split_even(2)?;
/// let mut low = ProcessingState::empty();
/// low.insert(Key(7), b"low".to_vec());
/// let mut high = ProcessingState::empty();
/// high.insert(Key(u64::MAX - 7), b"high".to_vec());
/// let a = Checkpoint::new(OperatorId::new(1), 4, low, BufferState::new());
/// let b = Checkpoint::new(OperatorId::new(2), 9, high, BufferState::new());
///
/// let (merged, range) =
///     merge_checkpoints(OperatorId::new(3), (a, halves[0]), (b, halves[1]))?;
/// assert_eq!(range, KeyRange::full());
/// assert_eq!(merged.processing.len(), 2);
/// assert_eq!(merged.meta.sequence, 9);
/// # Ok::<(), seep_core::Error>(())
/// ```
pub fn merge_checkpoints(
    merged_operator: OperatorId,
    a: (Checkpoint, KeyRange),
    b: (Checkpoint, KeyRange),
) -> Result<(Checkpoint, KeyRange)> {
    let (cp_a, range_a) = a;
    let (cp_b, range_b) = b;
    let (lo_cp, lo_range, hi_cp, hi_range) = if range_a.lo <= range_b.lo {
        (cp_a, range_a, cp_b, range_b)
    } else {
        (cp_b, range_b, cp_a, range_a)
    };
    if lo_range.hi == u64::MAX || lo_range.hi + 1 != hi_range.lo {
        return Err(Error::InvalidKeySplit(format!(
            "cannot merge non-adjacent ranges {lo_range} and {hi_range}"
        )));
    }
    let merged_range = KeyRange::new(lo_range.lo, hi_range.hi);

    let emit_clock = lo_cp.emit_clock.max(hi_cp.emit_clock);
    let mut processing = lo_cp.processing;
    processing.merge(hi_cp.processing);
    let mut buffer = lo_cp.buffer;
    for d in hi_cp.buffer.downstreams() {
        for t in hi_cp.buffer.iter_for(d) {
            buffer.push(d, t.clone());
        }
    }
    let mut traffic = lo_cp.traffic;
    traffic.merge(&hi_cp.traffic);
    let sequence = lo_cp.meta.sequence.max(hi_cp.meta.sequence);
    Ok((
        Checkpoint::new(merged_operator, sequence, processing, buffer)
            .with_emit_clock(emit_clock)
            .with_traffic(traffic),
        merged_range,
    ))
}

/// Update an upstream routing state after two partitions are merged: the two
/// entries for `a` and `b` are replaced by a single entry sending
/// `merged_range` to `merged_operator`.
pub fn merge_routing_state(
    routing: &mut RoutingState,
    a: OperatorId,
    b: OperatorId,
    merged_operator: OperatorId,
    merged_range: KeyRange,
) -> Result<()> {
    let removed_a = routing.remove_target(a);
    let removed_b = routing.remove_target(b);
    if removed_a.is_empty() || removed_b.is_empty() {
        return Err(Error::Invariant(
            "both merged partitions must exist in the routing state".into(),
        ));
    }
    routing.set_route(merged_range, merged_operator);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{BufferState, ProcessingState};
    use crate::tuple::{Key, StreamId, Tuple};

    fn checkpoint(op: u64, keys: &[u64], ts: u64) -> Checkpoint {
        let mut st = ProcessingState::empty();
        for &k in keys {
            st.insert(Key(k), vec![k as u8]);
        }
        st.advance_ts(StreamId(0), ts);
        let mut buf = BufferState::new();
        buf.push(OperatorId::new(99), Tuple::new(ts, Key(keys[0]), vec![]));
        Checkpoint::new(OperatorId::new(op), ts, st, buf)
    }

    #[test]
    fn merge_adjacent_partitions() {
        let ranges = KeyRange::full().split_even(2).unwrap();
        let a = checkpoint(1, &[5, 10], 3);
        let b = checkpoint(2, &[u64::MAX - 1], 7);
        let (merged, range) =
            merge_checkpoints(OperatorId::new(3), (a, ranges[0]), (b, ranges[1])).unwrap();
        assert_eq!(range, KeyRange::full());
        assert_eq!(merged.meta.operator, OperatorId::new(3));
        assert_eq!(merged.processing.len(), 3);
        assert_eq!(merged.buffer.len(), 2);
        assert_eq!(merged.processing.timestamps().get(StreamId(0)), Some(7));
        assert_eq!(merged.meta.sequence, 7);
    }

    #[test]
    fn merge_order_does_not_matter() {
        let ranges = KeyRange::new(0, 99).split_even(2).unwrap();
        let a = checkpoint(1, &[5], 1);
        let b = checkpoint(2, &[60], 2);
        let (m1, r1) = merge_checkpoints(
            OperatorId::new(3),
            (a.clone(), ranges[0]),
            (b.clone(), ranges[1]),
        )
        .unwrap();
        let (m2, r2) =
            merge_checkpoints(OperatorId::new(3), (b, ranges[1]), (a, ranges[0])).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(m1.processing, m2.processing);
    }

    #[test]
    fn merge_rejects_non_adjacent_ranges() {
        let a = checkpoint(1, &[1], 1);
        let b = checkpoint(2, &[50], 1);
        let err = merge_checkpoints(
            OperatorId::new(3),
            (a, KeyRange::new(0, 9)),
            (b, KeyRange::new(20, 29)),
        );
        assert!(matches!(err, Err(Error::InvalidKeySplit(_))));
    }

    #[test]
    fn merge_rejects_non_adjacent_ranges_in_either_argument_order() {
        // A gap between the ranges is rejected no matter which partition is
        // passed first, and likewise for overlapping ranges.
        for (ra, rb) in [
            (KeyRange::new(0, 9), KeyRange::new(20, 29)),
            (KeyRange::new(20, 29), KeyRange::new(0, 9)),
            (KeyRange::new(0, 15), KeyRange::new(10, 29)),
            (KeyRange::new(10, 29), KeyRange::new(0, 15)),
        ] {
            let a = checkpoint(1, &[1], 1);
            let b = checkpoint(2, &[50], 1);
            let err = merge_checkpoints(OperatorId::new(3), (a, ra), (b, rb));
            assert!(
                matches!(err, Err(Error::InvalidKeySplit(_))),
                "{ra} + {rb} must be rejected"
            );
        }
    }

    #[test]
    fn merge_guards_against_overflow_when_low_range_ends_at_u64_max() {
        // The adjacency test is `lo.hi + 1 == hi.lo`; when the low range
        // already ends at u64::MAX the check must reject the pair instead of
        // overflowing. Both ranges start at 0 so the full range is picked as
        // the low one.
        let a = checkpoint(1, &[1], 1);
        let b = checkpoint(2, &[2], 1);
        let err = merge_checkpoints(
            OperatorId::new(3),
            (a, KeyRange::full()),
            (b, KeyRange::new(0, 5)),
        );
        assert!(matches!(err, Err(Error::InvalidKeySplit(_))));
    }

    #[test]
    fn merge_propagates_the_larger_emit_clock() {
        let ranges = KeyRange::full().split_even(2).unwrap();
        let a = checkpoint(1, &[5], 3).with_emit_clock(120);
        let b = checkpoint(2, &[u64::MAX - 1], 7).with_emit_clock(80);
        let (merged, _) =
            merge_checkpoints(OperatorId::new(3), (a, ranges[0]), (b, ranges[1])).unwrap();
        assert_eq!(merged.emit_clock, 120);
    }

    #[test]
    fn merge_routing_replaces_two_entries_with_one() {
        let ranges = KeyRange::full().split_even(2).unwrap();
        let mut routing = RoutingState::new();
        routing.set_route(ranges[0], OperatorId::new(1));
        routing.set_route(ranges[1], OperatorId::new(2));
        merge_routing_state(
            &mut routing,
            OperatorId::new(1),
            OperatorId::new(2),
            OperatorId::new(3),
            KeyRange::full(),
        )
        .unwrap();
        assert_eq!(routing.len(), 1);
        assert_eq!(routing.route(Key(123)), Some(OperatorId::new(3)));
    }

    #[test]
    fn merge_routing_requires_both_partitions() {
        let mut routing = RoutingState::single(OperatorId::new(1));
        let err = merge_routing_state(
            &mut routing,
            OperatorId::new(1),
            OperatorId::new(2),
            OperatorId::new(3),
            KeyRange::full(),
        );
        assert!(err.is_err());
    }
}
