//! Logical query graphs and physical execution graphs (§2.2).
//!
//! A query is a directed acyclic graph `q = (O, S)` of logical operators with
//! distinguished sources and sinks. The SPS deploys it as a physical
//! *execution graph* in which each logical operator `o` may be parallelised
//! into partitioned operators `o^1 ... o^π`. The execution graph also tracks,
//! per upstream instance and logical downstream operator, the routing state
//! used to dispatch tuples to the right partition.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::key::KeyRange;
use crate::operator::OperatorId;
use crate::state::RoutingState;
use crate::tuple::StreamId;

/// Identifier of a logical operator in the query graph.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct LogicalOpId(pub u32);

impl fmt::Display for LogicalOpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lop{}", self.0)
    }
}

/// What kind of logical operator this is, which determines whether it is
/// checkpointed and whether it may fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OperatorKind {
    /// A data source. Sources cannot fail and are never scaled out by the SPS.
    Source,
    /// A sink collecting results. Sinks cannot fail.
    Sink,
    /// A stateless operator (`θ_o = ∅`): recovery only replays tuples.
    Stateless,
    /// A stateful operator whose state must be checkpointed and partitioned.
    Stateful,
}

impl OperatorKind {
    /// Whether operators of this kind carry processing state.
    pub fn is_stateful(self) -> bool {
        matches!(self, OperatorKind::Stateful)
    }

    /// Whether the SPS may scale this operator out.
    pub fn scalable(self) -> bool {
        matches!(self, OperatorKind::Stateless | OperatorKind::Stateful)
    }
}

/// A logical operator description in the query graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogicalOperator {
    /// Identifier within the query graph.
    pub id: LogicalOpId,
    /// Human-readable name ("toll_calculator", "word_counter", ...).
    pub name: String,
    /// Kind of operator.
    pub kind: OperatorKind,
}

/// The logical query graph `q = (O, S)`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryGraph {
    operators: BTreeMap<LogicalOpId, LogicalOperator>,
    /// Directed edges (streams) `(from, to)`.
    streams: BTreeSet<(LogicalOpId, LogicalOpId)>,
}

impl QueryGraph {
    /// Start building a bare query graph — topology only, no operator
    /// factories.
    ///
    /// Most users want `seep-runtime`'s typed job builder instead
    /// (`Job::builder` in `seep_runtime::api`), which declares each
    /// operator's factory together with the topology and deploys the two as
    /// one artifact; this low-level builder exists for code that pairs the
    /// graph with a factory map by hand at `Runtime::deploy`.
    #[doc(alias = "Job")]
    #[doc(alias = "JobBuilder")]
    pub fn builder() -> QueryGraphBuilder {
        QueryGraphBuilder::default()
    }

    /// The logical operator with the given id.
    pub fn operator(&self, id: LogicalOpId) -> Result<&LogicalOperator> {
        self.operators
            .get(&id)
            .ok_or(Error::UnknownLogicalOperator(id.0))
    }

    /// All logical operators in id order.
    pub fn operators(&self) -> impl Iterator<Item = &LogicalOperator> + '_ {
        self.operators.values()
    }

    /// All streams (directed edges).
    pub fn streams(&self) -> impl Iterator<Item = (LogicalOpId, LogicalOpId)> + '_ {
        self.streams.iter().copied()
    }

    /// The logical operators upstream of `id` (`up(o)`).
    pub fn upstream(&self, id: LogicalOpId) -> Vec<LogicalOpId> {
        self.streams
            .iter()
            .filter(|(_, to)| *to == id)
            .map(|(from, _)| *from)
            .collect()
    }

    /// The logical operators downstream of `id` (`down(o)`).
    pub fn downstream(&self, id: LogicalOpId) -> Vec<LogicalOpId> {
        self.streams
            .iter()
            .filter(|(from, _)| *from == id)
            .map(|(_, to)| *to)
            .collect()
    }

    /// Source operators.
    pub fn sources(&self) -> Vec<LogicalOpId> {
        self.operators
            .values()
            .filter(|o| o.kind == OperatorKind::Source)
            .map(|o| o.id)
            .collect()
    }

    /// Sink operators.
    pub fn sinks(&self) -> Vec<LogicalOpId> {
        self.operators
            .values()
            .filter(|o| o.kind == OperatorKind::Sink)
            .map(|o| o.id)
            .collect()
    }

    /// Number of logical operators.
    pub fn len(&self) -> usize {
        self.operators.len()
    }

    /// True when the graph has no operators.
    pub fn is_empty(&self) -> bool {
        self.operators.is_empty()
    }

    /// Operators in a topological order (sources first).
    pub fn topological_order(&self) -> Result<Vec<LogicalOpId>> {
        let mut in_degree: BTreeMap<LogicalOpId, usize> =
            self.operators.keys().map(|id| (*id, 0)).collect();
        for (_, to) in &self.streams {
            *in_degree.get_mut(to).unwrap() += 1;
        }
        let mut queue: VecDeque<LogicalOpId> = in_degree
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(id, _)| *id)
            .collect();
        let mut order = Vec::with_capacity(self.operators.len());
        while let Some(id) = queue.pop_front() {
            order.push(id);
            for next in self.downstream(id) {
                let d = in_degree.get_mut(&next).unwrap();
                *d -= 1;
                if *d == 0 {
                    queue.push_back(next);
                }
            }
        }
        if order.len() != self.operators.len() {
            return Err(Error::InvalidGraph("query graph contains a cycle".into()));
        }
        Ok(order)
    }

    /// Validate structural invariants: at least one source and one sink,
    /// acyclicity, every edge endpoint exists, sources have no inputs and
    /// sinks no outputs.
    pub fn validate(&self) -> Result<()> {
        if self.sources().is_empty() {
            return Err(Error::InvalidGraph("query has no source".into()));
        }
        if self.sinks().is_empty() {
            return Err(Error::InvalidGraph("query has no sink".into()));
        }
        for (from, to) in &self.streams {
            self.operator(*from)?;
            self.operator(*to)?;
        }
        for src in self.sources() {
            if !self.upstream(src).is_empty() {
                return Err(Error::InvalidGraph(format!("source {src} has an input")));
            }
        }
        for snk in self.sinks() {
            if !self.downstream(snk).is_empty() {
                return Err(Error::InvalidGraph(format!("sink {snk} has an output")));
            }
        }
        self.topological_order()?;
        Ok(())
    }
}

/// Builder for [`QueryGraph`].
#[derive(Debug, Default)]
pub struct QueryGraphBuilder {
    graph: QueryGraph,
    next_id: u32,
}

impl QueryGraphBuilder {
    /// Add an operator of the given kind, returning its id.
    pub fn add_operator(&mut self, name: impl Into<String>, kind: OperatorKind) -> LogicalOpId {
        let id = LogicalOpId(self.next_id);
        self.next_id += 1;
        self.graph.operators.insert(
            id,
            LogicalOperator {
                id,
                name: name.into(),
                kind,
            },
        );
        id
    }

    /// Convenience: add a source.
    pub fn source(&mut self, name: impl Into<String>) -> LogicalOpId {
        self.add_operator(name, OperatorKind::Source)
    }

    /// Convenience: add a sink.
    pub fn sink(&mut self, name: impl Into<String>) -> LogicalOpId {
        self.add_operator(name, OperatorKind::Sink)
    }

    /// Convenience: add a stateful operator.
    pub fn stateful(&mut self, name: impl Into<String>) -> LogicalOpId {
        self.add_operator(name, OperatorKind::Stateful)
    }

    /// Convenience: add a stateless operator.
    pub fn stateless(&mut self, name: impl Into<String>) -> LogicalOpId {
        self.add_operator(name, OperatorKind::Stateless)
    }

    /// Connect `from → to` with a stream.
    pub fn connect(&mut self, from: LogicalOpId, to: LogicalOpId) -> &mut Self {
        self.graph.streams.insert((from, to));
        self
    }

    /// Validate and return the graph.
    pub fn build(self) -> Result<QueryGraph> {
        self.graph.validate()?;
        Ok(self.graph)
    }
}

/// One physical operator instance in the execution graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorInstance {
    /// Physical instance id.
    pub id: OperatorId,
    /// The logical operator this instance implements.
    pub logical: LogicalOpId,
    /// The key range of the logical operator's key space owned by this
    /// instance.
    pub key_range: KeyRange,
}

/// The physical execution graph: one or more instances per logical operator,
/// plus the routing state used by upstream instances to reach the partitions
/// of each logical downstream operator.
///
/// The execution graph is maintained by the (logically centralised) query
/// manager; routing state is stored here so that it can be re-fetched after
/// an upstream failure (Algorithm 2, line 12).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionGraph {
    query: QueryGraph,
    instances: BTreeMap<OperatorId, OperatorInstance>,
    /// Instances per logical operator, in partition order.
    partitions: BTreeMap<LogicalOpId, Vec<OperatorId>>,
    /// Routing state towards each logical operator (shared by all upstream
    /// instances that feed it).
    routing: BTreeMap<LogicalOpId, RoutingState>,
    next_instance: u64,
}

impl ExecutionGraph {
    /// Deploy a query graph with one instance per logical operator
    /// (parallelisation level 1 everywhere), as in Fig. 3a.
    pub fn deploy(query: QueryGraph) -> Result<Self> {
        query.validate()?;
        let mut g = ExecutionGraph {
            query,
            ..Default::default()
        };
        let logical_ids: Vec<LogicalOpId> = g.query.operators().map(|o| o.id).collect();
        for lid in logical_ids {
            let oid = g.fresh_instance_id();
            g.instances.insert(
                oid,
                OperatorInstance {
                    id: oid,
                    logical: lid,
                    key_range: KeyRange::full(),
                },
            );
            g.partitions.insert(lid, vec![oid]);
            g.routing.insert(lid, RoutingState::single(oid));
        }
        Ok(g)
    }

    fn fresh_instance_id(&mut self) -> OperatorId {
        let id = OperatorId::new(self.next_instance);
        self.next_instance += 1;
        id
    }

    /// The logical query graph this execution graph realises.
    pub fn query(&self) -> &QueryGraph {
        &self.query
    }

    /// The instance record for a physical operator.
    pub fn instance(&self, id: OperatorId) -> Result<&OperatorInstance> {
        self.instances.get(&id).ok_or(Error::UnknownOperator(id))
    }

    /// All instances, in id order.
    pub fn instances(&self) -> impl Iterator<Item = &OperatorInstance> + '_ {
        self.instances.values()
    }

    /// The current partitions of a logical operator.
    pub fn partitions(&self, logical: LogicalOpId) -> &[OperatorId] {
        self.partitions
            .get(&logical)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Parallelisation level π of a logical operator.
    pub fn parallelism(&self, logical: LogicalOpId) -> usize {
        self.partitions(logical).len()
    }

    /// Total number of physical instances.
    pub fn total_instances(&self) -> usize {
        self.instances.len()
    }

    /// Routing state towards the partitions of `logical`.
    pub fn routing(&self, logical: LogicalOpId) -> Result<&RoutingState> {
        self.routing
            .get(&logical)
            .ok_or(Error::UnknownLogicalOperator(logical.0))
    }

    /// Physical upstream instances of a physical operator: all partitions of
    /// all logical upstream operators.
    pub fn upstream_instances(&self, id: OperatorId) -> Result<Vec<OperatorId>> {
        let inst = self.instance(id)?;
        let mut out = Vec::new();
        for up in self.query.upstream(inst.logical) {
            out.extend_from_slice(self.partitions(up));
        }
        Ok(out)
    }

    /// Physical downstream instances of a physical operator.
    pub fn downstream_instances(&self, id: OperatorId) -> Result<Vec<OperatorId>> {
        let inst = self.instance(id)?;
        let mut out = Vec::new();
        for down in self.query.downstream(inst.logical) {
            out.extend_from_slice(self.partitions(down));
        }
        Ok(out)
    }

    /// The stream id used for tuples produced by a logical operator. Streams
    /// are identified by the producing logical operator so that all its
    /// partitions share one timestamp domain entry per consumer.
    pub fn stream_of(&self, producer: LogicalOpId) -> StreamId {
        StreamId(producer.0)
    }

    /// Replace the partitions of `logical` — previously `old` instances — with
    /// `count` new instances, each owning one of `ranges` (which must have
    /// length `count` and cover the replaced instances' ranges). Returns the
    /// new instance records. This updates the partition list and the routing
    /// state towards `logical`; it does not touch operator state (that is the
    /// scale-out coordinator's job, via the state-management primitives).
    pub fn repartition(
        &mut self,
        logical: LogicalOpId,
        old: &[OperatorId],
        ranges: &[KeyRange],
    ) -> Result<Vec<OperatorInstance>> {
        if ranges.is_empty() {
            return Err(Error::InvalidParallelism(0));
        }
        self.query.operator(logical)?;
        for o in old {
            let inst = self.instance(*o)?;
            if inst.logical != logical {
                return Err(Error::Invariant(format!(
                    "instance {o} does not belong to logical operator {logical}"
                )));
            }
        }
        // Remove the old instances.
        for o in old {
            self.instances.remove(o);
        }
        let existing: Vec<OperatorId> = self
            .partitions
            .get(&logical)
            .map(|p| p.iter().copied().filter(|p| !old.contains(p)).collect())
            .unwrap_or_default();

        // Create the new instances.
        let mut new_instances = Vec::with_capacity(ranges.len());
        for range in ranges {
            let id = self.fresh_instance_id();
            let inst = OperatorInstance {
                id,
                logical,
                key_range: *range,
            };
            self.instances.insert(id, inst.clone());
            new_instances.push(inst);
        }

        // Update the partition list (surviving partitions keep their slots).
        let mut parts = existing;
        parts.extend(new_instances.iter().map(|i| i.id));
        self.partitions.insert(logical, parts);

        // Update routing: drop entries for the removed instances, add entries
        // for the new ones.
        let routing = self.routing.entry(logical).or_default();
        for o in old {
            routing.remove_target(*o);
        }
        for inst in &new_instances {
            routing.set_route(inst.key_range, inst.id);
        }
        Ok(new_instances)
    }

    /// Scale out (or recover) a single physical operator `target` of logical
    /// operator `logical` into `pi` new partitions, splitting its key range
    /// evenly. Convenience wrapper over [`repartition`](Self::repartition).
    pub fn scale_out_instance(
        &mut self,
        target: OperatorId,
        pi: usize,
    ) -> Result<Vec<OperatorInstance>> {
        let inst = self.instance(target)?.clone();
        let ranges = inst.key_range.split_even(pi)?;
        self.repartition(inst.logical, &[target], &ranges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the paper's word-frequency query: src -> splitter -> counter -> snk.
    fn word_query() -> QueryGraph {
        let mut b = QueryGraph::builder();
        let src = b.source("src");
        let split = b.stateless("word_splitter");
        let count = b.stateful("word_counter");
        let snk = b.sink("snk");
        b.connect(src, split);
        b.connect(split, count);
        b.connect(count, snk);
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_valid_graph() {
        let q = word_query();
        assert_eq!(q.len(), 4);
        assert_eq!(q.sources().len(), 1);
        assert_eq!(q.sinks().len(), 1);
        assert_eq!(q.streams().count(), 3);
        let order = q.topological_order().unwrap();
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], q.sources()[0]);
        assert!(!q.is_empty());
    }

    #[test]
    fn upstream_downstream_relations() {
        let q = word_query();
        let split = LogicalOpId(1);
        let count = LogicalOpId(2);
        assert_eq!(q.upstream(count), vec![split]);
        assert_eq!(q.downstream(split), vec![count]);
        assert_eq!(q.operator(count).unwrap().name, "word_counter");
        assert!(q.operator(LogicalOpId(99)).is_err());
    }

    #[test]
    fn validation_rejects_missing_source_or_sink() {
        let mut b = QueryGraph::builder();
        let a = b.stateful("a");
        let s = b.sink("snk");
        b.connect(a, s);
        assert!(matches!(b.build(), Err(Error::InvalidGraph(_))));

        let mut b = QueryGraph::builder();
        let src = b.source("src");
        let a = b.stateful("a");
        b.connect(src, a);
        assert!(matches!(b.build(), Err(Error::InvalidGraph(_))));
    }

    #[test]
    fn validation_rejects_cycle() {
        let mut b = QueryGraphBuilder::default();
        let src = b.source("src");
        let a = b.stateful("a");
        let c = b.stateful("b");
        let snk = b.sink("snk");
        b.connect(src, a);
        b.connect(a, c);
        b.connect(c, a); // cycle
        b.connect(c, snk);
        assert!(matches!(b.build(), Err(Error::InvalidGraph(_))));
    }

    #[test]
    fn validation_rejects_source_with_input() {
        let mut b = QueryGraph::builder();
        let src = b.source("src");
        let a = b.stateful("a");
        let snk = b.sink("snk");
        b.connect(src, a);
        b.connect(a, snk);
        b.connect(a, src); // feeds a source — also a cycle, but the source
                           // check fires first in validate()
        let result = b.build();
        assert!(result.is_err());
    }

    #[test]
    fn deploy_creates_one_instance_per_operator() {
        let g = ExecutionGraph::deploy(word_query()).unwrap();
        assert_eq!(g.total_instances(), 4);
        for lop in g.query().operators() {
            assert_eq!(g.parallelism(lop.id), 1);
            let part = g.partitions(lop.id)[0];
            assert_eq!(g.instance(part).unwrap().key_range, KeyRange::full());
        }
        // Routing towards the counter points at its single instance.
        let count = LogicalOpId(2);
        let routing = g.routing(count).unwrap();
        assert_eq!(routing.targets(), vec![g.partitions(count)[0]]);
    }

    #[test]
    fn scale_out_instance_splits_range_and_routing() {
        let mut g = ExecutionGraph::deploy(word_query()).unwrap();
        let count = LogicalOpId(2);
        let old = g.partitions(count)[0];
        let new = g.scale_out_instance(old, 2).unwrap();
        assert_eq!(new.len(), 2);
        assert_eq!(g.parallelism(count), 2);
        assert!(g.instance(old).is_err(), "old instance must be removed");
        let routing = g.routing(count).unwrap();
        assert!(routing.covers_exactly(KeyRange::full()));
        assert_eq!(routing.targets().len(), 2);
        // Upstream instances of a new partition are the splitter's partitions.
        let ups = g.upstream_instances(new[0].id).unwrap();
        assert_eq!(ups, g.partitions(LogicalOpId(1)).to_vec());
        // Downstream instances are the sink's partitions.
        let downs = g.downstream_instances(new[0].id).unwrap();
        assert_eq!(downs, g.partitions(LogicalOpId(3)).to_vec());
    }

    #[test]
    fn further_scale_out_only_splits_target_partition() {
        let mut g = ExecutionGraph::deploy(word_query()).unwrap();
        let count = LogicalOpId(2);
        let first = g.partitions(count)[0];
        let new = g.scale_out_instance(first, 2).unwrap();
        // Scale out only the first of the two partitions.
        let target = new[0].id;
        let other = new[1].id;
        g.scale_out_instance(target, 2).unwrap();
        assert_eq!(g.parallelism(count), 3);
        assert!(g.instance(other).is_ok(), "untouched partition survives");
        assert!(g.routing(count).unwrap().covers_exactly(KeyRange::full()));
    }

    #[test]
    fn recovery_is_scale_out_with_pi_one() {
        let mut g = ExecutionGraph::deploy(word_query()).unwrap();
        let count = LogicalOpId(2);
        let old = g.partitions(count)[0];
        let new = g.scale_out_instance(old, 1).unwrap();
        assert_eq!(new.len(), 1);
        assert_ne!(new[0].id, old);
        assert_eq!(new[0].key_range, KeyRange::full());
        assert_eq!(g.parallelism(count), 1);
    }

    #[test]
    fn repartition_rejects_wrong_logical_operator() {
        let mut g = ExecutionGraph::deploy(word_query()).unwrap();
        let count_part = g.partitions(LogicalOpId(2))[0];
        let err = g.repartition(LogicalOpId(1), &[count_part], &[KeyRange::full()]);
        assert!(err.is_err());
        let err = g.repartition(LogicalOpId(2), &[count_part], &[]);
        assert!(matches!(err, Err(Error::InvalidParallelism(0))));
    }

    #[test]
    fn stream_ids_follow_logical_producer() {
        let g = ExecutionGraph::deploy(word_query()).unwrap();
        assert_eq!(g.stream_of(LogicalOpId(1)), StreamId(1));
    }

    #[test]
    fn serde_roundtrip_of_execution_graph() {
        let g = ExecutionGraph::deploy(word_query()).unwrap();
        let bytes = bincode::serialize(&g).unwrap();
        let back: ExecutionGraph = bincode::deserialize(&bytes).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn operator_kind_predicates() {
        assert!(OperatorKind::Stateful.is_stateful());
        assert!(!OperatorKind::Stateless.is_stateful());
        assert!(OperatorKind::Stateless.scalable());
        assert!(!OperatorKind::Source.scalable());
        assert!(!OperatorKind::Sink.scalable());
    }
}
